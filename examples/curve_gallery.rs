//! Gallery: draw each space-filling curve's path on a 16×16 grid (the
//! paper's Figure 1) and print a miniature version of its Figure 5 — the
//! average nearest-neighbor stretch of each curve as resolution grows.
//!
//! Run with: `cargo run --release --example curve_gallery`

use sfc_analysis::core::anns::anns;
use sfc_analysis::curves::{CurveKind, Point2};

/// Render the curve of the given order as ASCII line art: each cell shows
/// the direction the curve leaves it in.
fn render(kind: CurveKind, order: u32) -> String {
    let curve = kind.curve(order);
    let side = curve.side() as usize;
    let mut glyphs = vec![vec!['?'; side]; side];
    for idx in 0..curve.len() {
        let here = curve.point(idx);
        let glyph = if idx + 1 == curve.len() {
            '#' // endpoint
        } else {
            let next = curve.point(idx + 1);
            match (
                next.x as i64 - here.x as i64,
                next.y as i64 - here.y as i64,
            ) {
                (1, 0) => '>',
                (-1, 0) => '<',
                (0, 1) => '^',
                (0, -1) => 'v',
                (dx, 0) if dx > 1 => '}',
                (dx, 0) if dx < -1 => '{',
                (0, dy) if dy > 1 => '/',
                (0, dy) if dy < -1 => '\\',
                _ => '*', // non-axis jump (row-major row wrap)
            }
        };
        glyphs[here.y as usize][here.x as usize] = glyph;
    }
    let mut out = String::new();
    for row in glyphs.iter().rev() {
        out.push_str("  ");
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

fn main() {
    let order = 4; // 16x16, as in the paper's Figure 1
    for kind in CurveKind::PAPER {
        println!("{} (order {order}):", kind.name());
        print!("{}", render(kind, order));
        let start = kind.curve(order).point(0);
        debug_assert_eq!(start, Point2::new(0, 0));
        println!();
    }

    println!("Average Nearest Neighbor Stretch (paper Figure 5(a)):");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "grid", "Hilbert", "Z", "Gray", "RowMajor"
    );
    for order in 2..=8 {
        let row: Vec<f64> = CurveKind::PAPER
            .iter()
            .map(|&k| anns(k, order).unwrap().average())
            .collect();
        let side = 1u64 << order;
        println!(
            "{:>7}^2 {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            side, row[0], row[1], row[2], row[3]
        );
    }
    println!(
        "\nNote the inversion the paper highlights: the 'smart' Hilbert and Gray\n\
         curves lose to Z-order and row-major under this metric, even though\n\
         they win on the communication (ACD) metrics."
    );
}
