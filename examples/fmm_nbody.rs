//! N-body demo: solve a 2-D gravitational-style potential problem with the
//! fast multipole method, verify it against direct summation, and then ask
//! the ACD model what the same computation would cost in communication on a
//! parallel machine under each space-filling curve.
//!
//! Run with: `cargo run --release --example fmm_nbody`

use sfc_analysis::core::ffi::ffi_acd;
use sfc_analysis::core::nfi::nfi_acd;
use sfc_analysis::core::{Assignment, Machine};
use sfc_analysis::curves::{point::Norm, CurveKind, Point2};
use sfc_analysis::fmm::{direct, Fmm, Source};
use sfc_analysis::topology::TopologyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Two Gaussian "galaxies" plus a uniform background.
fn make_galaxies(n: usize, seed: u64) -> Vec<Source> {
    let mut rng = StdRng::seed_from_u64(seed);
    let gaussian = |cx: f64, cy: f64, sigma: f64, rng: &mut StdRng| loop {
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let x = cx + sigma * r * (std::f64::consts::TAU * u2).cos();
        let y = cy + sigma * r * (std::f64::consts::TAU * u2).sin();
        if (0.0..1.0).contains(&x) && (0.0..1.0).contains(&y) {
            return (x, y);
        }
    };
    (0..n)
        .map(|i| {
            let (x, y) = match i % 10 {
                0..=4 => gaussian(0.3, 0.35, 0.05, &mut rng),
                5..=8 => gaussian(0.72, 0.68, 0.04, &mut rng),
                _ => (rng.gen(), rng.gen()),
            };
            Source::new(x, y, rng.gen_range(0.5..1.5))
        })
        .collect()
}

fn main() {
    let n = 20_000;
    let sources = make_galaxies(n, 7);
    println!("two-galaxy system, {n} bodies, log potential\n");

    let t0 = Instant::now();
    let fast = Fmm::new(14).potentials(&sources);
    let t_fmm = t0.elapsed();

    let t0 = Instant::now();
    let exact = direct::potentials(&sources);
    let t_direct = t0.elapsed();

    let scale = exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let max_err = fast
        .iter()
        .zip(&exact)
        .map(|(f, e)| (f - e).abs())
        .fold(0.0f64, f64::max)
        / scale;
    println!("FMM (p=14):   {t_fmm:?}");
    println!("direct O(n²): {t_direct:?}");
    println!("max relative error: {max_err:.2e}\n");

    // Now the paper's question: if these bodies were distributed over a
    // parallel machine, which curve minimizes the communication? Snap the
    // positions to a 512x512 grid (one particle per cell, first wins).
    let grid_order = 9;
    let side = (1u64 << grid_order) as f64;
    let mut seen = std::collections::HashSet::new();
    let cells: Vec<Point2> = sources
        .iter()
        .filter_map(|s| {
            let p = Point2::new((s.pos.re * side) as u32, (s.pos.im * side) as u32);
            seen.insert((p.x, p.y)).then_some(p)
        })
        .collect();
    let procs = 4096;
    println!(
        "communication model: {} occupied cells on a {side}x{side} grid, {procs} processors (torus)",
        cells.len()
    );
    println!("{:<12} {:>10} {:>10}", "curve", "NFI ACD", "FFI ACD");
    let mut best = (f64::INFINITY, CurveKind::Hilbert);
    for curve in CurveKind::PAPER {
        let asg = Assignment::new(&cells, grid_order, curve, procs);
        let machine = Machine::grid(TopologyKind::Torus, procs, curve);
        let nfi = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
        let ffi = ffi_acd(&asg, &machine).unwrap();
        let total = nfi.acd() + ffi.acd();
        if total < best.0 {
            best = (total, curve);
        }
        println!(
            "{:<12} {:>10.3} {:>10.3}",
            curve.short_name(),
            nfi.acd(),
            ffi.acd()
        );
    }
    println!("\nrecommended ordering for this input: {} curve", best.1.short_name());
}
