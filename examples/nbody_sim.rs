//! Time-stepping n-body simulation on the FMM, with the ACD model tracking
//! communication as the particle distribution evolves.
//!
//! The paper observes (Section VI-A) that because the *relative* performance
//! of the curves is unchanged across distributions, "there is no incentive
//! to shift the ordering of particles between FMM iterations to reflect the
//! dynamically changing particle distribution profile". This example
//! demonstrates that claim live: it integrates a softened 2-D log-potential
//! system with velocity Verlet using FMM forces, and every few steps
//! re-measures the NFI ACD of all four curves on the *current* positions.
//!
//! Run with: `cargo run --release --example nbody_sim`

use sfc_analysis::core::nfi::nfi_acd;
use sfc_analysis::core::{Assignment, Machine};
use sfc_analysis::curves::{point::Norm, CurveKind, Point2};
use sfc_analysis::fmm::{Fmm, Source};
use sfc_analysis::topology::TopologyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 4_000;
const STEPS: usize = 30;
const DT: f64 = 2e-5;
const MEASURE_EVERY: usize = 10;

struct State {
    sources: Vec<Source>,
    velocities: Vec<(f64, f64)>,
}

impl State {
    /// A rotating disc: positions in a Gaussian blob, velocities tangential.
    fn disc(seed: u64) -> State {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sources = Vec::with_capacity(N);
        let mut velocities = Vec::with_capacity(N);
        while sources.len() < N {
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let r = 0.12 * (-2.0 * u1.ln()).sqrt();
            let theta = std::f64::consts::TAU * u2;
            let (x, y) = (0.5 + r * theta.cos(), 0.5 + r * theta.sin());
            if !(0.05..0.95).contains(&x) || !(0.05..0.95).contains(&y) {
                continue;
            }
            sources.push(Source::new(x, y, 1.0 / N as f64));
            // Tangential velocity for rough rotational support.
            let speed = 40.0 * r;
            velocities.push((-speed * theta.sin(), speed * theta.cos()));
        }
        State { sources, velocities }
    }

    /// One velocity-Verlet step with FMM forces. The force on particle `i`
    /// is `−qᵢ ∇φ(zᵢ)`; with `Φ'` the complex field, `∇φ = (Re Φ', −Im Φ')`.
    fn step(&mut self, solver: &Fmm) {
        let fields = solver.potentials_and_fields(&self.sources);
        for ((s, v), (_, grad)) in self
            .sources
            .iter_mut()
            .zip(&mut self.velocities)
            .zip(&fields)
        {
            let (fx, fy) = (-grad.re, grad.im);
            v.0 += fx * DT;
            v.1 += fy * DT;
            let nx = (s.pos.re + v.0 * DT).clamp(0.001, 0.998);
            let ny = (s.pos.im + v.1 * DT).clamp(0.001, 0.998);
            s.pos = sfc_analysis::fmm::Complex::new(nx, ny);
        }
    }

    /// Snap current positions to distinct grid cells for the ACD model.
    fn grid_cells(&self, order: u32) -> Vec<Point2> {
        let side = (1u64 << order) as f64;
        let mut seen = std::collections::HashSet::new();
        self.sources
            .iter()
            .filter_map(|s| {
                let p = Point2::new((s.pos.re * side) as u32, (s.pos.im * side) as u32);
                seen.insert((p.x, p.y)).then_some(p)
            })
            .collect()
    }
}

fn measure(state: &State, step: usize) {
    let order = 8;
    let procs = 1024u64;
    let cells = state.grid_cells(order);
    print!("step {step:>3} ({} occupied cells): ", cells.len());
    let mut acds = Vec::new();
    for curve in CurveKind::PAPER {
        let asg = Assignment::new(&cells, order, curve, procs);
        let machine = Machine::grid(TopologyKind::Torus, procs, curve);
        acds.push(nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap().acd());
    }
    println!(
        "NFI ACD  H={:.3}  Z={:.3}  G={:.3}  R={:.3}",
        acds[0], acds[1], acds[2], acds[3]
    );
    let min = acds
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert_eq!(min, 0, "Hilbert stays the winner as the system evolves");
}

fn main() {
    println!("rotating disc, {N} bodies, velocity Verlet with FMM forces\n");
    let solver = Fmm::new(10);
    let mut state = State::disc(11);
    measure(&state, 0);
    for step in 1..=STEPS {
        state.step(&solver);
        if step % MEASURE_EVERY == 0 {
            measure(&state, step);
        }
    }
    println!(
        "\nThe ranking of the curves never changes while the distribution\n\
         evolves — the paper's argument that re-ordering particles between\n\
         FMM iterations buys nothing."
    );
}
