//! ACD advisor: the "design guide" use of the metric (paper Section VII).
//!
//! Given a machine description and an input profile on the command line,
//! evaluates every particle/processor curve combination under the ACD model
//! and prints a ranked recommendation.
//!
//! ```text
//! cargo run --release --example acd_advisor -- \
//!     [topology] [processors] [particles] [distribution] [radius]
//! e.g.  cargo run --release --example acd_advisor -- torus 4096 50000 normal 2
//! ```
//!
//! Defaults: torus, 4096 processors, 50,000 particles, uniform, radius 1.

use sfc_analysis::core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_analysis::core::nfi::nfi_acd;
use sfc_analysis::core::{Assignment, Machine};
use sfc_analysis::curves::{point::Norm, CurveKind};
use sfc_analysis::particles::{sample, DistributionKind};
use sfc_analysis::topology::TopologyKind;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let topology = argv
        .first()
        .map(|s| TopologyKind::parse(s).expect("unknown topology"))
        .unwrap_or(TopologyKind::Torus);
    let processors: u64 = argv.get(1).map_or(4096, |s| s.parse().expect("processors"));
    let n: usize = argv.get(2).map_or(50_000, |s| s.parse().expect("particles"));
    let dist = argv
        .get(3)
        .map(|s| DistributionKind::parse(s).expect("unknown distribution"))
        .unwrap_or(DistributionKind::Uniform);
    let radius: u32 = argv.get(4).map_or(1, |s| s.parse().expect("radius"));

    // Pick a resolution ~4x denser in cells than particles.
    let mut grid_order = 4u32;
    while (1u64 << (2 * grid_order)) < 4 * n as u64 {
        grid_order += 1;
    }
    println!(
        "advisor: {n} {dist} particles on a {s}x{s} grid; {processors} processors ({topology}); \
         near-field radius {radius}\n",
        s = 1u64 << grid_order
    );

    let particles = sample(dist.default_params(), grid_order, n, 20130701);
    let grid_topology = matches!(topology, TopologyKind::Mesh | TopologyKind::Torus);
    let processor_curves: &[CurveKind] = if grid_topology {
        &CurveKind::PAPER
    } else {
        &[CurveKind::Hilbert] // placement fixed by the topology's numbering
    };

    let mut results: Vec<(f64, f64, CurveKind, CurveKind)> = Vec::new();
    for &particle_curve in &CurveKind::PAPER {
        let asg = Assignment::new(&particles, grid_order, particle_curve, processors);
        let tree = OwnerTree::build(&asg);
        for &processor_curve in processor_curves {
            let machine = Machine::new(topology, processors, processor_curve);
            let nfi = nfi_acd(&asg, &machine, radius, Norm::Chebyshev).unwrap().acd();
            let ffi = ffi_acd_with_tree(&asg, &machine, &tree).unwrap().acd();
            results.push((nfi, ffi, particle_curve, processor_curve));
        }
    }
    // Rank by combined ACD (equal weight to both phases).
    results.sort_by(|a, b| (a.0 + a.1).total_cmp(&(b.0 + b.1)));

    println!(
        "{:<6} {:<12} {:<12} {:>10} {:>10} {:>10}",
        "rank", "particle", "processor", "NFI ACD", "FFI ACD", "combined"
    );
    for (i, (nfi, ffi, pc, rc)) in results.iter().enumerate() {
        let proc_name = if grid_topology { rc.short_name() } else { "(fixed)" };
        println!(
            "{:<6} {:<12} {:<12} {:>10.3} {:>10.3} {:>10.3}",
            i + 1,
            pc.short_name(),
            proc_name,
            nfi,
            ffi,
            nfi + ffi
        );
    }
    let best = results[0];
    println!(
        "\nrecommendation: order particles with the {} curve{}",
        best.2.short_name(),
        if grid_topology {
            format!(" and rank processors with the {} curve", best.3.short_name())
        } else {
            String::new()
        }
    );
}
