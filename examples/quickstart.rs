//! Quickstart: measure how much communication a space-filling curve saves.
//!
//! Samples a particle set, distributes it over a torus of processors under
//! two different particle/processor orderings, and compares the Average
//! Communicated Distance of the near- and far-field FMM communication
//! phases.
//!
//! Run with: `cargo run --release --example quickstart`

use sfc_analysis::core::ffi::ffi_acd;
use sfc_analysis::core::nfi::nfi_acd;
use sfc_analysis::core::{Assignment, Machine};
use sfc_analysis::curves::{point::Norm, CurveKind};
use sfc_analysis::particles::{sample, Distribution};
use sfc_analysis::topology::TopologyKind;

fn main() {
    // A 256x256 spatial resolution with 10,000 particles, on 1,024
    // processors connected as a 32x32 torus.
    let grid_order = 8;
    let num_processors = 1024;
    let particles = sample(Distribution::uniform(), grid_order, 10_000, 42);
    let side = 1u64 << grid_order;
    println!(
        "{} particles on a {side}x{side} grid, {num_processors} processors (torus)\n",
        particles.len(),
    );

    println!(
        "{:<12} {:>10} {:>10} {:>12}",
        "curve", "NFI ACD", "FFI ACD", "NFI local %"
    );
    for curve in CurveKind::PAPER {
        // Step 1-2: order the particles by the curve and chunk them.
        let asg = Assignment::new(&particles, grid_order, curve, num_processors);
        // Step 3: rank the processors with the same curve.
        let machine = Machine::grid(TopologyKind::Torus, num_processors, curve);
        // Step 4: replay one FMM time step's communication.
        let nfi = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
        let ffi = ffi_acd(&asg, &machine).unwrap();
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>11.1}%",
            curve.short_name(),
            nfi.acd(),
            ffi.acd(),
            100.0 * nfi.locality(),
        );
    }
    println!(
        "\nLower is better: every unit of ACD is one network hop paid on every\n\
         pairwise exchange. The Hilbert curve keeps neighboring particles on\n\
         nearby processors; the row-major order scatters them."
    );
}
