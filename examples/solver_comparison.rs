//! Solver shoot-out: direct summation vs Barnes–Hut vs uniform FMM vs
//! adaptive FMM on a clustered n-body problem — accuracy and wall time side
//! by side.
//!
//! Run with: `cargo run --release --example solver_comparison`

use sfc_analysis::fmm::{direct, AdaptiveFmm, BarnesHut, Fmm, Source};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn clustered(n: usize, seed: u64) -> Vec<Source> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let (cx, cy, s) = match i % 5 {
                0 | 1 => (0.15, 0.2, 0.01),
                2 | 3 => (0.8, 0.75, 0.02),
                _ => (0.5, 0.5, 0.45),
            };
            loop {
                let x = cx + rng.gen_range(-1.0..1.0) * s;
                let y = cy + rng.gen_range(-1.0..1.0) * s;
                if (0.0..1.0).contains(&x) && (0.0..1.0).contains(&y) {
                    return Source::new(x, y, rng.gen_range(0.5..1.5));
                }
            }
        })
        .collect()
}

fn main() {
    let n = 30_000;
    let sources = clustered(n, 2026);
    println!("clustered system, {n} bodies (two tight clusters + background)\n");

    let t0 = Instant::now();
    let exact = direct::potentials(&sources);
    let t_direct = t0.elapsed();
    let scale = exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));

    let report = |name: &str, phi: Vec<f64>, elapsed: std::time::Duration| {
        let err = phi
            .iter()
            .zip(&exact)
            .map(|(f, e)| (f - e).abs())
            .fold(0.0f64, f64::max)
            / scale;
        println!("{name:<22} {elapsed:>12.1?}   max rel err {err:.2e}");
    };

    println!("{:<22} {:>12}   accuracy", "solver", "time");
    println!("{:<22} {t_direct:>12.1?}   (reference)", "direct O(n^2)");

    let t0 = Instant::now();
    let phi = BarnesHut::new(0.6).potentials(&sources);
    report("Barnes-Hut theta=0.6", phi, t0.elapsed());

    let t0 = Instant::now();
    let phi = BarnesHut::new(0.3).potentials(&sources);
    report("Barnes-Hut theta=0.3", phi, t0.elapsed());

    let t0 = Instant::now();
    let phi = Fmm::new(12).potentials(&sources);
    report("uniform FMM p=12", phi, t0.elapsed());

    let t0 = Instant::now();
    let phi = AdaptiveFmm::new(12).potentials(&sources);
    report("adaptive FMM p=12", phi, t0.elapsed());

    println!(
        "\nThe treecode trades accuracy for simplicity; the FMM's local\n\
         expansions amortize far-field work across whole leaves; the adaptive\n\
         tree keeps that advantage when the mass is concentrated."
    );
}
