//! # sfc-analysis
//!
//! Umbrella crate for the workspace reproducing *DeFord & Kalyanaraman,
//! "Empirical Analysis of Space-Filling Curves for Scientific Computing
//! Applications" (ICPP 2013)*. It re-exports the public APIs of the member
//! crates so examples and downstream users can depend on a single crate:
//!
//! - [`curves`] — the space-filling curves themselves;
//! - [`topology`] — network topologies and processor rank maps;
//! - [`particles`] — input distributions and workload generation;
//! - [`quadtree`] — spatial quadtrees and FMM interaction lists;
//! - [`fmm`] — a reference 2-D fast multipole solver;
//! - [`core`] — the ACD / ANNS metric engine and experiment harness.

pub use sfc_core as core;
pub use sfc_curves as curves;
pub use sfc_fmm as fmm;
pub use sfc_particles as particles;
pub use sfc_quadtree as quadtree;
pub use sfc_topology as topology;
