//! Cross-validation tests: independent components of the workspace must
//! agree where their semantics overlap.

use sfc_analysis::core::anns::{anns, anns_radius};
use sfc_analysis::core::ffi::OwnerTree;
use sfc_analysis::core::nfi::nfi_acd;
use sfc_analysis::core::{Assignment, Machine};
use sfc_analysis::curves::{point::Norm, CurveKind, Point2};
use sfc_analysis::fmm::{direct, Fmm, Source};
use sfc_analysis::particles::{sample, Distribution};
use sfc_analysis::quadtree::CompressedQuadtree;
use sfc_analysis::topology::TopologyKind;

/// Section V of the paper: the ANNS *is* the ACD model run with every cell
/// occupied, one cell per processor, and linear-order distance. Encode that
/// equivalence directly: NFI ACD on a bus whose ranks are the curve order
/// equals the ANNS.
#[test]
fn anns_equals_nfi_on_bus_with_full_grid() {
    for curve in CurveKind::PAPER {
        let order = 5u32;
        let side = 1u32 << order;
        let cells: Vec<Point2> = (0..side)
            .flat_map(|y| (0..side).map(move |x| Point2::new(x, y)))
            .collect();
        let p = (side as u64) * (side as u64);
        // One particle per processor: rank r holds the r-th cell in curve
        // order. The bus distance |rank_a - rank_b| is the linear-ordering
        // distance — exactly the stretch for radius-1 Manhattan pairs.
        let asg = Assignment::new(&cells, order, curve, p);
        let machine = Machine::new(TopologyKind::Bus, p, curve);
        let nfi = nfi_acd(&asg, &machine, 1, Norm::Manhattan).unwrap();
        let stretch = anns(curve, order).unwrap();
        assert_eq!(nfi.num_comms, 2 * stretch.num_pairs, "{curve}");
        assert!(
            (nfi.acd() - stretch.average()).abs() < 1e-9,
            "{curve}: NFI-on-bus {} vs ANNS {}",
            nfi.acd(),
            stretch.average()
        );
    }
}

/// The same equivalence holds for the generalized radius under Chebyshev...
/// with the caveat that the ANNS divides by spatial distance while NFI does
/// not — so compare at radius 1 where the divisor is 1, under Chebyshev.
#[test]
fn chebyshev_radius1_equivalence() {
    let curve = CurveKind::Gray;
    let order = 4u32;
    let side = 1u32 << order;
    let cells: Vec<Point2> = (0..side)
        .flat_map(|y| (0..side).map(move |x| Point2::new(x, y)))
        .collect();
    let p = (side as u64) * (side as u64);
    let asg = Assignment::new(&cells, order, curve, p);
    let machine = Machine::new(TopologyKind::Bus, p, curve);
    let nfi = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
    let stretch = anns_radius(curve, order, 1, Norm::Chebyshev).unwrap();
    assert!((nfi.acd() - stretch.average()).abs() < 1e-9);
}

/// The OwnerTree of the ACD model and the CompressedQuadtree must agree on
/// structure: the compressed tree's node cells are exactly the occupied
/// cells of the owner tree that are "branching or leaf" — in particular
/// every compressed-tree cell is occupied in the owner tree.
#[test]
fn owner_tree_agrees_with_compressed_quadtree() {
    let order = 6u32;
    let particles = sample(Distribution::uniform(), order, 300, 5);
    let asg = Assignment::new(&particles, order, CurveKind::ZCurve, 16);
    let owner = OwnerTree::build(&asg);
    let compressed = CompressedQuadtree::build(order, &particles);
    for node in compressed.nodes() {
        assert!(
            owner.owner(node.cell).is_some(),
            "compressed node {} not occupied in owner tree",
            node.cell
        );
    }
    // Occupied-cell counts per level: the owner tree's finest level matches
    // the particle count exactly (one particle per cell).
    assert_eq!(owner.level_len(order), particles.len());
    assert_eq!(compressed.num_leaves(), particles.len());
}

/// The FMM solver's tree sorts sources in Z-curve order — the *same* order
/// `Assignment` produces with `CurveKind::ZCurve` — and its answers match
/// direct summation. This ties the solver substrate to the ordering library
/// it shares with the metric engine.
#[test]
fn fmm_solver_and_assignment_share_the_z_order() {
    let n = 500;
    let sources: Vec<Source> = sample(Distribution::uniform(), 10, n, 9)
        .into_iter()
        .map(|p| Source::new(
            (p.x as f64 + 0.5) / 1024.0,
            (p.y as f64 + 0.5) / 1024.0,
            1.0,
        ))
        .collect();
    let tree = sfc_analysis::fmm::tree::FmmTree::build(&sources, 10);
    // Extract cell coords of the sorted sources; they must be in ascending
    // Morton order (ties impossible: distinct cells).
    let codes: Vec<u64> = tree
        .sources
        .iter()
        .map(|s| {
            let x = (s.pos.re * 1024.0) as u32;
            let y = (s.pos.im * 1024.0) as u32;
            CurveKind::ZCurve.index_of(10, Point2::new(x, y))
        })
        .collect();
    assert!(codes.windows(2).all(|w| w[0] < w[1]));

    // And the solver agrees with the baseline.
    let fast = Fmm::new(18).potentials(&sources);
    let exact = direct::potentials(&sources);
    let scale = exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    for (f, e) in fast.iter().zip(&exact) {
        assert!((f - e).abs() / scale < 1e-6);
    }
}

/// Grid topologies under an SFC rank map must report the same distances as
/// the generic RankedNetwork built from the same pieces.
#[test]
fn machine_matches_ranked_network() {
    use sfc_analysis::topology::{RankedNetwork, Torus2d};
    let machine = Machine::grid(TopologyKind::Torus, 256, CurveKind::Gray);
    let net = RankedNetwork::with_sfc_ranks(Torus2d::square(4), CurveKind::Gray);
    for a in (0..256u32).step_by(17) {
        for b in (0..256u32).step_by(13) {
            assert_eq!(machine.distance(a, b), net.rank_distance(a as u64, b as u64));
        }
    }
}

/// Topology closed forms agree with their own diameters over random pairs
/// (metric sanity at sweep scale).
#[test]
fn distances_never_exceed_diameter_at_scale() {
    for kind in TopologyKind::PAPER {
        let topo = kind.build(4096);
        let d = topo.diameter();
        let mut state = 1u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state % 4096;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = state % 4096;
            let dist = topo.distance(a, b);
            assert!(dist <= d, "{kind}: d({a},{b})={dist} > diameter {d}");
            assert_eq!(dist, topo.distance(b, a));
        }
    }
}
