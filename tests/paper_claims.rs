//! Integration tests asserting the paper's qualitative findings hold in this
//! implementation at moderate (laptop-friendly) scale. Each test names the
//! claim and where the paper states it.

use sfc_analysis::core::anns::anns;
use sfc_analysis::core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_analysis::core::nfi::nfi_acd;
use sfc_analysis::core::{Assignment, Machine};
use sfc_analysis::curves::{point::Norm, CurveKind};
use sfc_analysis::particles::{DistributionKind, Workload};
use sfc_analysis::topology::TopologyKind;

const SCALE: u32 = 2; // 256x256 grid, ~15.6k particles, 4096 processors
const TRIALS: u64 = 3;

/// Mean NFI/FFI ACD over trials for a (particle curve, processor curve,
/// topology, distribution) setting at the scaled Table I/II configuration.
fn acd(
    particle: CurveKind,
    processor: CurveKind,
    topology: TopologyKind,
    dist: DistributionKind,
) -> (f64, f64) {
    let workload = Workload::tables_1_2(dist, 77).scaled_down(SCALE);
    let procs = 65_536u64 >> (2 * SCALE);
    let machine = Machine::new(topology, procs, processor);
    let (mut nfi_sum, mut ffi_sum) = (0.0, 0.0);
    for t in 0..TRIALS {
        let particles = workload.particles(t);
        let asg = Assignment::new(&particles, workload.grid_order, particle, procs);
        let tree = OwnerTree::build(&asg);
        nfi_sum += nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap().acd();
        ffi_sum += ffi_acd_with_tree(&asg, &machine, &tree).unwrap().acd();
    }
    (nfi_sum / TRIALS as f64, ffi_sum / TRIALS as f64)
}

/// Section VI-A / Table I: "the results are unanimously in favor of the
/// Hilbert ordering for every particle distribution" (NFI), and the overall
/// ordering {Hilbert ≈ Z} < Gray << Row-major.
#[test]
fn table1_nfi_curve_ordering() {
    for dist in DistributionKind::ALL {
        let (hilbert, _) = acd(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Torus, dist);
        let (z, _) = acd(CurveKind::ZCurve, CurveKind::ZCurve, TopologyKind::Torus, dist);
        let (gray, _) = acd(CurveKind::Gray, CurveKind::Gray, TopologyKind::Torus, dist);
        let (row, _) = acd(CurveKind::RowMajor, CurveKind::RowMajor, TopologyKind::Torus, dist);
        assert!(
            hilbert < gray && z <= gray * 1.02,
            "{dist}: hilbert={hilbert:.3} z={z:.3} gray={gray:.3}"
        );
        assert!(
            row > 2.0 * hilbert,
            "{dist}: row-major ({row:.3}) should be far above Hilbert ({hilbert:.3})"
        );
    }
}

/// Section VI-A: with a Hilbert processor order, the Hilbert particle order
/// is the most communication-effective choice (first row of each Table I
/// block increases left to right).
#[test]
fn table1_first_row_increases() {
    let values: Vec<f64> = CurveKind::PAPER
        .iter()
        .map(|&pc| acd(pc, CurveKind::Hilbert, TopologyKind::Torus, DistributionKind::Uniform).0)
        .collect();
    for w in values.windows(2) {
        assert!(w[0] < w[1], "row not increasing: {values:?}");
    }
}

/// Section VI-A: recursive curves pay roughly a factor of two under the
/// normal distribution relative to uniform, because the central mass sits on
/// the curves' largest discontinuities.
#[test]
fn normal_distribution_penalty_for_recursive_curves() {
    let (uniform, _) = acd(
        CurveKind::Hilbert,
        CurveKind::Hilbert,
        TopologyKind::Torus,
        DistributionKind::Uniform,
    );
    let (normal, _) = acd(
        CurveKind::Hilbert,
        CurveKind::Hilbert,
        TopologyKind::Torus,
        DistributionKind::Normal,
    );
    let ratio = normal / uniform;
    assert!(
        ratio > 1.2 && ratio < 3.5,
        "normal/uniform NFI ratio {ratio:.2} outside the paper's ~2x band"
    );
}

/// Section VI-B / Figure 6: the hypercube gives the lowest near-field ACD of
/// the paper's topologies; bus and ring are far worse than every
/// 2-D-structured network; mesh and torus are comparable for the recursive
/// curves.
#[test]
fn figure6_topology_ordering() {
    let dist = DistributionKind::Uniform;
    let nfi = |topo| acd(CurveKind::Hilbert, CurveKind::Hilbert, topo, dist).0;
    let cube = nfi(TopologyKind::Hypercube);
    let mesh = nfi(TopologyKind::Mesh);
    let torus = nfi(TopologyKind::Torus);
    let quadtree = nfi(TopologyKind::Quadtree);
    let bus = nfi(TopologyKind::Bus);
    let ring = nfi(TopologyKind::Ring);
    assert!(
        cube <= torus && cube <= mesh && cube <= quadtree,
        "hypercube should win NFI: cube={cube:.3} torus={torus:.3} mesh={mesh:.3} quadtree={quadtree:.3}"
    );
    assert!(bus > 3.0 * torus, "bus ({bus:.2}) should dwarf torus ({torus:.2})");
    assert!(ring > 2.0 * torus);
    let mesh_torus_gap = (mesh - torus).abs() / torus;
    assert!(
        mesh_torus_gap < 0.25,
        "mesh and torus should be comparable for Hilbert (gap {mesh_torus_gap:.2})"
    );
}

/// Section VI-B: the row-major ordering benefits from the torus's wrapped
/// links far more than the recursive curves do (its mesh ACD is markedly
/// higher than its torus ACD).
#[test]
fn row_major_gains_from_torus_wraparound() {
    let dist = DistributionKind::Uniform;
    let (_, mesh_ffi) = acd(CurveKind::RowMajor, CurveKind::RowMajor, TopologyKind::Mesh, dist);
    let (_, torus_ffi) = acd(CurveKind::RowMajor, CurveKind::RowMajor, TopologyKind::Torus, dist);
    assert!(
        mesh_ffi > 1.15 * torus_ffi,
        "row-major FFI: mesh {mesh_ffi:.3} should clearly exceed torus {torus_ffi:.3}"
    );
    let (_, h_mesh) = acd(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Mesh, dist);
    let (_, h_torus) = acd(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Torus, dist);
    let hilbert_gap = (h_mesh - h_torus) / h_torus;
    assert!(
        hilbert_gap < 0.15,
        "Hilbert should barely benefit from wraparound (gap {hilbert_gap:.2})"
    );
}

/// Section V / Figure 5: under ANNS, Z and row-major beat Hilbert and Gray,
/// and Z and row-major are asymptotically equivalent (Xu & Tirthapura).
#[test]
fn figure5_anns_inversion() {
    for order in [6u32, 8] {
        let h = anns(CurveKind::Hilbert, order).unwrap().average();
        let z = anns(CurveKind::ZCurve, order).unwrap().average();
        let g = anns(CurveKind::Gray, order).unwrap().average();
        let r = anns(CurveKind::RowMajor, order).unwrap().average();
        assert!(z < h && z < g, "order {order}");
        assert!(r < h && r < g, "order {order}");
        assert!(
            (z - r).abs() / r < 0.01,
            "Z ({z:.2}) and row-major ({r:.2}) should be near-identical"
        );
    }
}

/// Section VI-C: NFI distribution ordering is uniform best, then
/// exponential, then normal.
#[test]
fn nfi_distribution_ordering() {
    let nfi = |d| acd(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Torus, d).0;
    let uniform = nfi(DistributionKind::Uniform);
    let normal = nfi(DistributionKind::Normal);
    let exponential = nfi(DistributionKind::Exponential);
    assert!(uniform < exponential, "{uniform:.3} !< {exponential:.3}");
    assert!(exponential < normal, "{exponential:.3} !< {normal:.3}");
}

/// Definition 1: the ACD is an average of hop distances, so it is bounded by
/// the network diameter, for every curve and topology.
#[test]
fn acd_bounded_by_diameter() {
    let procs = 65_536u64 >> (2 * SCALE);
    for topo in TopologyKind::PAPER {
        let diameter = topo.build(procs).diameter() as f64;
        for curve in CurveKind::PAPER {
            let (nfi, ffi) = acd(curve, curve, topo, DistributionKind::Uniform);
            assert!(nfi <= diameter, "{topo}/{curve}: NFI {nfi} > diameter {diameter}");
            assert!(ffi <= diameter, "{topo}/{curve}: FFI {ffi} > diameter {diameter}");
        }
    }
}
