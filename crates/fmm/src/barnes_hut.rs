//! Barnes–Hut treecode — the classic `O(n log n)` comparator for the FMM.
//!
//! Barnes & Hut (1986) approximate the far field of a cell by a single
//! expansion evaluated per *target particle* (no local expansions, no
//! downward pass): walking the tree from the root, a cell is accepted
//! whenever its size-to-distance ratio is below the opening angle `θ`,
//! otherwise its children are visited. Smaller `θ` means more accuracy and
//! more work; `θ → 0` degenerates to the direct sum.
//!
//! This implementation reuses the uniform [`crate::tree::FmmTree`]
//! and the multipole machinery (so the "monopole" of the original paper is
//! generalized to a `p`-term expansion), which makes the accuracy/cost
//! trade-off against the FMM directly measurable in the `fmm` bench.

use crate::operators::{eval_multipole, m2m, p2m, p2p, Multipole};
use crate::tree::FmmTree;
use crate::{binomial::Binomials, Source};
use rayon::prelude::*;

/// Barnes–Hut solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct BarnesHut {
    /// Opening angle: a cell of width `w` at distance `d` from the target is
    /// accepted when `w / d < theta`. Typical values 0.3–1.0.
    pub theta: f64,
    /// Terms in the per-cell expansions (1 = classic monopole).
    pub terms: usize,
    /// Target sources per leaf when choosing the tree depth.
    pub per_leaf: usize,
}

impl BarnesHut {
    /// A solver with the given opening angle, 4-term expansions and the
    /// default leaf target.
    pub fn new(theta: f64) -> Self {
        assert!(theta > 0.0 && theta < 2.0, "theta out of range: {theta}");
        BarnesHut {
            theta,
            terms: 4,
            per_leaf: 16,
        }
    }

    /// Evaluate the potential at every source position, in input order.
    pub fn potentials(&self, sources: &[Source]) -> Vec<f64> {
        let depth = FmmTree::auto_depth(sources.len(), self.per_leaf);
        let tree = FmmTree::build(sources, depth);
        // Upward pass: multipoles for every cell (same as the FMM's).
        let p = self.terms;
        let bin = Binomials::new(2 * p + 2);
        let depth = tree.depth as usize;
        let mut multipoles: Vec<Vec<Multipole>> = vec![Vec::new(); depth + 1];
        let leaves = tree.leaves();
        multipoles[depth] = (0..leaves.len())
            .into_par_iter()
            .map(|i| p2m(&tree.sources[leaves.range[i].clone()], leaves.center[i], p))
            .collect();
        for l in (0..depth).rev() {
            let fine = &tree.levels[l + 1];
            let coarse = &tree.levels[l];
            let mut agg: Vec<Multipole> = coarse
                .center
                .iter()
                .map(|&c| Multipole::zero(c, p))
                .collect();
            for (i, m) in multipoles[l + 1].iter().enumerate() {
                let shifted = m2m(m, coarse.center[fine.parent[i]], &bin);
                for k in 0..=p {
                    agg[fine.parent[i]].a[k] += shifted.a[k];
                }
            }
            multipoles[l] = agg;
        }

        // Per-target tree walk.
        let theta = self.theta;
        let phi_sorted: Vec<f64> = tree
            .sources
            .par_iter()
            .enumerate()
            .map(|(t, target)| {
                let mut phi = 0.0;
                // Iterative DFS over (level, cell index) pairs.
                let mut stack: Vec<(usize, usize)> =
                    (0..tree.levels[0].len()).map(|i| (0usize, i)).collect();
                while let Some((level, i)) = stack.pop() {
                    let lv = &tree.levels[level];
                    let width = 1.0 / (1u64 << level) as f64;
                    let d = (target.pos - lv.center[i]).abs();
                    let range = lv.range[i].clone();
                    if range.contains(&t) || (level < depth && width / d >= theta) {
                        if level == depth {
                            // Own leaf or unresolvable: direct.
                            phi += p2p(&tree.sources[range], target.pos);
                        } else {
                            // Open the cell: push existing children.
                            let fine = &tree.levels[level + 1];
                            let code = lv.codes[i];
                            for q in 0..4u64 {
                                if let Some(&j) = fine.index.get(&((code << 2) | q)) {
                                    stack.push((level + 1, j));
                                }
                            }
                        }
                    } else if width / d < theta {
                        phi += eval_multipole(&multipoles[level][i], target.pos);
                    } else {
                        // level == depth but cell still "too close": direct.
                        phi += p2p(&tree.sources[range], target.pos);
                    }
                }
                phi
            })
            .collect();

        // Back to input order.
        let side = (1u64 << tree.depth) as f64;
        let mut order: Vec<usize> = (0..sources.len()).collect();
        order.sort_by_key(|&i| {
            let s = &sources[i];
            sfc_curves::morton::encode((s.pos.re * side) as u32, (s.pos.im * side) as u32)
        });
        let mut out = vec![0.0; sources.len()];
        for (sorted_pos, &orig) in order.iter().enumerate() {
            out[orig] = phi_sorted[sorted_pos];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sources(n: usize, seed: u64) -> Vec<Source> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Source::new(rng.gen(), rng.gen(), rng.gen_range(0.2..1.0)))
            .collect()
    }

    fn max_rel_error(fast: &[f64], exact: &[f64]) -> f64 {
        let scale = exact.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        fast.iter()
            .zip(exact)
            .map(|(f, e)| (f - e).abs() / scale)
            .fold(0.0, f64::max)
    }

    #[test]
    fn approximates_direct_at_moderate_theta() {
        let sources = random_sources(800, 3);
        let exact = direct::potentials(&sources);
        let fast = BarnesHut::new(0.5).potentials(&sources);
        let err = max_rel_error(&fast, &exact);
        assert!(err < 1e-2, "theta 0.5 error {err}");
    }

    #[test]
    fn error_decreases_with_theta() {
        let sources = random_sources(500, 7);
        let exact = direct::potentials(&sources);
        let loose = max_rel_error(&BarnesHut::new(1.0).potentials(&sources), &exact);
        let tight = max_rel_error(&BarnesHut::new(0.3).potentials(&sources), &exact);
        assert!(tight < loose, "theta 0.3 ({tight}) !< theta 1.0 ({loose})");
        assert!(tight < 1e-3, "theta 0.3 error {tight}");
    }

    #[test]
    fn more_terms_help_at_fixed_theta() {
        let sources = random_sources(500, 11);
        let exact = direct::potentials(&sources);
        let mut bh = BarnesHut::new(0.7);
        bh.terms = 1; // classic monopole
        let mono = max_rel_error(&bh.potentials(&sources), &exact);
        bh.terms = 8;
        let octo = max_rel_error(&bh.potentials(&sources), &exact);
        assert!(octo < mono, "8-term ({octo}) !< monopole ({mono})");
    }

    #[test]
    fn agrees_with_fmm_within_tolerances() {
        let sources = random_sources(600, 13);
        let bh = BarnesHut::new(0.3).potentials(&sources);
        let fmm = crate::Fmm::new(16).potentials(&sources);
        let scale = fmm.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for (b, f) in bh.iter().zip(&fmm) {
            assert!((b - f).abs() / scale < 1e-2);
        }
    }

    #[test]
    fn tiny_inputs() {
        let sources = vec![Source::new(0.1, 0.1, 1.0), Source::new(0.9, 0.9, -2.0)];
        let exact = direct::potentials(&sources);
        let fast = BarnesHut::new(0.5).potentials(&sources);
        assert!(max_rel_error(&fast, &exact) < 1e-9);
    }
}
