//! Direct `O(n²)` summation — the correctness baseline for the FMM.
//!
//! This is also the "naive algorithm" the FMM's asymptotic advantage is
//! measured against in the crate's benches.

use crate::Source;
use rayon::prelude::*;

/// Potential `φ(z_t) = Σ_{i≠t} q_i ln|z_t − z_i|` at every source position.
pub fn potentials(sources: &[Source]) -> Vec<f64> {
    sources
        .par_iter()
        .enumerate()
        .map(|(t, target)| {
            let mut phi = 0.0;
            for (i, s) in sources.iter().enumerate() {
                if i == t {
                    continue;
                }
                let d = (target.pos - s.pos).abs();
                debug_assert!(d > 0.0, "coincident sources {i} and {t}");
                phi += s.charge * d.ln();
            }
            phi
        })
        .collect()
}

/// Potential at arbitrary target points (no self-exclusion).
pub fn potentials_at(sources: &[Source], targets: &[crate::Complex]) -> Vec<f64> {
    targets
        .par_iter()
        .map(|&t| {
            sources
                .iter()
                .map(|s| s.charge * (t - s.pos).abs().ln())
                .sum()
        })
        .collect()
}

/// Total interaction energy `Σ_{i<j} q_i q_j ln|z_i − z_j|`.
pub fn energy(sources: &[Source]) -> f64 {
    let phi = potentials(sources);
    0.5 * sources
        .iter()
        .zip(&phi)
        .map(|(s, p)| s.charge * p)
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_unit_charges() {
        let sources = vec![Source::new(0.0, 0.0, 1.0), Source::new(1.0, 0.0, 1.0)];
        let phi = potentials(&sources);
        // Each feels ln(1) = 0 from the other.
        assert_eq!(phi, vec![0.0, 0.0]);
    }

    #[test]
    fn charge_scaling_is_linear() {
        let a = vec![Source::new(0.1, 0.2, 1.0), Source::new(0.7, 0.9, 1.0)];
        let b = vec![Source::new(0.1, 0.2, 2.0), Source::new(0.7, 0.9, 2.0)];
        let pa = potentials(&a);
        let pb = potentials(&b);
        for (x, y) in pa.iter().zip(&pb) {
            assert!((2.0 * x - y).abs() < 1e-14);
        }
    }

    #[test]
    fn potential_at_external_targets() {
        let sources = vec![Source::new(0.0, 0.0, 3.0)];
        let targets = vec![crate::Complex::new(std::f64::consts::E, 0.0)];
        let phi = potentials_at(&sources, &targets);
        assert!((phi[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_matches_hand_computation() {
        // Three unit charges at mutual distance 1 except one pair at 2:
        // z = 0, 1, 2 on the real axis.
        let sources = vec![
            Source::new(0.0, 0.0, 1.0),
            Source::new(1.0, 0.0, 1.0),
            Source::new(2.0, 0.0, 1.0),
        ];
        // Pairs: (0,1) d=1, (1,2) d=1, (0,2) d=2 -> energy = ln 2.
        assert!((energy(&sources) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn symmetry_of_potentials_for_symmetric_input() {
        let sources = vec![
            Source::new(0.25, 0.5, 1.0),
            Source::new(0.75, 0.5, 1.0),
            Source::new(0.5, 0.25, 1.0),
            Source::new(0.5, 0.75, 1.0),
        ];
        let phi = potentials(&sources);
        assert!((phi[0] - phi[1]).abs() < 1e-12);
        assert!((phi[2] - phi[3]).abs() < 1e-12);
        assert!((phi[0] - phi[2]).abs() < 1e-12);
    }
}

/// Complex force field `Φ'(z_t) = Σ_{i≠t} q_i / (z_t − z_i)` at every
/// source, by direct summation — baseline for the FMM field evaluation.
pub fn fields(sources: &[Source]) -> Vec<crate::Complex> {
    sources
        .par_iter()
        .enumerate()
        .map(|(t, target)| {
            let mut grad = crate::Complex::default();
            for (i, s) in sources.iter().enumerate() {
                if i == t {
                    continue;
                }
                grad += (target.pos - s.pos).recip().scale(s.charge);
            }
            grad
        })
        .collect()
}

#[cfg(test)]
mod field_tests {
    use super::*;

    #[test]
    fn two_charges_repel_along_the_axis() {
        let sources = vec![Source::new(0.2, 0.5, 1.0), Source::new(0.8, 0.5, 1.0)];
        let f = fields(&sources);
        // Φ' at the left charge points toward negative x: 1/(z0−z1) < 0.
        assert!(f[0].re < 0.0 && f[0].im.abs() < 1e-15);
        assert!(f[1].re > 0.0);
        assert!((f[0].re + f[1].re).abs() < 1e-15, "equal and opposite");
    }

    #[test]
    fn field_magnitude_is_inverse_distance() {
        let sources = vec![Source::new(0.0, 0.0, 3.0), Source::new(0.5, 0.0, 1.0)];
        let f = fields(&sources);
        // At the second source the field from charge 3 at distance 0.5 is 6.
        assert!((f[1].abs() - 6.0).abs() < 1e-12);
    }
}
