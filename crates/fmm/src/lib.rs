//! # sfc-fmm
//!
//! A reference two-dimensional Fast Multipole Method for the logarithmic
//! potential — the algorithm whose communication structure the ACD model of
//! *DeFord & Kalyanaraman (ICPP 2013)* abstracts (Greengard & Rokhlin 1987;
//! the paper's Section I points to Beatson & Greengard's short course for
//! the details implemented here).
//!
//! Given `n` charges `q_i` at positions `z_i ∈ ℂ`, the solver evaluates
//!
//! ```text
//! φ(z_t) = Σ_{i ≠ t} q_i · ln|z_t − z_i|
//! ```
//!
//! at every charge location in `O(n · p²)` work for `p` expansion terms,
//! against the `O(n²)` [`direct`] baseline. The implementation follows the
//! textbook pipeline: P2M at the leaves, M2M up the quadtree, M2L across
//! each cell's interaction list (the same lists the ACD far-field model
//! walks — see [`sfc_quadtree::interaction`]), L2L down, and L2P plus direct
//! P2P in the Chebyshev-1 near field.
//!
//! ```
//! use sfc_fmm::{Fmm, Source, direct};
//!
//! let sources: Vec<Source> = (0..200)
//!     .map(|i| {
//!         let t = i as f64 / 200.0;
//!         Source::new(0.5 + 0.4 * (6.28 * t).cos(), 0.5 + 0.4 * (6.28 * t).sin(), 1.0)
//!     })
//!     .collect();
//! let fast = Fmm::new(12).potentials(&sources);
//! let exact = direct::potentials(&sources);
//! for (f, e) in fast.iter().zip(&exact) {
//!     assert!((f - e).abs() < 1e-6 * exact.iter().map(|v| v.abs()).fold(0.0, f64::max));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod barnes_hut;
pub mod binomial;
pub mod complex;
pub mod direct;
pub mod operators;
pub mod solver;
pub mod tree;

pub use adaptive::AdaptiveFmm;
pub use barnes_hut::BarnesHut;
pub use complex::Complex;
pub use solver::Fmm;

/// A point charge in the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Source {
    /// Position (both coordinates in `[0, 1)`).
    pub pos: Complex,
    /// Charge (mass) of the particle.
    pub charge: f64,
}

impl Source {
    /// Create a source at `(x, y)` with the given charge.
    pub fn new(x: f64, y: f64, charge: f64) -> Self {
        Source {
            pos: Complex::new(x, y),
            charge,
        }
    }
}
