//! The full FMM pipeline.
//!
//! One evaluation runs the textbook five phases over the
//! [`crate::tree::FmmTree`]:
//!
//! 1. **P2M** — multipole expansions at the occupied leaves;
//! 2. **M2M** — upward pass, translating children into parents
//!    (*interpolation* in the vocabulary of the ACD paper);
//! 3. **M2L** — at every level, each cell gathers the multipoles of its
//!    interaction list into its local expansion (*interaction list*);
//! 4. **L2L** — downward pass, pushing parent locals to children
//!    (*anterpolation*);
//! 5. **L2P + P2P** — evaluate the local expansion at each source and add
//!    the direct near field (Chebyshev-1 neighbor leaves).
//!
//! Phases 1, 3 and 5 are data-parallel over cells/leaves and run under
//! rayon.

use crate::binomial::Binomials;
use crate::operators::{
    eval_local, eval_local_grad, l2l, m2l, m2m, p2m, p2p, p2p_grad, Local, Multipole,
};
use crate::Complex;
use crate::tree::FmmTree;
use crate::Source;
use rayon::prelude::*;
use sfc_quadtree::interaction_list;

/// The solver configuration: expansion order and leaf population target.
#[derive(Debug, Clone, Copy)]
pub struct Fmm {
    /// Number of expansion terms `p`. The truncation error decays roughly
    /// as `0.55^p`; `p = 12` gives ~1e-3 relative error, `p = 25` ~1e-7.
    pub terms: usize,
    /// Target average number of sources per occupied leaf when choosing the
    /// tree depth automatically.
    pub per_leaf: usize,
}

impl Fmm {
    /// A solver with `terms` expansion terms and the default leaf target.
    pub fn new(terms: usize) -> Self {
        assert!((1..=60).contains(&terms), "terms out of range: {terms}");
        Fmm {
            terms,
            per_leaf: 20,
        }
    }

    /// Evaluate `φ(zᵢ) = Σ_{j≠i} q_j ln|zᵢ − z_j|` at every source,
    /// returning values in the *input* order of `sources`.
    pub fn potentials(&self, sources: &[Source]) -> Vec<f64> {
        let depth = FmmTree::auto_depth(sources.len(), self.per_leaf);
        self.potentials_with_depth(sources, depth)
    }

    /// As [`Fmm::potentials`], with an explicit tree depth.
    pub fn potentials_with_depth(&self, sources: &[Source], depth: u32) -> Vec<f64> {
        let tree = FmmTree::build(sources, depth);
        let phi_sorted = self.run(&tree);
        // Map back to input order. The tree sorted sources by Morton code;
        // we rebuild the permutation by sorting indices the same way.
        let side = (1u64 << depth) as f64;
        let mut order: Vec<usize> = (0..sources.len()).collect();
        order.sort_by_key(|&i| {
            let s = &sources[i];
            sfc_curves::morton::encode((s.pos.re * side) as u32, (s.pos.im * side) as u32)
        });
        let mut out = vec![0.0; sources.len()];
        for (sorted_pos, &orig) in order.iter().enumerate() {
            out[orig] = phi_sorted[sorted_pos];
        }
        out
    }

    /// Evaluate both the potential and the force field
    /// `Φ'(zᵢ) = Σ_{j≠i} q_j / (zᵢ − z_j)` at every source, in input order.
    /// The physical gradient of the potential is `(Re Φ', −Im Φ')`.
    pub fn potentials_and_fields(&self, sources: &[Source]) -> Vec<(f64, Complex)> {
        let depth = FmmTree::auto_depth(sources.len(), self.per_leaf);
        let tree = FmmTree::build(sources, depth);
        let sorted = self.run_fields(&tree);
        let side = (1u64 << depth) as f64;
        let mut order: Vec<usize> = (0..sources.len()).collect();
        order.sort_by_key(|&i| {
            let s = &sources[i];
            sfc_curves::morton::encode((s.pos.re * side) as u32, (s.pos.im * side) as u32)
        });
        let mut out = vec![(0.0, Complex::default()); sources.len()];
        for (sorted_pos, &orig) in order.iter().enumerate() {
            out[orig] = sorted[sorted_pos];
        }
        out
    }

    /// Phases 1–4 of the pipeline: the converged local expansion of every
    /// leaf, in leaf order.
    #[allow(clippy::needless_range_loop)] // level indices mirror the pipeline
    fn downward_locals(&self, tree: &FmmTree) -> Vec<Local> {
        let p = self.terms;
        let bin = Binomials::new(2 * p + 2);
        let depth = tree.depth as usize;

        // Phase 1: P2M at the leaves.
        let leaves = tree.leaves();
        let leaf_multipoles: Vec<Multipole> = (0..leaves.len())
            .into_par_iter()
            .map(|i| p2m(&tree.sources[leaves.range[i].clone()], leaves.center[i], p))
            .collect();

        // Phase 2: M2M upward. multipoles[l][i] for level l cell i.
        let mut multipoles: Vec<Vec<Multipole>> = vec![Vec::new(); depth + 1];
        multipoles[depth] = leaf_multipoles;
        for l in (0..depth).rev() {
            let fine = &tree.levels[l + 1];
            let coarse = &tree.levels[l];
            let fine_m = &multipoles[l + 1];
            let mut agg: Vec<Multipole> = coarse
                .center
                .iter()
                .map(|&c| Multipole::zero(c, p))
                .collect();
            // Children are contiguous in the fine level (both sorted by
            // Morton code), so accumulate serially per parent.
            for (i, m) in fine_m.iter().enumerate() {
                let parent = fine.parent[i];
                let shifted = m2m(m, coarse.center[parent], &bin);
                for k in 0..=p {
                    agg[parent].a[k] += shifted.a[k];
                }
            }
            multipoles[l] = agg;
        }

        // Phases 3 + 4: downward with M2L per level.
        let mut locals: Vec<Local> = tree.levels[0]
            .center
            .iter()
            .map(|&c| Local::zero(c, p))
            .collect();
        for l in 1..=depth {
            let level = &tree.levels[l];
            let coarse_locals = locals;
            let ms = &multipoles[l];
            locals = (0..level.len())
                .into_par_iter()
                .map(|i| {
                    // L2L from the parent...
                    let parent_local = &coarse_locals[level.parent[i]];
                    let mut local = l2l(parent_local, level.center[i], &bin);
                    // ...plus M2L from every occupied interaction-list cell.
                    for other in interaction_list(level.cell(i)) {
                        if let Some(&j) = level.index.get(&other.code()) {
                            m2l(&ms[j], &mut local, &bin);
                        }
                    }
                    local
                })
                .collect();
        }

        locals
    }

    /// Run the pipeline over a prebuilt tree; results follow the tree's
    /// (Morton-sorted) source order.
    pub fn run(&self, tree: &FmmTree) -> Vec<f64> {
        let locals = self.downward_locals(tree);
        // Phase 5: L2P + P2P at the leaves.
        let leaves = tree.leaves();
        let mut phi = vec![0.0; tree.sources.len()];
        let chunks: Vec<(usize, Vec<f64>)> = (0..leaves.len())
            .into_par_iter()
            .map(|i| {
                let range = leaves.range[i].clone();
                let near = near_field_ranges(tree, i);
                let values: Vec<f64> = tree.sources[range.clone()]
                    .iter()
                    .map(|s| {
                        let mut v = eval_local(&locals[i], s.pos);
                        for r in &near {
                            v += p2p(&tree.sources[r.clone()], s.pos);
                        }
                        v
                    })
                    .collect();
                (range.start, values)
            })
            .collect();
        for (start, values) in chunks {
            phi[start..start + values.len()].copy_from_slice(&values);
        }
        phi
    }

    /// Like [`Fmm::run`], additionally evaluating the complex force field.
    pub fn run_fields(&self, tree: &FmmTree) -> Vec<(f64, Complex)> {
        let locals = self.downward_locals(tree);
        let leaves = tree.leaves();
        let mut out = vec![(0.0, Complex::default()); tree.sources.len()];
        let chunks: Vec<(usize, Vec<(f64, Complex)>)> = (0..leaves.len())
            .into_par_iter()
            .map(|i| {
                let range = leaves.range[i].clone();
                let near = near_field_ranges(tree, i);
                let values: Vec<(f64, Complex)> = tree.sources[range.clone()]
                    .iter()
                    .map(|s| {
                        let mut v = eval_local(&locals[i], s.pos);
                        let mut g = eval_local_grad(&locals[i], s.pos);
                        for r in &near {
                            v += p2p(&tree.sources[r.clone()], s.pos);
                            g += p2p_grad(&tree.sources[r.clone()], s.pos);
                        }
                        (v, g)
                    })
                    .collect();
                (range.start, values)
            })
            .collect();
        for (start, values) in chunks {
            out[start..start + values.len()].copy_from_slice(&values);
        }
        out
    }
}

/// Source ranges of a leaf's near field: the leaf itself plus its occupied
/// Chebyshev-1 neighbors.
fn near_field_ranges(tree: &FmmTree, leaf: usize) -> Vec<std::ops::Range<usize>> {
    let leaves = tree.leaves();
    let cell = leaves.cell(leaf);
    let mut near = vec![leaves.range[leaf].clone()];
    for nb in cell.neighbors() {
        if let Some(&j) = leaves.index.get(&nb.code()) {
            near.push(leaves.range[j].clone());
        }
    }
    near
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sources(n: usize, seed: u64) -> Vec<Source> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Source::new(
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect()
    }

    fn max_rel_error(fast: &[f64], exact: &[f64]) -> f64 {
        let scale = exact.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
        fast.iter()
            .zip(exact)
            .map(|(f, e)| (f - e).abs() / scale)
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_direct_on_random_input() {
        let sources = random_sources(800, 17);
        let exact = direct::potentials(&sources);
        let fast = Fmm::new(22).potentials(&sources);
        let err = max_rel_error(&fast, &exact);
        assert!(err < 1e-6, "relative error {err}");
    }

    #[test]
    fn accuracy_improves_with_expansion_order() {
        let sources = random_sources(300, 5);
        let exact = direct::potentials(&sources);
        let mut last = f64::INFINITY;
        for p in [4usize, 10, 18, 28] {
            let fast = Fmm::new(p).potentials(&sources);
            let err = max_rel_error(&fast, &exact);
            assert!(
                err < last * 1.5 + 1e-13,
                "order {p}: error {err} vs previous {last}"
            );
            last = err;
        }
        assert!(last < 1e-8, "final error {last}");
    }

    #[test]
    fn explicit_depths_agree() {
        let sources = random_sources(400, 9);
        let exact = direct::potentials(&sources);
        for depth in [2u32, 3, 4] {
            let fast = Fmm::new(20).potentials_with_depth(&sources, depth);
            let err = max_rel_error(&fast, &exact);
            assert!(err < 1e-5, "depth {depth}: error {err}");
        }
    }

    #[test]
    fn clustered_input() {
        // All mass in one corner exercises empty interaction lists and
        // shallow effective trees.
        let mut rng = StdRng::seed_from_u64(23);
        let sources: Vec<Source> = (0..500)
            .map(|_| {
                Source::new(
                    rng.gen_range(0.0..0.12),
                    rng.gen_range(0.0..0.12),
                    rng.gen_range(0.5..1.5),
                )
            })
            .collect();
        let exact = direct::potentials(&sources);
        let fast = Fmm::new(20).potentials(&sources);
        assert!(max_rel_error(&fast, &exact) < 1e-6);
    }

    #[test]
    fn tiny_inputs_fall_back_gracefully() {
        let sources = vec![
            Source::new(0.2, 0.2, 1.0),
            Source::new(0.8, 0.8, -1.0),
            Source::new(0.2, 0.8, 0.5),
        ];
        let exact = direct::potentials(&sources);
        let fast = Fmm::new(15).potentials(&sources);
        assert!(max_rel_error(&fast, &exact) < 1e-9);
    }

    #[test]
    fn results_follow_input_order() {
        let sources = random_sources(200, 31);
        let exact = direct::potentials(&sources);
        let fast = Fmm::new(20).potentials(&sources);
        // Spot-check alignment at specific indices (not just the max norm):
        for i in [0usize, 57, 123, 199] {
            assert!(
                (fast[i] - exact[i]).abs() < 1e-5 * (1.0 + exact[i].abs()),
                "index {i}: {} vs {}",
                fast[i],
                exact[i]
            );
        }
    }
}

#[cfg(test)]
mod field_tests {
    use super::*;
    use crate::direct;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fields_match_direct() {
        let mut rng = StdRng::seed_from_u64(41);
        let sources: Vec<Source> = (0..700)
            .map(|_| {
                Source::new(
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let fast = Fmm::new(22).potentials_and_fields(&sources);
        let exact_phi = direct::potentials(&sources);
        let exact_grad = direct::fields(&sources);
        let phi_scale = exact_phi.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let grad_scale = exact_grad.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for ((f, g), (e_phi, e_grad)) in fast.iter().zip(exact_phi.iter().zip(&exact_grad)) {
            assert!((f - e_phi).abs() / phi_scale < 1e-6);
            assert!((*g - *e_grad).abs() / grad_scale < 1e-6);
        }
    }

    #[test]
    fn potentials_agree_between_apis() {
        let mut rng = StdRng::seed_from_u64(42);
        let sources: Vec<Source> = (0..300)
            .map(|_| Source::new(rng.gen(), rng.gen(), 1.0))
            .collect();
        let solver = Fmm::new(16);
        let phi_only = solver.potentials(&sources);
        let both = solver.potentials_and_fields(&sources);
        for (a, (b, _)) in phi_only.iter().zip(&both) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
