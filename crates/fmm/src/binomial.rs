//! Binomial coefficient tables for the translation operators.
//!
//! The M2M/M2L/L2L lemmas of Greengard & Rokhlin are sums weighted by
//! binomial coefficients with arguments up to `2p` for a `p`-term expansion.
//! A Pascal-triangle table in `f64` is exact for all coefficients the solver
//! uses (every `C(n, k)` with `n < 64` fits in the 53-bit mantissa for the
//! orders involved here, `n ≤ ~60`).

/// A dense table of binomial coefficients `C(n, k)` for `0 ≤ k ≤ n ≤ max_n`.
#[derive(Debug, Clone)]
pub struct Binomials {
    max_n: usize,
    /// Row-major triangle, row `n` has `n + 1` entries.
    rows: Vec<Vec<f64>>,
}

impl Binomials {
    /// Build the table up to `C(max_n, ·)`.
    pub fn new(max_n: usize) -> Self {
        assert!(max_n <= 1020, "binomial table capped (f64 overflow)");
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(max_n + 1);
        for n in 0..=max_n {
            let mut row = vec![1.0; n + 1];
            for k in 1..n {
                row[k] = rows[n - 1][k - 1] + rows[n - 1][k];
            }
            rows.push(row);
        }
        Binomials { max_n, rows }
    }

    /// `C(n, k)`; zero for `k > n`.
    #[inline]
    pub fn c(&self, n: usize, k: usize) -> f64 {
        debug_assert!(n <= self.max_n, "C({n}, {k}) beyond table");
        if k > n {
            0.0
        } else {
            self.rows[n][k]
        }
    }

    /// Largest `n` the table covers.
    pub fn max_n(&self) -> usize {
        self.max_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        let b = Binomials::new(10);
        assert_eq!(b.c(0, 0), 1.0);
        assert_eq!(b.c(5, 0), 1.0);
        assert_eq!(b.c(5, 5), 1.0);
        assert_eq!(b.c(5, 2), 10.0);
        assert_eq!(b.c(10, 5), 252.0);
        assert_eq!(b.c(4, 7), 0.0);
    }

    #[test]
    fn pascal_identity() {
        let b = Binomials::new(30);
        for n in 1..=30usize {
            for k in 1..n {
                assert_eq!(b.c(n, k), b.c(n - 1, k - 1) + b.c(n - 1, k));
            }
        }
    }

    #[test]
    fn rows_sum_to_powers_of_two() {
        let b = Binomials::new(40);
        for n in 0..=40usize {
            let sum: f64 = (0..=n).map(|k| b.c(n, k)).sum();
            assert_eq!(sum, (2.0f64).powi(n as i32));
        }
    }

    #[test]
    fn values_exact_at_solver_orders() {
        // C(60, 30) ≈ 1.18e17 still exceeds 2^53... the solver only uses
        // n ≤ 2p with p ≤ 30 and k near the edges in practice; verify
        // exactness where it matters by comparing against u128 arithmetic.
        let b = Binomials::new(52);
        fn exact(n: u32, k: u32) -> u128 {
            // C(n, i) = C(n, i-1) * (n-i+1) / i stays integral at each step.
            let mut c: u128 = 1;
            for i in 1..=k {
                c = c * (n - i + 1) as u128 / i as u128;
            }
            c
        }
        for n in 0..=52u32 {
            for k in 0..=n {
                let e = exact(n, k);
                if e < (1u128 << 53) {
                    assert_eq!(b.c(n as usize, k as usize), e as f64, "C({n},{k})");
                }
            }
        }
    }
}
