//! Adaptive FMM on a 2:1-balanced quadtree.
//!
//! The uniform solver in [`crate::solver`] refines every region to the same
//! depth, which wastes an `O(4^L)` tree on clustered inputs. This module
//! implements the classic *adaptive* algorithm (Greengard & Rokhlin;
//! Carrier, Greengard & Rokhlin 1988): leaves subdivide only while they hold
//! more than `max_per_leaf` sources, the resulting linear quadtree is 2:1
//! balanced ([`sfc_quadtree::balance`] — the Sundar-Sampath-Biros refinement
//! the paper cites), and each box interacts through the four classical
//! lists:
//!
//! - **U** (leaf ↔ adjacent leaves, any level): direct P2P;
//! - **V** (same-level well-separated cousins): M2L, exactly the
//!   interaction lists of the uniform algorithm and of the paper's ACD
//!   far-field model;
//! - **W** (leaf ↔ smaller non-adjacent descendants of its colleagues):
//!   the small box's multipole evaluated at the leaf's points (M2P);
//! - **X** (dual of W): the small box receives the leaf's points directly
//!   into its local expansion (P2L).
//!
//! With 2:1 balance the U/W/X lists are O(1) per box, giving the usual
//! `O(n p²)` total. Accuracy is validated against direct summation on
//! heavily clustered inputs where the uniform tree would degenerate.

use crate::binomial::Binomials;
use crate::complex::{Complex, ONE};
use crate::operators::{
    eval_local, eval_multipole, l2l, m2l, m2m, p2m, p2p, Local, Multipole,
};
use crate::Source;
use sfc_quadtree::balance::LinearQuadtree;
use sfc_quadtree::{interaction_list, regions_touch, Cell};
use std::collections::HashMap;
use std::ops::Range;

/// Adaptive fast multipole solver.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveFmm {
    /// Expansion terms `p`.
    pub terms: usize,
    /// Split a leaf while it holds more than this many sources.
    pub max_per_leaf: usize,
    /// Hard refinement floor (maximum leaf level).
    pub max_level: u32,
}

impl AdaptiveFmm {
    /// A solver with `terms` expansion terms and default refinement policy.
    pub fn new(terms: usize) -> Self {
        assert!((1..=60).contains(&terms));
        AdaptiveFmm {
            terms,
            max_per_leaf: 30,
            max_level: 12,
        }
    }

    /// Evaluate `φ(zᵢ) = Σ_{j≠i} q_j ln|zᵢ − z_j|` at every source, in input
    /// order.
    pub fn potentials(&self, sources: &[Source]) -> Vec<f64> {
        let tree = AdaptiveTree::build(sources, self.max_per_leaf, self.max_level);
        let sorted_phi = self.run(&tree);
        let mut out = vec![0.0; sources.len()];
        for (sorted_pos, &orig) in tree.input_index.iter().enumerate() {
            out[orig] = sorted_phi[sorted_pos];
        }
        out
    }

    /// Run the pipeline on a prebuilt tree; results in the tree's source
    /// order.
    pub fn run(&self, tree: &AdaptiveTree) -> Vec<f64> {
        let p = self.terms;
        let bin = Binomials::new(2 * p + 2);
        let n_nodes = tree.nodes.len();

        // Upward: P2M at leaves, M2M into ancestors (nodes are sorted by
        // level; walk finest-to-coarsest).
        let mut multipoles: Vec<Multipole> = tree
            .center
            .iter()
            .map(|&c| Multipole::zero(c, p))
            .collect();
        for idx in (0..n_nodes).rev() {
            let cell = tree.nodes[idx];
            if let Some(&leaf) = tree.leaf_of_cell.get(&cell) {
                multipoles[idx] = p2m(
                    &tree.sources[tree.leaf_range[leaf].clone()],
                    tree.center[idx],
                    p,
                );
            }
            if let Some(parent) = tree.parent[idx] {
                let shifted = m2m(&multipoles[idx], tree.center[parent], &bin);
                for k in 0..=p {
                    multipoles[parent].a[k] += shifted.a[k];
                }
            }
        }

        // Downward: locals in coarse-to-fine order.
        let mut locals: Vec<Local> = tree
            .center
            .iter()
            .map(|&c| Local::zero(c, p))
            .collect();
        for idx in 0..n_nodes {
            let cell = tree.nodes[idx];
            // L2L from the parent.
            if let Some(parent) = tree.parent[idx] {
                let shifted = l2l(&locals[parent], tree.center[idx], &bin);
                for k in 0..=p {
                    locals[idx].b[k] += shifted.b[k];
                }
            }
            // V list: M2L from well-separated same-level nodes.
            for v in interaction_list(cell) {
                if let Some(&vi) = tree.node_of_cell.get(&v) {
                    let m = multipoles[vi].clone();
                    m2l(&m, &mut locals[idx], &bin);
                }
            }
            // X list: P2L from the sources of leaves that see this box in
            // their W list.
            for &leaf in &tree.x_list[idx] {
                p2l(
                    &tree.sources[tree.leaf_range[leaf].clone()],
                    &mut locals[idx],
                );
            }
        }

        // Leaf evaluation: local + U (P2P) + W (M2P).
        let mut phi = vec![0.0; tree.sources.len()];
        for (leaf, &cell) in tree.leaves.iter().enumerate() {
            let node = tree.node_of_cell[&cell];
            let range = tree.leaf_range[leaf].clone();
            if range.is_empty() {
                continue;
            }
            let u_ranges: Vec<Range<usize>> = tree.u_list[leaf]
                .iter()
                .map(|&l| tree.leaf_range[l].clone())
                .collect();
            for i in range.clone() {
                let z = tree.sources[i].pos;
                let mut v = eval_local(&locals[node], z);
                for r in &u_ranges {
                    v += p2p(&tree.sources[r.clone()], z);
                }
                for &w in &tree.w_list[leaf] {
                    v += eval_multipole(&multipoles[w], z);
                }
                phi[i] = v;
            }
        }
        phi
    }
}

/// P2L: accumulate the Taylor expansion of each source's potential about the
/// local center — `b_l += −(q/l)(−1/t)^l` with `t = center − z_src`,
/// `b_0 += q ln(t)`.
fn p2l(sources: &[Source], out: &mut Local) {
    let p = out.order();
    for s in sources {
        let t = out.center - s.pos;
        out.b[0] += t.ln().scale(s.charge);
        let f = t.recip().scale(-1.0);
        let mut pow = ONE;
        for l in 1..=p {
            pow *= f;
            out.b[l] += pow.scale(-s.charge / l as f64);
        }
    }
}

/// The adaptive tree plus all interaction lists.
pub struct AdaptiveTree {
    /// Complete, 2:1-balanced leaf partition.
    pub leaves: Vec<Cell>,
    /// All tree boxes (leaves and ancestors), sorted by (level, Morton).
    pub nodes: Vec<Cell>,
    /// Cell → node index.
    pub node_of_cell: HashMap<Cell, usize>,
    /// Cell → leaf index (leaves only).
    pub leaf_of_cell: HashMap<Cell, usize>,
    /// Parent node index per node (None for the root).
    pub parent: Vec<Option<usize>>,
    /// Geometric center per node.
    pub center: Vec<Complex>,
    /// Sources sorted by leaf order.
    pub sources: Vec<Source>,
    /// For result scatter: `input_index[i]` = original position of sorted
    /// source `i`.
    pub input_index: Vec<usize>,
    /// Source range per leaf.
    pub leaf_range: Vec<Range<usize>>,
    /// U list per leaf: adjacent leaves (including itself).
    pub u_list: Vec<Vec<usize>>,
    /// W list per leaf: node indices whose multipoles are evaluated at the
    /// leaf's points.
    pub w_list: Vec<Vec<usize>>,
    /// X list per node: leaf indices whose sources enter the node's local
    /// expansion directly.
    pub x_list: Vec<Vec<usize>>,
}

impl AdaptiveTree {
    /// Build the balanced adaptive tree and all lists.
    pub fn build(sources: &[Source], max_per_leaf: usize, max_level: u32) -> Self {
        assert!(!sources.is_empty());
        assert!(max_per_leaf >= 1);
        assert!((1..=20).contains(&max_level));
        // 1. Adaptive refinement: seed cells = occupied leaves of the
        // unbalanced point tree.
        let side = (1u64 << max_level) as f64;
        let cells: Vec<Cell> = sources
            .iter()
            .map(|s| {
                assert!(
                    s.pos.re >= 0.0 && s.pos.re < 1.0 && s.pos.im >= 0.0 && s.pos.im < 1.0,
                    "source at {} outside the unit square",
                    s.pos
                );
                Cell::new(
                    max_level,
                    (s.pos.re * side) as u32,
                    (s.pos.im * side) as u32,
                )
            })
            .collect();
        let mut seeds = Vec::new();
        split(Cell::ROOT, &(0..sources.len()).collect::<Vec<_>>(), &cells, max_per_leaf, max_level, &mut seeds);

        // 2. Complete + balance.
        let mut linear = LinearQuadtree::from_seeds(max_level, &seeds);
        linear.balance();
        let leaves: Vec<Cell> = linear.leaves().to_vec();
        let leaf_of_cell: HashMap<Cell, usize> =
            leaves.iter().enumerate().map(|(i, &c)| (c, i)).collect();

        // 3. Assign sources to leaves and sort by leaf order.
        let mut keyed: Vec<(usize, usize)> = sources
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let mut cur = cells[i];
                let leaf = loop {
                    if let Some(&l) = leaf_of_cell.get(&cur) {
                        break l;
                    }
                    cur = cur.parent().expect("complete tree covers every cell");
                };
                (leaf, i)
            })
            .collect();
        keyed.sort_unstable();
        let sorted: Vec<Source> = keyed.iter().map(|&(_, i)| sources[i]).collect();
        let input_index: Vec<usize> = keyed.iter().map(|&(_, i)| i).collect();
        let mut leaf_range: Vec<Range<usize>> = Vec::with_capacity(leaves.len());
        {
            let mut start = 0usize;
            for leaf in 0..leaves.len() {
                let mut end = start;
                while end < keyed.len() && keyed[end].0 == leaf {
                    end += 1;
                }
                leaf_range.push(start..end);
                start = end;
            }
            assert_eq!(start, keyed.len());
        }

        // 4. Node set: leaves plus all ancestors.
        let mut node_set: std::collections::HashSet<Cell> = leaves.iter().copied().collect();
        for &leaf in &leaves {
            let mut cur = leaf;
            while let Some(p) = cur.parent() {
                if !node_set.insert(p) {
                    break;
                }
                cur = p;
            }
        }
        let mut nodes: Vec<Cell> = node_set.into_iter().collect();
        nodes.sort_unstable_by_key(|c| (c.level, c.code()));
        let node_of_cell: HashMap<Cell, usize> =
            nodes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let parent: Vec<Option<usize>> = nodes
            .iter()
            .map(|c| c.parent().map(|p| node_of_cell[&p]))
            .collect();
        let center: Vec<Complex> = nodes
            .iter()
            .map(|c| {
                let w = 1.0 / c.level_side() as f64;
                Complex::new((c.x as f64 + 0.5) * w, (c.y as f64 + 0.5) * w)
            })
            .collect();

        let mut tree = AdaptiveTree {
            leaves,
            nodes,
            node_of_cell,
            leaf_of_cell,
            parent,
            center,
            sources: sorted,
            input_index,
            leaf_range,
            u_list: Vec::new(),
            w_list: Vec::new(),
            x_list: Vec::new(),
        };

        // 5. Lists.
        tree.u_list = (0..tree.leaves.len())
            .map(|l| tree.adjacent_leaves(tree.leaves[l]))
            .collect();
        tree.w_list = (0..tree.leaves.len())
            .map(|l| tree.w_of(tree.leaves[l]))
            .collect();
        let mut x_list: Vec<Vec<usize>> = vec![Vec::new(); tree.nodes.len()];
        for (leaf, ws) in tree.w_list.iter().enumerate() {
            for &w in ws {
                x_list[w].push(leaf);
            }
        }
        tree.x_list = x_list;
        tree
    }

    /// True if the cell is an internal node (has children in the tree).
    fn is_internal(&self, c: Cell) -> bool {
        self.node_of_cell.contains_key(&c) && !self.leaf_of_cell.contains_key(&c)
    }

    /// All leaves whose regions touch `b` (including `b` itself).
    fn adjacent_leaves(&self, b: Cell) -> Vec<usize> {
        let mut out = vec![self.leaf_of_cell[&b]];
        for n in b.neighbors() {
            if let Some(&l) = self.leaf_of_cell.get(&n) {
                out.push(l);
            } else if self.is_internal(n) {
                self.descend_touching(n, b, &mut out);
            } else {
                // Covered by a coarser leaf.
                let mut cur = n;
                while let Some(p) = cur.parent() {
                    if let Some(&l) = self.leaf_of_cell.get(&p) {
                        out.push(l);
                        break;
                    }
                    cur = p;
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn descend_touching(&self, n: Cell, b: Cell, out: &mut Vec<usize>) {
        for child in n.children() {
            if !regions_touch(child, b) {
                continue;
            }
            if let Some(&l) = self.leaf_of_cell.get(&child) {
                out.push(l);
            } else {
                debug_assert!(self.is_internal(child), "complete tree");
                self.descend_touching(child, b, out);
            }
        }
    }

    /// W list of a leaf: node indices of non-touching descendants of the
    /// leaf's internal colleagues whose parents touch the leaf.
    fn w_of(&self, b: Cell) -> Vec<usize> {
        let mut out = Vec::new();
        for n in b.neighbors() {
            if self.is_internal(n) {
                self.w_descend(n, b, &mut out);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn w_descend(&self, n: Cell, b: Cell, out: &mut Vec<usize>) {
        for child in n.children() {
            if regions_touch(child, b) {
                if self.is_internal(child) {
                    self.w_descend(child, b, out);
                }
                // Touching leaves are U-list members, not W.
            } else {
                out.push(self.node_of_cell[&child]);
            }
        }
    }
}

/// Recursive adaptive split: emit occupied leaf seed cells.
fn split(
    cell: Cell,
    indices: &[usize],
    cells: &[Cell],
    max_per_leaf: usize,
    max_level: u32,
    seeds: &mut Vec<Cell>,
) {
    if indices.is_empty() {
        return;
    }
    if indices.len() <= max_per_leaf || cell.level == max_level {
        seeds.push(cell);
        return;
    }
    for child in cell.children() {
        let sub: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| child.contains(cells[i]))
            .collect();
        split(child, &sub, cells, max_per_leaf, max_level, seeds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn max_rel_error(fast: &[f64], exact: &[f64]) -> f64 {
        let scale = exact.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        fast.iter()
            .zip(exact)
            .map(|(f, e)| (f - e).abs() / scale)
            .fold(0.0, f64::max)
    }

    fn clustered_sources(n: usize, seed: u64) -> Vec<Source> {
        // Three tight clusters plus sparse background: the adaptive case.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let (cx, cy, s) = match i % 8 {
                    0..=3 => (0.101, 0.103, 0.004),
                    4..=5 => (0.87, 0.88, 0.01),
                    6 => (0.52, 0.13, 0.002),
                    _ => (0.5, 0.5, 0.45),
                };
                loop {
                    let x = cx + rng.gen_range(-1.0..1.0) * s;
                    let y = cy + rng.gen_range(-1.0..1.0) * s;
                    if (0.0..1.0).contains(&x) && (0.0..1.0).contains(&y) {
                        return Source::new(x, y, rng.gen_range(-1.0..1.0));
                    }
                }
            })
            .collect()
    }

    #[test]
    fn tree_structure_invariants() {
        let sources = clustered_sources(2000, 3);
        let tree = AdaptiveTree::build(&sources, 25, 10);
        // Every source in exactly one leaf range, ranges partition sources.
        let total: usize = tree.leaf_range.iter().map(|r| r.len()).sum();
        assert_eq!(total, sources.len());
        // Leaf levels vary (that's the point of adaptivity).
        let min = tree.leaves.iter().map(|c| c.level).min().unwrap();
        let max = tree.leaves.iter().map(|c| c.level).max().unwrap();
        assert!(max > min, "tree did not adapt: all leaves at level {min}");
        // U lists contain self; W/X duality.
        for (leaf, u) in tree.u_list.iter().enumerate() {
            assert!(u.contains(&leaf));
        }
        let w_total: usize = tree.w_list.iter().map(|w| w.len()).sum();
        let x_total: usize = tree.x_list.iter().map(|x| x.len()).sum();
        assert_eq!(w_total, x_total);
    }

    #[test]
    fn matches_direct_on_clustered_input() {
        let sources = clustered_sources(1500, 7);
        let exact = direct::potentials(&sources);
        let fast = AdaptiveFmm::new(22).potentials(&sources);
        let err = max_rel_error(&fast, &exact);
        assert!(err < 1e-6, "relative error {err}");
    }

    #[test]
    fn matches_direct_on_uniform_input() {
        let mut rng = StdRng::seed_from_u64(11);
        let sources: Vec<Source> = (0..1000)
            .map(|_| Source::new(rng.gen(), rng.gen(), rng.gen_range(-1.0..1.0)))
            .collect();
        let exact = direct::potentials(&sources);
        let fast = AdaptiveFmm::new(20).potentials(&sources);
        assert!(max_rel_error(&fast, &exact) < 1e-6);
    }

    #[test]
    fn agrees_with_uniform_solver() {
        let sources = clustered_sources(800, 19);
        let adaptive = AdaptiveFmm::new(18).potentials(&sources);
        let uniform = crate::Fmm::new(18).potentials(&sources);
        let scale = uniform.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for (a, u) in adaptive.iter().zip(&uniform) {
            assert!((a - u).abs() / scale < 1e-5);
        }
    }

    #[test]
    fn tiny_input_single_leaf() {
        let sources = vec![
            Source::new(0.3, 0.3, 1.0),
            Source::new(0.31, 0.32, -1.0),
            Source::new(0.7, 0.1, 0.5),
        ];
        let exact = direct::potentials(&sources);
        let fast = AdaptiveFmm::new(15).potentials(&sources);
        assert!(max_rel_error(&fast, &exact) < 1e-10);
    }

    #[test]
    fn accuracy_improves_with_order() {
        let sources = clustered_sources(600, 23);
        let exact = direct::potentials(&sources);
        let coarse = max_rel_error(&AdaptiveFmm::new(6).potentials(&sources), &exact);
        let fine = max_rel_error(&AdaptiveFmm::new(24).potentials(&sources), &exact);
        assert!(fine < coarse);
        assert!(fine < 1e-7, "order-24 error {fine}");
    }

    #[test]
    fn adaptive_tree_is_much_smaller_than_uniform() {
        // All mass in one tiny cluster: the uniform tree at the depth needed
        // to separate the points would have millions of cells; the adaptive
        // tree stays tiny.
        let mut rng = StdRng::seed_from_u64(31);
        let sources: Vec<Source> = (0..500)
            .map(|_| {
                Source::new(
                    0.4 + rng.gen_range(0.0..0.002),
                    0.4 + rng.gen_range(0.0..0.002),
                    1.0,
                )
            })
            .collect();
        let tree = AdaptiveTree::build(&sources, 25, 12);
        assert!(
            tree.leaves.len() < 3000,
            "{} leaves for a point cluster",
            tree.leaves.len()
        );
        let exact = direct::potentials(&sources);
        let fast = AdaptiveFmm::new(20).potentials(&sources);
        assert!(max_rel_error(&fast, &exact) < 1e-6);
    }
}
