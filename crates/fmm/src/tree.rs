//! The uniform quadtree the solver runs on.
//!
//! Sources live in the unit square; the tree refines it uniformly to a leaf
//! level `L` (so the leaves are the `4^L` cells of a `2^L × 2^L` grid, of
//! which only occupied ones are stored). Sources are sorted by the Morton
//! code of their leaf — i.e. ordered by the Z-curve, the same particle
//! ordering the ACD model studies — so every tree node owns one contiguous
//! slice of the source array.

use crate::{Complex, Source};
use sfc_curves::morton;
use sfc_quadtree::Cell;
use std::collections::HashMap;
use std::ops::Range;

/// One resolution level of the tree: the occupied cells and their links.
#[derive(Debug, Clone)]
pub struct Level {
    /// Resolution level (0 = root).
    pub level: u32,
    /// Morton codes of the occupied cells, ascending.
    pub codes: Vec<u64>,
    /// Code → index in `codes`.
    pub index: HashMap<u64, usize>,
    /// For each cell, its parent's index in the coarser level (unused at
    /// the root).
    pub parent: Vec<usize>,
    /// For each cell, the source range it owns.
    pub range: Vec<Range<usize>>,
    /// Geometric center of each cell.
    pub center: Vec<Complex>,
}

impl Level {
    /// Number of occupied cells at this level.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the level holds no cells.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The [`Cell`] geometry of the `i`-th occupied cell.
    pub fn cell(&self, i: usize) -> Cell {
        Cell::from_code(self.level, self.codes[i])
    }
}

/// A uniform FMM quadtree with sources sorted into its leaves.
#[derive(Debug, Clone)]
pub struct FmmTree {
    /// Leaf level `L`.
    pub depth: u32,
    /// Sources, sorted by leaf Morton code.
    pub sources: Vec<Source>,
    /// Levels `0 ..= depth`.
    pub levels: Vec<Level>,
}

/// Center of cell `(cx, cy)` at `level` in the unit square.
fn cell_center(level: u32, cx: u32, cy: u32) -> Complex {
    let w = 1.0 / (1u64 << level) as f64;
    Complex::new((cx as f64 + 0.5) * w, (cy as f64 + 0.5) * w)
}

impl FmmTree {
    /// Build the tree at leaf level `depth` (1 ..= 26).
    ///
    /// # Panics
    ///
    /// Panics if any source lies outside `[0, 1)²`.
    pub fn build(sources: &[Source], depth: u32) -> Self {
        assert!((1..=26).contains(&depth), "depth out of range: {depth}");
        assert!(!sources.is_empty(), "at least one source required");
        let side = (1u64 << depth) as f64;
        let mut keyed: Vec<(u64, Source)> = sources
            .iter()
            .map(|&s| {
                assert!(
                    s.pos.re >= 0.0 && s.pos.re < 1.0 && s.pos.im >= 0.0 && s.pos.im < 1.0,
                    "source at {} outside the unit square",
                    s.pos
                );
                let cx = (s.pos.re * side) as u32;
                let cy = (s.pos.im * side) as u32;
                (morton::encode(cx, cy), s)
            })
            .collect();
        keyed.sort_by_key(|&(code, _)| code);
        let sorted: Vec<Source> = keyed.iter().map(|&(_, s)| s).collect();

        // Leaf level: unique codes and ranges.
        let mut levels_rev: Vec<Level> = Vec::with_capacity(depth as usize + 1);
        let mut codes = Vec::new();
        let mut range = Vec::new();
        let mut start = 0usize;
        for i in 0..keyed.len() {
            if i + 1 == keyed.len() || keyed[i + 1].0 != keyed[i].0 {
                codes.push(keyed[i].0);
                range.push(start..i + 1);
                start = i + 1;
            }
        }
        levels_rev.push(Self::make_level(depth, codes, range));

        // Coarser levels by reduction.
        for level in (0..depth).rev() {
            let finer = levels_rev.last().unwrap();
            let mut codes = Vec::new();
            let mut range: Vec<Range<usize>> = Vec::new();
            for (i, &code) in finer.codes.iter().enumerate() {
                let pcode = code >> 2;
                if codes.last() == Some(&pcode) {
                    let last = range.last_mut().unwrap();
                    last.end = finer.range[i].end;
                } else {
                    codes.push(pcode);
                    range.push(finer.range[i].clone());
                }
            }
            levels_rev.push(Self::make_level(level, codes, range));
        }
        levels_rev.reverse();
        let mut tree = FmmTree {
            depth,
            sources: sorted,
            levels: levels_rev,
        };
        // Parent links.
        for l in 1..=depth as usize {
            let (coarse, fine) = {
                let (a, b) = tree.levels.split_at_mut(l);
                (&a[l - 1], &mut b[0])
            };
            for (i, &code) in fine.codes.iter().enumerate() {
                fine.parent[i] = coarse.index[&(code >> 2)];
            }
        }
        tree
    }

    fn make_level(level: u32, codes: Vec<u64>, range: Vec<Range<usize>>) -> Level {
        let index: HashMap<u64, usize> =
            codes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        let center = codes
            .iter()
            .map(|&c| {
                let (cx, cy) = morton::decode(c);
                cell_center(level, cx, cy)
            })
            .collect();
        let parent = vec![0; codes.len()];
        Level {
            level,
            codes,
            index,
            parent,
            range,
            center,
        }
    }

    /// Pick a leaf depth so the average occupied leaf holds roughly
    /// `per_leaf` sources (clamped to `1..=12`).
    pub fn auto_depth(n: usize, per_leaf: usize) -> u32 {
        let per_leaf = per_leaf.max(1);
        let mut depth = 1u32;
        while (1usize << (2 * depth)) * per_leaf < n && depth < 12 {
            depth += 1;
        }
        depth
    }

    /// The leaf level.
    pub fn leaves(&self) -> &Level {
        &self.levels[self.depth as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_sources(side: usize) -> Vec<Source> {
        // One source per cell center of a side×side grid.
        let mut v = Vec::new();
        for y in 0..side {
            for x in 0..side {
                v.push(Source::new(
                    (x as f64 + 0.5) / side as f64,
                    (y as f64 + 0.5) / side as f64,
                    1.0,
                ));
            }
        }
        v
    }

    #[test]
    fn full_grid_fills_every_leaf() {
        let tree = FmmTree::build(&grid_sources(8), 3);
        assert_eq!(tree.leaves().len(), 64);
        for l in 0..=3u32 {
            assert_eq!(tree.levels[l as usize].len(), 1usize << (2 * l));
        }
    }

    #[test]
    fn ranges_partition_the_sources() {
        let tree = FmmTree::build(&grid_sources(8), 3);
        for level in &tree.levels {
            let total: usize = level.range.iter().map(|r| r.len()).sum();
            assert_eq!(total, tree.sources.len());
            // Ranges are consecutive and disjoint.
            for w in level.range.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert_eq!(level.range.first().unwrap().start, 0);
            assert_eq!(level.range.last().unwrap().end, tree.sources.len());
        }
    }

    #[test]
    fn parents_contain_children() {
        let tree = FmmTree::build(&grid_sources(8), 3);
        for l in 1..=3usize {
            let fine = &tree.levels[l];
            let coarse = &tree.levels[l - 1];
            for i in 0..fine.len() {
                let p = fine.parent[i];
                assert!(coarse.cell(p).contains(fine.cell(i)));
                // Source range nesting.
                let pr = &coarse.range[p];
                let fr = &fine.range[i];
                assert!(pr.start <= fr.start && fr.end <= pr.end);
            }
        }
    }

    #[test]
    fn sources_sorted_into_their_leaf() {
        let sources = vec![
            Source::new(0.9, 0.9, 1.0),
            Source::new(0.1, 0.1, 1.0),
            Source::new(0.12, 0.08, 1.0),
        ];
        let tree = FmmTree::build(&sources, 2);
        let leaves = tree.leaves();
        assert_eq!(leaves.len(), 2);
        // The two nearby sources share the leaf holding range of length 2.
        let sizes: Vec<usize> = leaves.range.iter().map(|r| r.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
        // Every source is inside its leaf cell's box.
        for (i, r) in leaves.range.iter().enumerate() {
            let cell = leaves.cell(i);
            let w = 1.0 / cell.level_side() as f64;
            for s in &tree.sources[r.clone()] {
                assert!(s.pos.re >= cell.x as f64 * w && s.pos.re < (cell.x + 1) as f64 * w);
                assert!(s.pos.im >= cell.y as f64 * w && s.pos.im < (cell.y + 1) as f64 * w);
            }
        }
    }

    #[test]
    fn centers_are_in_cells() {
        let tree = FmmTree::build(&grid_sources(4), 2);
        for level in &tree.levels {
            for i in 0..level.len() {
                let cell = level.cell(i);
                let w = 1.0 / cell.level_side() as f64;
                let c = level.center[i];
                assert!((c.re - (cell.x as f64 + 0.5) * w).abs() < 1e-15);
                assert!((c.im - (cell.y as f64 + 0.5) * w).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn auto_depth_scales_with_n() {
        assert_eq!(FmmTree::auto_depth(10, 20), 1);
        let d = FmmTree::auto_depth(100_000, 20);
        assert!((5..=12).contains(&d));
        assert!(FmmTree::auto_depth(4_000_000, 1) <= 12);
    }

    #[test]
    #[should_panic(expected = "outside the unit square")]
    fn out_of_square_rejected() {
        let _ = FmmTree::build(&[Source::new(1.0, 0.5, 1.0)], 2);
    }
}
