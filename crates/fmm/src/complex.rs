//! Minimal complex arithmetic.
//!
//! The 2-D FMM identifies the plane with ℂ; the handful of operations the
//! solver needs (arithmetic, `ln`, powers, norms) are implemented here
//! directly rather than pulling in a numerics dependency.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

/// The multiplicative identity.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

impl Complex {
    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Principal branch of the complex logarithm.
    #[inline]
    pub fn ln(self) -> Complex {
        Complex::new(self.abs().ln(), self.im.atan2(self.re))
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn recip(self) -> Complex {
        let d = self.norm_sq();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Integer power by repeated squaring (exact enough for the expansion
    /// orders used here; the solver actually accumulates powers
    /// incrementally in its hot loops).
    pub fn powi(self, mut n: u32) -> Complex {
        let mut base = self;
        let mut acc = ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + ZERO, z));
        assert!(close(z * ONE, z));
        assert!(close(z - z, ZERO));
        assert!(close(z * z.recip(), ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert!(close(z * z.conj(), Complex::new(25.0, 0.0)));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a * b, Complex::new(5.0, 5.0)));
        assert!(close(a / b, Complex::new(0.1, 0.7)));
    }

    #[test]
    fn ln_of_real_and_imaginary_axes() {
        let e = Complex::new(std::f64::consts::E, 0.0);
        assert!(close(e.ln(), ONE));
        let i = Complex::new(0.0, 1.0);
        assert!(close(i.ln(), Complex::new(0.0, std::f64::consts::FRAC_PI_2)));
        // Re(ln z) = ln |z| — the identity the potential evaluation uses.
        let z = Complex::new(-2.5, 1.75);
        assert!((z.ln().re - z.abs().ln()).abs() < 1e-12);
    }

    #[test]
    fn powers() {
        let z = Complex::new(0.5, 0.5);
        assert!(close(z.powi(0), ONE));
        assert!(close(z.powi(1), z));
        assert!(close(z.powi(3), z * z * z));
        assert!(close(z.powi(8), z.powi(4) * z.powi(4)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2i");
    }
}
