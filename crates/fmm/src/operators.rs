//! The FMM translation operators (Greengard & Rokhlin, Lemmas 2.3–2.5).
//!
//! A **multipole expansion** about center `c` represents the far field of
//! charges inside a cell:
//!
//! ```text
//! φ(z) = a₀ ln(z − c) + Σ_{k≥1} a_k / (z − c)^k
//! ```
//!
//! with `a₀ = Σ qᵢ` and `a_k = Σ −qᵢ (zᵢ − c)^k / k`. A **local expansion**
//! about `c` is a truncated Taylor series `φ(z) = Σ_{l≥0} b_l (z − c)^l`
//! valid inside a cell. Both are stored as coefficient vectors of length
//! `p + 1`.

use crate::binomial::Binomials;
use crate::complex::{Complex, ONE, ZERO};
use crate::Source;

/// A truncated multipole expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct Multipole {
    /// Expansion center.
    pub center: Complex,
    /// Coefficients `a[0] ..= a[p]`.
    pub a: Vec<Complex>,
}

/// A truncated local (Taylor) expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct Local {
    /// Expansion center.
    pub center: Complex,
    /// Coefficients `b[0] ..= b[p]`.
    pub b: Vec<Complex>,
}

impl Multipole {
    /// The zero expansion of order `p` about `center`.
    pub fn zero(center: Complex, p: usize) -> Self {
        Multipole {
            center,
            a: vec![ZERO; p + 1],
        }
    }

    /// Expansion order `p`.
    pub fn order(&self) -> usize {
        self.a.len() - 1
    }
}

impl Local {
    /// The zero expansion of order `p` about `center`.
    pub fn zero(center: Complex, p: usize) -> Self {
        Local {
            center,
            b: vec![ZERO; p + 1],
        }
    }

    /// Expansion order `p`.
    pub fn order(&self) -> usize {
        self.b.len() - 1
    }
}

/// P2M: the order-`p` multipole expansion of `sources` about `center`.
pub fn p2m(sources: &[Source], center: Complex, p: usize) -> Multipole {
    let mut m = Multipole::zero(center, p);
    for s in sources {
        let d = s.pos - center;
        m.a[0] += Complex::from(s.charge);
        // a_k -= q d^k / k, accumulated with an incremental power.
        let mut dk = ONE;
        for k in 1..=p {
            dk *= d;
            m.a[k] += dk.scale(-s.charge / k as f64);
        }
    }
    m
}

/// M2M: translate `child` to a new center (Lemma 2.3). The result is exact
/// up to the shared truncation order.
pub fn m2m(child: &Multipole, new_center: Complex, bin: &Binomials) -> Multipole {
    let p = child.order();
    let d = child.center - new_center;
    let mut out = Multipole::zero(new_center, p);
    out.a[0] = child.a[0];
    // Precompute powers of d.
    let mut d_pow = vec![ONE; p + 1];
    for k in 1..=p {
        d_pow[k] = d_pow[k - 1] * d;
    }
    for l in 1..=p {
        // −a₀ d^l / l ...
        let mut acc = d_pow[l] * child.a[0].scale(-1.0 / l as f64);
        // ... + Σ_{k=1}^{l} a_k d^{l−k} C(l−1, k−1)
        for k in 1..=l {
            acc += child.a[k] * d_pow[l - k].scale(bin.c(l - 1, k - 1));
        }
        out.a[l] = acc;
    }
    out
}

/// M2L: convert a multipole about a well-separated center into a local
/// expansion about `local_center` (Lemma 2.4), adding into `out`.
#[allow(clippy::needless_range_loop)] // indices mirror the lemma's k/l notation
pub fn m2l(m: &Multipole, out: &mut Local, bin: &Binomials) {
    let p = m.order();
    debug_assert_eq!(out.order(), p);
    let t = m.center - out.center;
    debug_assert!(t.abs() > 0.0, "M2L centers coincide");
    let t_inv = t.recip();
    // a_k (−1)^k / t^k, incrementally.
    let mut ak_term = vec![ZERO; p + 1];
    {
        let mut f = ONE; // (−1/t)^k
        for k in 1..=p {
            f *= t_inv.scale(-1.0);
            ak_term[k] = m.a[k] * f;
        }
    }
    // b_0 += a0 ln(−t) + Σ_k a_k(−1)^k/t^k
    let mut b0 = m.a[0] * (-t).ln();
    for k in 1..=p {
        b0 += ak_term[k];
    }
    out.b[0] += b0;
    // b_l += t^{−l} ( −a0/l + Σ_k a_k (−1)^k C(l+k−1, k−1) / t^k )
    let mut tl_inv = ONE;
    for l in 1..=p {
        tl_inv *= t_inv;
        let mut acc = m.a[0].scale(-1.0 / l as f64);
        for k in 1..=p {
            acc += ak_term[k].scale(bin.c(l + k - 1, k - 1));
        }
        out.b[l] += acc * tl_inv;
    }
}

/// L2L: recenter a local expansion (exact; Lemma 2.5).
pub fn l2l(parent: &Local, new_center: Complex, bin: &Binomials) -> Local {
    let p = parent.order();
    let d = new_center - parent.center;
    let mut d_pow = vec![ONE; p + 1];
    for k in 1..=p {
        d_pow[k] = d_pow[k - 1] * d;
    }
    let mut out = Local::zero(new_center, p);
    for l in 0..=p {
        let mut acc = ZERO;
        for k in l..=p {
            acc += parent.b[k] * d_pow[k - l].scale(bin.c(k, l));
        }
        out.b[l] = acc;
    }
    out
}

/// Evaluate a multipole expansion at a point strictly outside its cell.
/// Returns the real potential `Re φ(z)`.
pub fn eval_multipole(m: &Multipole, z: Complex) -> f64 {
    let u = z - m.center;
    let u_inv = u.recip();
    let mut phi = m.a[0] * u.ln();
    let mut uk = ONE;
    for k in 1..=m.order() {
        uk *= u_inv;
        phi += m.a[k] * uk;
    }
    phi.re
}

/// Evaluate a local expansion at a point inside its cell (Horner).
pub fn eval_local(l: &Local, z: Complex) -> f64 {
    let u = z - l.center;
    let mut acc = ZERO;
    for k in (0..=l.order()).rev() {
        acc = acc * u + l.b[k];
    }
    acc.re
}

/// Direct near-field contribution of `sources` at `z`, excluding any source
/// at exactly `z` (self-interaction).
pub fn p2p(sources: &[Source], z: Complex) -> f64 {
    let mut phi = 0.0;
    for s in sources {
        let d2 = (z - s.pos).norm_sq();
        if d2 > 0.0 {
            phi += s.charge * 0.5 * d2.ln();
        }
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;

    const P: usize = 30;

    fn cluster() -> Vec<Source> {
        // Charges inside the cell [0.4, 0.6)^2.
        vec![
            Source::new(0.45, 0.45, 1.0),
            Source::new(0.55, 0.47, -2.0),
            Source::new(0.5, 0.58, 0.5),
            Source::new(0.41, 0.59, 1.7),
        ]
    }

    fn far_targets() -> Vec<Complex> {
        vec![
            Complex::new(0.95, 0.1),
            Complex::new(0.0, 0.0),
            Complex::new(0.9, 0.95),
            Complex::new(0.1, 0.9),
        ]
    }

    #[test]
    fn multipole_matches_direct_far_field() {
        let s = cluster();
        let m = p2m(&s, Complex::new(0.5, 0.5), P);
        let exact = direct::potentials_at(&s, &far_targets());
        for (t, e) in far_targets().iter().zip(&exact) {
            let approx = eval_multipole(&m, *t);
            assert!((approx - e).abs() < 1e-10, "at {t}: {approx} vs {e}");
        }
    }

    #[test]
    fn m2m_preserves_far_field() {
        let s = cluster();
        let m = p2m(&s, Complex::new(0.5, 0.5), P);
        // Shift only slightly, so every far target stays outside the
        // enlarged convergence disc of the shifted expansion (sources are
        // within ~0.27 of the new center; the closest target is ~0.57 away).
        let shifted = m2m(&m, Complex::new(0.4, 0.4), &Binomials::new(2 * P));
        let exact = direct::potentials_at(&s, &far_targets());
        for (t, e) in far_targets().iter().zip(&exact) {
            let approx = eval_multipole(&shifted, *t);
            assert!((approx - e).abs() < 1e-7, "at {t}: {approx} vs {e}");
        }
    }

    #[test]
    fn m2l_converges_in_the_local_cell() {
        let s = cluster();
        let m = p2m(&s, Complex::new(0.5, 0.5), P);
        // Local cell well separated: centered at (0.05, 0.05), width 0.1.
        let lc = Complex::new(0.05, 0.05);
        let mut local = Local::zero(lc, P);
        m2l(&m, &mut local, &Binomials::new(2 * P));
        for &(dx, dy) in &[(0.0, 0.0), (0.04, -0.04), (-0.04, 0.04), (0.049, 0.049)] {
            let z = lc + Complex::new(dx, dy);
            let e = direct::potentials_at(&s, &[z])[0];
            let approx = eval_local(&local, z);
            assert!((approx - e).abs() < 1e-8, "at {z}: {approx} vs {e}");
        }
    }

    #[test]
    fn l2l_is_exact() {
        let s = cluster();
        let m = p2m(&s, Complex::new(0.5, 0.5), P);
        let lc = Complex::new(0.05, 0.05);
        let mut local = Local::zero(lc, P);
        let bin = Binomials::new(2 * P);
        m2l(&m, &mut local, &bin);
        let child_center = Complex::new(0.075, 0.025);
        let child = l2l(&local, child_center, &bin);
        for &(dx, dy) in &[(0.0, 0.0), (0.02, 0.02), (-0.02, 0.01)] {
            let z = child_center + Complex::new(dx, dy);
            let a = eval_local(&local, z);
            let b = eval_local(&child, z);
            assert!((a - b).abs() < 1e-10, "L2L drift at {z}: {a} vs {b}");
        }
    }

    #[test]
    fn p2p_excludes_self() {
        let s = vec![Source::new(0.5, 0.5, 1.0), Source::new(0.6, 0.5, 1.0)];
        let phi = p2p(&s, Complex::new(0.5, 0.5));
        assert!((phi - (0.1f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn total_charge_is_a0() {
        let s = cluster();
        let m = p2m(&s, Complex::new(0.5, 0.5), 5);
        let q: f64 = s.iter().map(|s| s.charge).sum();
        assert!((m.a[0].re - q).abs() < 1e-12);
        assert_eq!(m.a[0].im, 0.0);
    }

    #[test]
    fn truncation_error_decays_with_order() {
        let s = cluster();
        let t = Complex::new(0.9, 0.9);
        let exact = direct::potentials_at(&s, &[t])[0];
        let mut prev_err = f64::INFINITY;
        for p in [2usize, 6, 12, 24] {
            let m = p2m(&s, Complex::new(0.5, 0.5), p);
            let err = (eval_multipole(&m, t) - exact).abs();
            assert!(err < prev_err + 1e-14, "order {p}: {err} !< {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-9);
    }
}

/// Evaluate the *complex force field* `Φ'(z) = Σ q_j / (z − z_j)` of a
/// multipole expansion at a far point. The physical gradient of the real
/// potential is `(∂φ/∂x, ∂φ/∂y) = (Re Φ', −Im Φ')`.
pub fn eval_multipole_grad(m: &Multipole, z: Complex) -> Complex {
    let u = z - m.center;
    let u_inv = u.recip();
    // d/dz [a0 ln u + Σ a_k u^{-k}] = a0/u − Σ k a_k u^{-k-1}.
    let mut grad = m.a[0] * u_inv;
    let mut uk = u_inv;
    for k in 1..=m.order() {
        uk *= u_inv; // u^{-(k+1)}
        grad += m.a[k].scale(-(k as f64)) * uk;
    }
    grad
}

/// Evaluate the complex force field of a local expansion at an interior
/// point: `Σ_{l≥1} l·b_l (z − c)^{l−1}` (Horner).
pub fn eval_local_grad(l: &Local, z: Complex) -> Complex {
    let u = z - l.center;
    let p = l.order();
    let mut acc = ZERO;
    for k in (1..=p).rev() {
        acc = acc * u + l.b[k].scale(k as f64);
    }
    acc
}

/// Direct near-field complex force contribution, excluding any source at
/// exactly `z`.
pub fn p2p_grad(sources: &[Source], z: Complex) -> Complex {
    let mut grad = ZERO;
    for s in sources {
        let d = z - s.pos;
        if d.norm_sq() > 0.0 {
            grad += d.recip().scale(s.charge);
        }
    }
    grad
}

#[cfg(test)]
mod grad_tests {
    use super::*;
    use crate::binomial::Binomials;

    const P: usize = 30;

    fn cluster() -> Vec<Source> {
        vec![
            Source::new(0.45, 0.45, 1.0),
            Source::new(0.55, 0.47, -2.0),
            Source::new(0.5, 0.58, 0.5),
        ]
    }

    fn direct_grad(sources: &[Source], z: Complex) -> Complex {
        p2p_grad(sources, z)
    }

    #[test]
    fn multipole_grad_matches_direct() {
        let s = cluster();
        let m = p2m(&s, Complex::new(0.5, 0.5), P);
        for &(x, y) in &[(0.95, 0.1), (0.05, 0.9), (0.02, 0.02)] {
            let z = Complex::new(x, y);
            let approx = eval_multipole_grad(&m, z);
            let exact = direct_grad(&s, z);
            assert!((approx - exact).abs() < 1e-9, "at {z}");
        }
    }

    #[test]
    fn local_grad_matches_direct() {
        let s = cluster();
        let m = p2m(&s, Complex::new(0.5, 0.5), P);
        let lc = Complex::new(0.05, 0.05);
        let mut local = Local::zero(lc, P);
        m2l(&m, &mut local, &Binomials::new(2 * P));
        for &(dx, dy) in &[(0.0, 0.0), (0.04, -0.03), (-0.04, 0.04)] {
            let z = lc + Complex::new(dx, dy);
            let approx = eval_local_grad(&local, z);
            let exact = direct_grad(&s, z);
            assert!((approx - exact).abs() < 1e-7, "at {z}");
        }
    }

    #[test]
    fn grad_is_derivative_of_potential() {
        // Finite-difference check: Φ' ≈ (φ(z+h) − φ(z−h)) / 2h along x,
        // and −(φ(z+ih) − φ(z−ih)) / 2h ... for the imaginary part.
        let s = cluster();
        let m = p2m(&s, Complex::new(0.5, 0.5), P);
        let z = Complex::new(0.9, 0.85);
        let h = 1e-6;
        let grad = eval_multipole_grad(&m, z);
        let ddx = (eval_multipole(&m, z + Complex::new(h, 0.0))
            - eval_multipole(&m, z - Complex::new(h, 0.0)))
            / (2.0 * h);
        let ddy = (eval_multipole(&m, z + Complex::new(0.0, h))
            - eval_multipole(&m, z - Complex::new(0.0, h)))
            / (2.0 * h);
        assert!((grad.re - ddx).abs() < 1e-5, "{} vs {}", grad.re, ddx);
        assert!((-grad.im - ddy).abs() < 1e-5, "{} vs {}", -grad.im, ddy);
    }
}
