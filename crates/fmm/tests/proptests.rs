//! Property-based tests for the FMM: physical invariants that must hold for
//! arbitrary charge configurations.

use proptest::prelude::*;
use sfc_fmm::{direct, Complex, Fmm, Source};

fn sources_strategy(max_n: usize) -> impl Strategy<Value = Vec<Source>> {
    prop::collection::vec(
        (0.001f64..0.999, 0.001f64..0.999, -2.0f64..2.0),
        2..max_n,
    )
    .prop_map(|raw| {
        // Deduplicate near-coincident points to keep the direct sum finite.
        let mut out: Vec<Source> = Vec::new();
        'outer: for (x, y, q) in raw {
            for s in &out {
                if (s.pos - Complex::new(x, y)).abs() < 1e-9 {
                    continue 'outer;
                }
            }
            out.push(Source::new(x, y, q));
        }
        out
    })
    .prop_filter("need at least 2 distinct sources", |v| v.len() >= 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FMM potentials match direct summation within the truncation bound.
    #[test]
    fn fmm_matches_direct(sources in sources_strategy(60)) {
        let exact = direct::potentials(&sources);
        let fast = Fmm::new(20).potentials(&sources);
        let scale = exact.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
        for (f, e) in fast.iter().zip(&exact) {
            prop_assert!((f - e).abs() / scale < 1e-5, "{f} vs {e}");
        }
    }

    /// Potentials are linear in the charges: doubling every charge doubles
    /// every potential.
    #[test]
    fn linearity_in_charge(sources in sources_strategy(40)) {
        let doubled: Vec<Source> = sources
            .iter()
            .map(|s| Source { pos: s.pos, charge: 2.0 * s.charge })
            .collect();
        let solver = Fmm::new(16);
        let base = solver.potentials(&sources);
        let twice = solver.potentials(&doubled);
        let scale = base.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
        for (b, t) in base.iter().zip(&twice) {
            prop_assert!((2.0 * b - t).abs() / scale < 1e-9);
        }
    }

    /// Newton's third law at the field level: for equal charges, the total
    /// "force" Σ qᵢ Φ'(zᵢ) vanishes (momentum conservation).
    #[test]
    fn total_force_vanishes(sources in sources_strategy(40)) {
        let fields = direct::fields(&sources);
        let mut total = Complex::default();
        for (s, f) in sources.iter().zip(&fields) {
            total += f.scale(s.charge);
        }
        let magnitude: f64 = fields.iter().map(|f| f.abs()).sum::<f64>().max(1e-12);
        prop_assert!(total.abs() / magnitude < 1e-9, "net force {total}");
    }

    /// The FMM field matches the direct field.
    #[test]
    fn fmm_fields_match_direct(sources in sources_strategy(50)) {
        let exact = direct::fields(&sources);
        let fast = Fmm::new(20).potentials_and_fields(&sources);
        let scale = exact.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
        for ((_, g), e) in fast.iter().zip(&exact) {
            prop_assert!((*g - *e).abs() / scale < 1e-4);
        }
    }

    /// Interaction energy is invariant under relabeling (permutation) of the
    /// sources.
    #[test]
    fn energy_permutation_invariant(sources in sources_strategy(30)) {
        let e1 = direct::energy(&sources);
        let mut reversed = sources.clone();
        reversed.reverse();
        let e2 = direct::energy(&reversed);
        prop_assert!((e1 - e2).abs() < 1e-9 * (1.0 + e1.abs()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The adaptive solver agrees with direct summation on arbitrary
    /// configurations (the U/V/W/X lists never double- or under-count).
    #[test]
    fn adaptive_matches_direct(sources in sources_strategy(50)) {
        let exact = direct::potentials(&sources);
        let fast = sfc_fmm::AdaptiveFmm::new(20).potentials(&sources);
        let scale = exact.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
        for (f, e) in fast.iter().zip(&exact) {
            prop_assert!((f - e).abs() / scale < 1e-5, "{f} vs {e}");
        }
    }

    /// Barnes–Hut converges to direct as theta shrinks.
    #[test]
    fn barnes_hut_bounded_error(sources in sources_strategy(40)) {
        let exact = direct::potentials(&sources);
        let fast = sfc_fmm::BarnesHut::new(0.3).potentials(&sources);
        let scale = exact.iter().fold(1e-12f64, |m, v| m.max(v.abs()));
        for (f, e) in fast.iter().zip(&exact) {
            prop_assert!((f - e).abs() / scale < 1e-2);
        }
    }
}
