//! Property tests for the sweep runner's resume semantics: a sweep
//! interrupted at an arbitrary point and resumed from its journal must
//! produce results bit-identical to an uninterrupted run.

use proptest::prelude::*;
use serde_json::json;
use sfc_core::runner::{BatchCell, RunnerOptions, SweepRunner};
use std::path::PathBuf;

const NUM_CELLS: usize = 12;

fn temp_path(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sfc_resume_prop_{}_{tag}_{case}.jsonl",
        std::process::id()
    ))
}

/// Deterministic per-cell payload with awkward float values (thirds and
/// tiny magnitudes stress the serializer's round-trip fidelity).
fn cell_values(i: usize) -> Vec<f64> {
    vec![
        i as f64 / 3.0,
        (i as f64 + 0.5).sqrt(),
        1e-300 * (i + 1) as f64,
    ]
}

fn cell_name(i: usize) -> String {
    format!("cfg{}/t{}", i / 4, i % 4)
}

/// Run the synthetic sweep to completion, returning every cell's values.
fn run_sweep(journal: Option<PathBuf>) -> Vec<Vec<f64>> {
    let mut opts = RunnerOptions::new();
    opts.journal = journal;
    let mut runner = SweepRunner::new("prop", &json!({ "n": NUM_CELLS }), opts).unwrap();
    let out = (0..NUM_CELLS)
        .map(|i| {
            runner
                .run_cell(&cell_name(i), || cell_values(i))
                .values()
                .expect("cell completes")
                .to_vec()
        })
        .collect();
    assert!(runner.finish().complete());
    out
}

/// Run the synthetic sweep as one batch on `jobs` worker threads.
fn run_sweep_jobs(journal: Option<PathBuf>, jobs: usize) -> Vec<Vec<f64>> {
    let mut opts = RunnerOptions::new();
    opts.journal = journal;
    opts.jobs = jobs;
    let mut runner = SweepRunner::new("prop", &json!({ "n": NUM_CELLS }), opts).unwrap();
    let cells = (0..NUM_CELLS)
        .map(|i| BatchCell::new(cell_name(i), move || cell_values(i)))
        .collect();
    let out = runner
        .run_cells(cells)
        .iter()
        .map(|r| r.values().expect("cell completes").to_vec())
        .collect();
    assert!(runner.finish().complete());
    out
}

fn bits(results: &[Vec<f64>]) -> Vec<Vec<u64>> {
    results
        .iter()
        .map(|vs| vs.iter().map(|v| v.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Complete an arbitrary subset of cells, "crash", resume from the
    /// journal: the final results are bit-identical to an uninterrupted
    /// run's, and the resumed run recomputes only the missing cells.
    #[test]
    fn resumed_results_are_bit_identical(mask in 0u64..(1 << NUM_CELLS)) {
        let path = temp_path("mask", mask);
        std::fs::remove_file(&path).ok();

        // First (interrupted) run: only the cells in `mask` complete.
        {
            let mut opts = RunnerOptions::new();
            opts.journal = Some(path.clone());
            let mut runner =
                SweepRunner::new("prop", &json!({ "n": NUM_CELLS }), opts).unwrap();
            for i in 0..NUM_CELLS {
                if mask & (1 << i) != 0 {
                    runner.run_cell(&cell_name(i), || cell_values(i));
                }
            }
        }

        // Resumed run completes everything; uninterrupted run for reference.
        let resumed = run_sweep(Some(path.clone()));
        let uninterrupted = run_sweep(None);
        prop_assert_eq!(bits(&resumed), bits(&uninterrupted));
        std::fs::remove_file(&path).ok();
    }

    /// Truncate the journal mid-line at an arbitrary byte offset: the torn
    /// tail is dropped, the resumed run still completes, and the results
    /// stay bit-identical.
    #[test]
    fn truncated_journal_still_resumes_identically(cut_back in 1usize..200) {
        let path = temp_path("cut", cut_back as u64);
        std::fs::remove_file(&path).ok();
        let _ = run_sweep(Some(path.clone()));

        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(cut_back).max(1);
        std::fs::write(&path, &bytes[..keep]).unwrap();

        let resumed = run_sweep(Some(path.clone()));
        let uninterrupted = run_sweep(None);
        prop_assert_eq!(bits(&resumed), bits(&uninterrupted));
        std::fs::remove_file(&path).ok();
    }

    /// Thread count never changes the results: the same batch run on any
    /// number of workers is bit-identical to the serial run, in the same
    /// submission order.
    #[test]
    fn parallel_batch_is_bit_identical_to_serial(jobs in 2usize..9) {
        let serial = run_sweep_jobs(None, 1);
        let parallel = run_sweep_jobs(None, jobs);
        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    /// Cross-thread-count resume: an arbitrary prefix of the sweep journaled
    /// on 8 workers, the journal torn mid-line, resumed on `jobs` workers —
    /// still bit-identical to an uninterrupted serial run.
    #[test]
    fn torn_parallel_journal_resumes_on_any_thread_count(
        complete in 0usize..=NUM_CELLS,
        cut_back in 0usize..120,
        jobs in 1usize..9,
    ) {
        let path = temp_path("xjobs", (complete * 1000 + cut_back * 10 + jobs) as u64);
        std::fs::remove_file(&path).ok();

        // Interrupted run on 8 workers: only the first `complete` cells.
        {
            let mut opts = RunnerOptions::new();
            opts.journal = Some(path.clone());
            opts.jobs = 8;
            let mut runner =
                SweepRunner::new("prop", &json!({ "n": NUM_CELLS }), opts).unwrap();
            let cells = (0..complete)
                .map(|i| BatchCell::new(cell_name(i), move || cell_values(i)))
                .collect();
            runner.run_cells(cells);
        }

        // Tear the journal tail mid-line (keep at least the header).
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(cut_back).max(1);
        std::fs::write(&path, &bytes[..keep]).unwrap();

        let resumed = run_sweep_jobs(Some(path.clone()), jobs);
        let uninterrupted = run_sweep_jobs(None, 1);
        prop_assert_eq!(bits(&resumed), bits(&uninterrupted));
        std::fs::remove_file(&path).ok();
    }
}
