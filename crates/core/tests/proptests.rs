//! Property-based tests for the metric engine: invariants of the ACD model
//! that must hold for arbitrary inputs, curves and machines.

use proptest::prelude::*;
use sfc_core::ffi::{ffi_acd, OwnerTree};
use sfc_core::load::route;
use sfc_core::nfi::nfi_acd;
use sfc_core::{Assignment, Machine};
use sfc_curves::point::Norm;
use sfc_curves::{CurveKind, Point2};
use sfc_topology::bfs::bfs_distances;
use sfc_topology::{Bus, Hypercube, Mesh2d, Ring, Torus2d, TopologyKind};
use std::collections::{HashMap, VecDeque};

/// Generate a set of distinct cells on a `2^order` grid.
fn distinct_cells(order: u32, raws: &[(u32, u32)]) -> Vec<Point2> {
    let side = 1u32 << order;
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for &(rx, ry) in raws {
        let p = Point2::new(rx % side, ry % side);
        if seen.insert((p.x, p.y)) {
            out.push(p);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ACD is bounded by the network diameter for arbitrary inputs.
    #[test]
    fn acd_within_diameter(
        raws in prop::collection::vec((any::<u32>(), any::<u32>()), 1..80),
        curve_idx in 0usize..4,
        topo_idx in 0usize..6,
        radius in 1u32..4,
    ) {
        let order = 5u32;
        let cells = distinct_cells(order, &raws);
        prop_assume!(!cells.is_empty());
        let curve = CurveKind::PAPER[curve_idx];
        let topo = TopologyKind::PAPER[topo_idx];
        let procs = 64u64;
        let asg = Assignment::new(&cells, order, curve, procs);
        let machine = Machine::new(topo, procs, curve);
        let diameter = machine.topology().diameter() as f64;
        let nfi = nfi_acd(&asg, &machine, radius, Norm::Chebyshev).unwrap();
        prop_assert!(nfi.acd() <= diameter);
        prop_assert!(nfi.total_distance <= nfi.num_comms * machine.topology().diameter());
        let ffi = ffi_acd(&asg, &machine).unwrap();
        prop_assert!(ffi.acd() <= diameter);
    }

    /// NFI communication counts are independent of the curves and topology:
    /// the same particle set always produces the same number of exchanges
    /// (only the distances change). This is the "fixed communication
    /// structure" premise of the paper's model.
    #[test]
    fn nfi_comm_count_is_curve_invariant(
        raws in prop::collection::vec((any::<u32>(), any::<u32>()), 2..60),
        radius in 1u32..3,
    ) {
        let order = 5u32;
        let cells = distinct_cells(order, &raws);
        prop_assume!(cells.len() >= 2);
        let mut counts = std::collections::HashSet::new();
        for curve in CurveKind::PAPER {
            let asg = Assignment::new(&cells, order, curve, 16);
            let machine = Machine::new(TopologyKind::Torus, 16, curve);
            counts.insert(nfi_acd(&asg, &machine, radius, Norm::Chebyshev).unwrap().num_comms);
        }
        prop_assert_eq!(counts.len(), 1);
    }

    /// FFI interpolation counts likewise depend only on the particle set
    /// (the occupied cells per level), not on the curves.
    #[test]
    fn ffi_tree_comm_count_is_curve_invariant(
        raws in prop::collection::vec((any::<u32>(), any::<u32>()), 2..60),
    ) {
        let order = 5u32;
        let cells = distinct_cells(order, &raws);
        prop_assume!(cells.len() >= 2);
        let mut counts = std::collections::HashSet::new();
        for curve in CurveKind::PAPER {
            let asg = Assignment::new(&cells, order, curve, 16);
            let machine = Machine::new(TopologyKind::Torus, 16, curve);
            counts.insert(ffi_acd(&asg, &machine).unwrap().interp_comms);
        }
        prop_assert_eq!(counts.len(), 1);
    }

    /// With a single processor, every ACD is exactly zero.
    #[test]
    fn single_processor_means_zero_acd(
        raws in prop::collection::vec((any::<u32>(), any::<u32>()), 1..50),
        curve_idx in 0usize..4,
    ) {
        let order = 4u32;
        let cells = distinct_cells(order, &raws);
        prop_assume!(!cells.is_empty());
        let curve = CurveKind::PAPER[curve_idx];
        let asg = Assignment::new(&cells, order, curve, 1);
        let machine = Machine::new(TopologyKind::Torus, 1, curve);
        prop_assert_eq!(nfi_acd(&asg, &machine, 2, Norm::Chebyshev).unwrap().acd(), 0.0);
        prop_assert_eq!(ffi_acd(&asg, &machine).unwrap().acd(), 0.0);
    }

    /// The owner tree's per-level occupancy shrinks monotonically toward the
    /// root, and the root is always owned by rank 0's... lowest rank present.
    #[test]
    fn owner_tree_monotone_occupancy(
        raws in prop::collection::vec((any::<u32>(), any::<u32>()), 1..80),
    ) {
        let order = 5u32;
        let cells = distinct_cells(order, &raws);
        prop_assume!(!cells.is_empty());
        let asg = Assignment::new(&cells, order, CurveKind::Hilbert, 8);
        let tree = OwnerTree::build(&asg);
        for level in 1..=order {
            prop_assert!(tree.level_len(level) >= tree.level_len(level - 1));
        }
        prop_assert_eq!(tree.level_len(0), 1);
        prop_assert_eq!(
            tree.owner(sfc_quadtree::Cell::ROOT),
            Some(0),
            "rank 0 always holds the lowest-indexed particle"
        );
        prop_assert_eq!(tree.level_len(order), cells.len());
    }

    /// Doubling the radius can only add communications, never remove them,
    /// and the total distance is monotone too.
    #[test]
    fn nfi_monotone_in_radius(
        raws in prop::collection::vec((any::<u32>(), any::<u32>()), 2..60),
    ) {
        let order = 5u32;
        let cells = distinct_cells(order, &raws);
        prop_assume!(cells.len() >= 2);
        let asg = Assignment::new(&cells, order, CurveKind::ZCurve, 16);
        let machine = Machine::new(TopologyKind::Mesh, 16, CurveKind::ZCurve);
        let r1 = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
        let r2 = nfi_acd(&asg, &machine, 2, Norm::Chebyshev).unwrap();
        prop_assert!(r2.num_comms >= r1.num_comms);
        prop_assert!(r2.total_distance >= r1.total_distance);
    }

    /// Deterministic routing is truly shortest-path: for every topology and
    /// arbitrary endpoints, the routed path length equals the BFS hop
    /// distance over the explicit link graph, and every step is a physical
    /// link. (Regression guard for the mesh/torus side-length derivation,
    /// which used to truncate a floating-point sqrt.)
    #[test]
    fn route_length_matches_bfs_for_every_topology(a in 0u64..64, b in 0u64..64) {
        let nodes = 64u64;
        type Neighbors = Box<dyn Fn(u64) -> Vec<u64>>;
        let direct: [(TopologyKind, Neighbors); 5] = [
            (TopologyKind::Bus, {
                let t = Bus::new(nodes);
                Box::new(move |n| t.neighbors(n))
            }),
            (TopologyKind::Ring, {
                let t = Ring::new(nodes);
                Box::new(move |n| t.neighbors(n))
            }),
            (TopologyKind::Mesh, {
                let t = Mesh2d::square(3);
                Box::new(move |n| t.neighbors(n))
            }),
            (TopologyKind::Torus, {
                let t = Torus2d::square(3);
                Box::new(move |n| t.neighbors(n))
            }),
            (TopologyKind::Hypercube, {
                let t = Hypercube::new(6);
                Box::new(move |n| t.neighbors(n))
            }),
        ];
        for (kind, neighbors) in &direct {
            let path = route(*kind, nodes, a, b).unwrap();
            prop_assert_eq!(path[0], a, "{}", kind);
            prop_assert_eq!(*path.last().unwrap(), b, "{}", kind);
            let dist = bfs_distances(nodes, a, &**neighbors);
            prop_assert_eq!((path.len() - 1) as u64, dist[b as usize], "{}", kind);
            for hop in path.windows(2) {
                prop_assert!(
                    neighbors(hop[0]).contains(&hop[1]),
                    "{}: {} -> {} is not a physical link",
                    kind, hop[0], hop[1]
                );
            }
        }

        // The quadtree is indirect: BFS over the explicit leaf/switch graph,
        // using the same switch-node encoding as `route`.
        let levels = 3u32; // 64 leaves
        let encode = |level: u32, idx: u64| -> u64 {
            if level == levels {
                idx
            } else {
                ((level as u64 + 1) << 56) | idx
            }
        };
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        for level in 0..levels {
            for idx in 0..(1u64 << (2 * level)) {
                let parent = encode(level, idx);
                for k in 0..4 {
                    let child = encode(level + 1, 4 * idx + k);
                    adj.entry(parent).or_default().push(child);
                    adj.entry(child).or_default().push(parent);
                }
            }
        }
        let mut dist: HashMap<u64, u64> = HashMap::from([(a, 0)]);
        let mut queue = VecDeque::from([a]);
        while let Some(n) = queue.pop_front() {
            let d = dist[&n];
            for &nb in &adj[&n] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(nb) {
                    e.insert(d + 1);
                    queue.push_back(nb);
                }
            }
        }
        let path = route(TopologyKind::Quadtree, nodes, a, b).unwrap();
        prop_assert_eq!(path[0], a);
        prop_assert_eq!(*path.last().unwrap(), b);
        prop_assert_eq!((path.len() - 1) as u64, dist[&b], "quadtree");
        for hop in path.windows(2) {
            prop_assert!(
                adj[&hop[0]].contains(&hop[1]),
                "quadtree: {} -> {} is not a physical link",
                hop[0], hop[1]
            );
        }
    }

    /// The Chebyshev ball contains the Manhattan ball: comm counts dominate.
    #[test]
    fn chebyshev_dominates_manhattan(
        raws in prop::collection::vec((any::<u32>(), any::<u32>()), 2..60),
        radius in 1u32..4,
    ) {
        let order = 5u32;
        let cells = distinct_cells(order, &raws);
        prop_assume!(cells.len() >= 2);
        let asg = Assignment::new(&cells, order, CurveKind::Gray, 16);
        let machine = Machine::new(TopologyKind::Torus, 16, CurveKind::Gray);
        let cheb = nfi_acd(&asg, &machine, radius, Norm::Chebyshev).unwrap();
        let manh = nfi_acd(&asg, &machine, radius, Norm::Manhattan).unwrap();
        prop_assert!(cheb.num_comms >= manh.num_comms);
    }
}
