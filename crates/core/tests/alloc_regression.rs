//! Allocation regression tests for the far-field enumeration path.
//!
//! The far-field sweep enumerates one interaction list per occupied cell per
//! level per trial; before the inline-buffer rewrite those lists were
//! heap-backed `Vec`s and `level_entries` re-collected each level's hash
//! table into a fresh `Vec` per call, making the allocator the hottest
//! symbol in the loop. These tests pin the fix: once the `OwnerTree` is
//! built, a full `ffi_acd_with_tree` evaluation performs **zero** heap
//! allocations.
//!
//! The lib crates `forbid(unsafe_code)`; the counting allocator below needs
//! the (inherently unsafe) `GlobalAlloc` trait, which is why this lives in
//! an integration test with its own crate root.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter is a
// side effect only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

use sfc_core::assignment::Assignment;
use sfc_core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_core::machine::Machine;
use sfc_core::nfi::nfi_acd;
use sfc_curves::point::Norm;
use sfc_curves::{CurveKind, Point2};
use sfc_topology::TopologyKind;

fn workload() -> Vec<Point2> {
    // A deterministic scatter over a 16x16 grid, dense enough that every
    // level of the tree and many interaction lists are populated.
    let mut pts = Vec::new();
    for x in 0..16u32 {
        for y in 0..16u32 {
            if (x * 13 + y * 7) % 3 != 0 {
                pts.push(Point2::new(x, y));
            }
        }
    }
    pts
}

/// The workspace pins a sequential rayon stand-in, so every kernel below
/// runs on this thread and the process-wide counter observes exactly the
/// kernel's own allocations (tests in this file run in one binary, but only
/// measured sections matter — each measurement is deltas around a closure).
#[test]
fn ffi_sweep_allocates_nothing_after_tree_build() {
    let particles = workload();
    let asg = Assignment::new(&particles, 4, CurveKind::Hilbert, 16);
    let machine = Machine::grid(TopologyKind::Torus, 16, CurveKind::Hilbert);
    let tree = OwnerTree::build(&asg);
    // Warm-up call so lazily initialized state (oracle rows etc.) is built.
    let expected = ffi_acd_with_tree(&asg, &machine, &tree).unwrap();
    let (allocs, got) = allocations_during(|| ffi_acd_with_tree(&asg, &machine, &tree).unwrap());
    assert_eq!(got, expected);
    assert_eq!(allocs, 0, "ffi_acd_with_tree must not allocate per call");
}

#[test]
fn nfi_row_scan_allocates_nothing() {
    let particles = workload();
    let asg = Assignment::new(&particles, 4, CurveKind::Hilbert, 16);
    let machine = Machine::grid(TopologyKind::Torus, 16, CurveKind::Hilbert);
    let expected = nfi_acd(&asg, &machine, 2, Norm::Chebyshev).unwrap();
    let (allocs, got) = allocations_during(|| nfi_acd(&asg, &machine, 2, Norm::Chebyshev).unwrap());
    assert_eq!(got, expected);
    assert_eq!(allocs, 0, "the dense row-segment NFI scan must not allocate");
}
