//! 3-D nearest-neighbor stretch — the paper's future-work item (ii)
//! ("validation ... using 3D").
//!
//! The generalized stretch of [`crate::anns`] carried to three dimensions:
//! for every pair of cells of a `2^k` cube within Manhattan radius `r`, the
//! stretch is the distance between their images in the curve's linear
//! ordering divided by their spatial distance.

use crate::anns::StretchResult;
use rayon::prelude::*;
use sfc_curves::curve3d::{Curve3dKind, Point3};

/// The classic ANNS in 3-D: radius-1 Manhattan neighbors.
pub fn anns3d(kind: Curve3dKind, order: u32) -> StretchResult {
    anns3d_radius(kind, order, 1)
}

/// Generalized 3-D stretch over all pairs within Manhattan `radius`.
pub fn anns3d_radius(kind: Curve3dKind, order: u32, radius: u32) -> StretchResult {
    assert!(radius >= 1);
    assert!(order <= 8, "3-D full-grid sweeps limited to order <= 8");
    let curve = kind.curve(order);
    let side = curve.side() as i64;
    let r = radius as i64;

    // Forward offsets only — lexicographically positive (dz, dy, dx) — so
    // each unordered pair is visited exactly once.
    let mut offsets: Vec<(i64, i64, i64, u64)> = Vec::new();
    for dz in 0..=r {
        for dy in -r..=r {
            for dx in -r..=r {
                let forward = dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx > 0);
                if !forward {
                    continue;
                }
                let dist = dx.abs() + dy.abs() + dz.abs();
                if dist <= r {
                    offsets.push((dx, dy, dz, dist as u64));
                }
            }
        }
    }

    (0..side)
        .into_par_iter()
        .map(|z| {
            let mut total = 0.0f64;
            let mut pairs = 0u64;
            let mut max = 0.0f64;
            for y in 0..side {
                for x in 0..side {
                    let here = curve.index(Point3::new(x as u32, y as u32, z as u32));
                    for &(dx, dy, dz, dist) in &offsets {
                        let (nx, ny, nz) = (x + dx, y + dy, z + dz);
                        if nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side
                        {
                            continue;
                        }
                        let there =
                            curve.index(Point3::new(nx as u32, ny as u32, nz as u32));
                        let stretch = here.abs_diff(there) as f64 / dist as f64;
                        total += stretch;
                        pairs += 1;
                        if stretch > max {
                            max = stretch;
                        }
                    }
                }
            }
            (total, pairs, max)
        })
        .reduce(
            || (0.0, 0, 0.0),
            |a, b| (a.0 + b.0, a.1 + b.1, a.2.max(b.2)),
        )
        .into()
}

impl From<(f64, u64, f64)> for StretchResult {
    fn from((total_stretch, num_pairs, max_stretch): (f64, u64, f64)) -> Self {
        StretchResult {
            total_stretch,
            num_pairs,
            max_stretch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_counts_match_cube_combinatorics() {
        // On an s³ cube there are 3·s²·(s−1) Manhattan-1 pairs.
        let order = 3u32;
        let s = 1u64 << order;
        let res = anns3d(Curve3dKind::Hilbert, order);
        assert_eq!(res.num_pairs, 3 * s * s * (s - 1));
    }

    #[test]
    fn row_major_3d_closed_form() {
        // Pairs along x stretch 1, along y stretch s, along z stretch s².
        let order = 3u32;
        let s = (1u64 << order) as f64;
        let res = anns3d(Curve3dKind::RowMajor, order);
        let expected = (1.0 + s + s * s) / 3.0;
        assert!(
            (res.average() - expected).abs() < 1e-9,
            "{} vs {expected}",
            res.average()
        );
    }

    #[test]
    fn paper_inversion_persists_in_3d() {
        // The 2-D finding (Z and row-major beat Hilbert and Gray on ANNS)
        // carries to 3-D — the validation the paper's future work asks for.
        let order = 4u32;
        let h = anns3d(Curve3dKind::Hilbert, order).average();
        let z = anns3d(Curve3dKind::ZCurve, order).average();
        let g = anns3d(Curve3dKind::Gray, order).average();
        let r = anns3d(Curve3dKind::RowMajor, order).average();
        assert!(z < h && z < g, "z={z:.2} h={h:.2} g={g:.2}");
        assert!(r < h && r < g, "r={r:.2}");
    }

    #[test]
    fn radius_generalization_keeps_ordering() {
        let order = 3u32;
        let h = anns3d_radius(Curve3dKind::Hilbert, order, 3).average();
        let z = anns3d_radius(Curve3dKind::ZCurve, order, 3).average();
        assert!(z < h);
    }

    #[test]
    fn max_at_least_average() {
        let res = anns3d(Curve3dKind::Gray, 3);
        assert!(res.max_stretch >= res.average());
        assert!(res.average() > 0.0);
    }
}
