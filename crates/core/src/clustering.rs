//! The clustering metric — the database-style metric the paper contrasts
//! ACD against (Section I and Related Work).
//!
//! For a rectilinear range query, the *cluster number* of an SFC is the
//! number of maximal runs of consecutive linear indices that the query
//! region decomposes into: each run is one contiguous read (one "cluster"
//! accessed). Jagadish (1990) showed the Hilbert curve beats Gray and Z
//! empirically; Moon et al. (2001) derived closed forms for Hilbert; Xu &
//! Tirthapura (PODS 2012) proved all *continuous* curves are asymptotically
//! optimal. This module lets the workspace reproduce those background
//! comparisons alongside the paper's own metrics.
//!
//! The exact expected cluster number of a curve over all `s × s` queries on
//! a `2^k` grid has a classical identity: a query region `R` decomposes into
//! exactly `|{i ∈ R : i+1 ∉ R}|` runs (counting the run that ends at the
//! global maximum), i.e. the number of "exits" of the curve from `R`.

use rayon::prelude::*;
use sfc_curves::{Curve2d, CurveKind, CurveTable, Point2};

/// Number of clusters (maximal consecutive index runs) the query rectangle
/// `[x0, x0+w) × [y0, y0+h)` decomposes into under `curve` at `order`.
pub fn clusters_in_query(
    curve: &CurveTable,
    x0: u32,
    y0: u32,
    w: u32,
    h: u32,
) -> u64 {
    assert!(w >= 1 && h >= 1);
    let side = Curve2d::side(curve) as u32;
    assert!(x0 + w <= side && y0 + h <= side, "query outside grid");
    // Collect the linear indices of the region and count runs.
    let mut indices: Vec<u64> = Vec::with_capacity((w as usize) * (h as usize));
    for y in y0..y0 + h {
        for x in x0..x0 + w {
            indices.push(curve.index(Point2::new(x, y)));
        }
    }
    indices.sort_unstable();
    let mut clusters = 1u64;
    for pair in indices.windows(2) {
        if pair[1] != pair[0] + 1 {
            clusters += 1;
        }
    }
    clusters
}

/// Mean cluster number of `curve` over **all** axis-aligned `q × q` queries
/// on a `2^order` grid (exhaustive, exact — Moon et al.'s experimental
/// design).
pub fn average_clusters(kind: CurveKind, order: u32, q: u32) -> f64 {
    assert!(q >= 1);
    let table = CurveTable::new(kind, order);
    let side = 1u32 << order;
    assert!(q <= side, "query larger than grid");
    let positions = (side - q + 1) as u64;
    let total: u64 = (0..positions)
        .into_par_iter()
        .map(|y0| {
            let mut sum = 0u64;
            for x0 in 0..positions {
                sum += clusters_in_query(&table, x0 as u32, y0 as u32, q, q);
            }
            sum
        })
        .sum();
    total as f64 / (positions * positions) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_queries_are_one_cluster() {
        for kind in CurveKind::PAPER {
            assert!((average_clusters(kind, 3, 1) - 1.0).abs() < 1e-12, "{kind}");
        }
    }

    #[test]
    fn full_grid_query_is_one_cluster() {
        for kind in CurveKind::PAPER {
            let table = CurveTable::new(kind, 3);
            assert_eq!(clusters_in_query(&table, 0, 0, 8, 8), 1, "{kind}");
        }
    }

    #[test]
    fn row_major_full_width_queries() {
        // A full-width row-major query of height h is exactly 1 cluster;
        // a width-w query (w < side) at height h is h clusters.
        let table = CurveTable::new(CurveKind::RowMajor, 4);
        assert_eq!(clusters_in_query(&table, 0, 3, 16, 5), 1);
        assert_eq!(clusters_in_query(&table, 2, 3, 7, 5), 5);
    }

    #[test]
    fn hilbert_beats_z_and_gray_on_clustering() {
        // Jagadish's classic empirical result — the opposite ranking to the
        // ANNS metric, which is exactly the tension the paper highlights.
        for (order, q) in [(5u32, 4u32), (6, 8)] {
            let hilbert = average_clusters(CurveKind::Hilbert, order, q);
            let z = average_clusters(CurveKind::ZCurve, order, q);
            let gray = average_clusters(CurveKind::Gray, order, q);
            assert!(
                hilbert < z && hilbert < gray,
                "order {order} q {q}: hilbert={hilbert:.3} z={z:.3} gray={gray:.3}"
            );
        }
    }

    #[test]
    fn hilbert_matches_moon_et_al_asymptotics() {
        // Moon et al.: expected Hilbert clusters for a q×q query tends to
        // ~ q²/3 ... more precisely the boundary/4 ≈ q for large grids
        // (the number of entries ≈ perimeter/4 = q). Check the q×q Hilbert
        // average is close to q for a grid much larger than q.
        let q = 4u32;
        let clusters = average_clusters(CurveKind::Hilbert, 7, q);
        assert!(
            (clusters - q as f64).abs() < 0.75,
            "Hilbert q={q}: {clusters:.3} not near {q}"
        );
    }

    #[test]
    fn snake_scan_is_continuous_hence_competitive() {
        // Xu & Tirthapura: all continuous curves are asymptotically optimal
        // for clustering. The boustrophedon ("snake scan") should not be
        // dramatically worse than Hilbert, unlike the discontinuous Z.
        let q = 4u32;
        let hilbert = average_clusters(CurveKind::Hilbert, 6, q);
        let snake = average_clusters(CurveKind::Boustrophedon, 6, q);
        let z = average_clusters(CurveKind::ZCurve, 6, q);
        assert!(snake < z, "snake {snake:.3} should beat Z {z:.3}");
        assert!(snake < 1.5 * hilbert, "snake {snake:.3} vs hilbert {hilbert:.3}");
    }

    #[test]
    #[should_panic(expected = "query outside grid")]
    fn out_of_grid_query_rejected() {
        let table = CurveTable::new(CurveKind::Hilbert, 3);
        let _ = clusters_in_query(&table, 6, 6, 4, 4);
    }
}
