//! Average Nearest Neighbor Stretch (ANNS) and its radius-`r`
//! generalization — Section V of the paper.
//!
//! Xu & Tirthapura (IPDPS 2012) define the ANNS of a curve as the average,
//! over all pairs of points at Manhattan distance 1, of the distance between
//! their images in the curve's linear ordering. The paper reproduces their
//! analytical results empirically and generalizes the metric to arbitrary
//! Manhattan radii: for every pair within radius `r`, the *stretch* is the
//! linear distance divided by the spatial distance, and the generalized
//! metric is the mean stretch.
//!
//! As Section V notes, this is the ACD model run with every grid cell
//! occupied, one cell per processor, and the linear ordering itself as the
//! "network" — so the implementation below is also a differential oracle for
//! the near-field ACD code (see the crate's integration tests).
//!
//! The maximum nearest-neighbor stretch and the all-pairs stretch (the other
//! two metrics of Xu & Tirthapura) are provided as well.

use crate::error::SfcError;
use rayon::prelude::*;
use sfc_curves::point::Norm;
use sfc_curves::{Curve2d, CurveKind, CurveTable, Point2};

/// Largest grid order the full-grid stretch sweeps accept (`O(4^order)`
/// cells, each scanning an `O(radius²)` neighborhood).
pub const MAX_STRETCH_ORDER: u32 = 14;

/// Largest grid order [`all_pairs_stretch`] accepts (`O(16^order)` pairs).
pub const MAX_ALL_PAIRS_ORDER: u32 = 5;

/// Enumerate each unordered pair offset once: for every cell, only the
/// offsets that are lexicographically "forward" (dy > 0, or dy == 0 and
/// dx > 0), tagged with the spatial distance under `norm`. Shared by the
/// linear and cyclic stretch scans.
fn forward_offsets(radius: u32, norm: Norm) -> Vec<(i64, i64, u64)> {
    let r = radius as i64;
    let mut offsets = Vec::new();
    for dy in 0..=r {
        for dx in -r..=r {
            if dy == 0 && dx <= 0 {
                continue;
            }
            let dist = match norm {
                Norm::Manhattan => dx.abs() + dy.abs(),
                Norm::Chebyshev => dx.abs().max(dy.abs()),
            };
            if dist <= r {
                offsets.push((dx, dy, dist as u64));
            }
        }
    }
    offsets
}

/// Shared kernel for the linear and cyclic generalized-stretch sweeps.
///
/// Instead of probing `table.index` once per `(cell, offset)` pair, the scan
/// walks each row of the grid and visits every dy-group of
/// [`forward_offsets`] as one *clipped contiguous slice* over the
/// precomputed index rows ([`CurveTable::index_row`]) — the same
/// row-segment shape the NFI kernel uses over the dense occupancy grid.
///
/// Stretch sums are floating point, so the accumulation order is part of
/// the observable result: the scan visits pairs in exactly the per-cell
/// offset order of the naive loop (x ascending outer, offsets in
/// `forward_offsets` order inner), which keeps artifacts byte-identical.
fn stretch_scan<const CYCLIC: bool>(table: &CurveTable, radius: u32, norm: Norm) -> StretchResult {
    let side = table.side() as i64;
    let n = table.len();
    let offsets = forward_offsets(radius, norm);
    // Contiguous runs of `offsets`: each run is one dy with consecutive
    // ascending dx values, recorded as (dy, first dx, start index, len).
    let mut groups: Vec<(i64, i64, usize, usize)> = Vec::new();
    for (i, &(dx, dy, _)) in offsets.iter().enumerate() {
        match groups.last_mut() {
            Some(g) if g.0 == dy && g.1 + g.3 as i64 == dx => g.3 += 1,
            _ => groups.push((dy, dx, i, 1)),
        }
    }

    (0..side)
        .into_par_iter()
        .fold(StretchResult::empty, |mut acc, y| {
            let row = table.index_row(y as u32);
            // Bind the target row for every group that stays on the grid at
            // this y (dy >= 0 always, so only the top edge clips).
            let active: Vec<(&[u64], i64, usize, usize)> = groups
                .iter()
                .filter(|&&(dy, ..)| y + dy < side)
                .map(|&(dy, dx_first, start, len)| {
                    (table.index_row((y + dy) as u32), dx_first, start, len)
                })
                .collect();
            for x in 0..side {
                let here = row[x as usize];
                for &(nrow, dx_first, start, len) in &active {
                    let dx_last = dx_first + len as i64 - 1;
                    let lo = dx_first.max(-x);
                    let hi = dx_last.min(side - 1 - x);
                    if lo > hi {
                        continue;
                    }
                    let s = start + (lo - dx_first) as usize;
                    let e = start + (hi - dx_first) as usize;
                    for &(dx, _, dist) in &offsets[s..=e] {
                        let there = nrow[(x + dx) as usize];
                        let linear = here.abs_diff(there);
                        let measured = if CYCLIC { linear.min(n - linear) } else { linear };
                        let stretch = measured as f64 / dist as f64;
                        acc.total_stretch += stretch;
                        acc.num_pairs += 1;
                        if stretch > acc.max_stretch {
                            acc.max_stretch = stretch;
                        }
                    }
                }
            }
            acc
        })
        .reduce(StretchResult::empty, StretchResult::merge)
}

/// Validate the shared stretch-sweep preconditions.
fn check_stretch_params(order: u32, radius: u32, max_order: u32) -> Result<(), SfcError> {
    if radius < 1 {
        return Err(SfcError::ZeroRadius);
    }
    if order > max_order {
        return Err(SfcError::OrderTooLarge {
            order,
            max_order,
        });
    }
    Ok(())
}

/// Outcome of a stretch computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchResult {
    /// Sum of per-pair stretches (linear distance / spatial distance).
    pub total_stretch: f64,
    /// Number of (unordered) pairs measured.
    pub num_pairs: u64,
    /// Largest per-pair stretch observed.
    pub max_stretch: f64,
}

impl StretchResult {
    /// The average stretch.
    pub fn average(&self) -> f64 {
        if self.num_pairs == 0 {
            0.0
        } else {
            self.total_stretch / self.num_pairs as f64
        }
    }

    fn merge(self, other: StretchResult) -> StretchResult {
        StretchResult {
            total_stretch: self.total_stretch + other.total_stretch,
            num_pairs: self.num_pairs + other.num_pairs,
            max_stretch: self.max_stretch.max(other.max_stretch),
        }
    }

    fn empty() -> StretchResult {
        StretchResult {
            total_stretch: 0.0,
            num_pairs: 0,
            max_stretch: 0.0,
        }
    }
}

/// The classic ANNS: average linear distance between Manhattan-1 neighbors,
/// over the full `2^order`-sided grid. An order above [`MAX_STRETCH_ORDER`]
/// is a typed [`SfcError`].
pub fn anns(curve: CurveKind, order: u32) -> Result<StretchResult, SfcError> {
    anns_radius(curve, order, 1, Norm::Manhattan)
}

/// Generalized stretch: all pairs within `radius` under `norm`, stretch =
/// linear distance / spatial distance. `radius = 1, Manhattan` recovers the
/// ANNS.
///
/// A zero radius or an order above [`MAX_STRETCH_ORDER`] is a typed
/// [`SfcError`] instead of an abort.
pub fn anns_radius(
    curve: CurveKind,
    order: u32,
    radius: u32,
    norm: Norm,
) -> Result<StretchResult, SfcError> {
    check_stretch_params(order, radius, MAX_STRETCH_ORDER)?;
    let table = CurveTable::new(curve, order);
    Ok(stretch_scan::<false>(&table, radius, norm))
}

/// The all-pairs stretch of Xu & Tirthapura: mean of
/// `linear distance / Manhattan distance` over *every* pair of distinct
/// cells. `O(16^order)` — restricted to tiny grids
/// ([`MAX_ALL_PAIRS_ORDER`]) and used for cross-metric comparisons and
/// tests.
///
/// An order above [`MAX_ALL_PAIRS_ORDER`] is a typed [`SfcError`] instead of
/// an abort.
pub fn all_pairs_stretch(curve: CurveKind, order: u32) -> Result<StretchResult, SfcError> {
    if order > MAX_ALL_PAIRS_ORDER {
        return Err(SfcError::OrderTooLarge {
            order,
            max_order: MAX_ALL_PAIRS_ORDER,
        });
    }
    let table = CurveTable::new(curve, order);
    let side = table.side() as u32;
    let cells: Vec<Point2> = (0..side)
        .flat_map(|y| (0..side).map(move |x| Point2::new(x, y)))
        .collect();
    let result = cells
        .par_iter()
        .enumerate()
        .fold(StretchResult::empty, |mut acc, (i, &a)| {
            let ia = table.index(a);
            for &b in &cells[i + 1..] {
                let d = a.manhattan(b);
                let stretch = ia.abs_diff(table.index(b)) as f64 / d as f64;
                acc.total_stretch += stretch;
                acc.num_pairs += 1;
                if stretch > acc.max_stretch {
                    acc.max_stretch = stretch;
                }
            }
            acc
        })
        .reduce(StretchResult::empty, StretchResult::merge);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed form for the row-major ANNS on a `s×s` grid: horizontal
    /// neighbor pairs have stretch 1, vertical pairs have stretch `s`.
    fn row_major_anns_exact(order: u32) -> f64 {
        let s = (1u64 << order) as f64;
        let horizontal = s * (s - 1.0); // pairs
        let vertical = s * (s - 1.0);
        (horizontal * 1.0 + vertical * s) / (horizontal + vertical)
    }

    #[test]
    fn row_major_matches_closed_form() {
        for order in 2..=7 {
            let res = anns(CurveKind::RowMajor, order).unwrap();
            let exact = row_major_anns_exact(order);
            assert!(
                (res.average() - exact).abs() < 1e-9,
                "order {order}: {} vs {exact}",
                res.average()
            );
        }
    }

    #[test]
    fn pair_counts_match_grid_combinatorics() {
        // On an s×s grid there are 2·s·(s−1) Manhattan-1 pairs.
        let order = 4;
        let s = 1u64 << order;
        let res = anns(CurveKind::Hilbert, order).unwrap();
        assert_eq!(res.num_pairs, 2 * s * (s - 1));
    }

    #[test]
    fn boustrophedon_beats_row_major_max_stretch() {
        // Snake scan has the same average but bounded... actually its max
        // stretch is the same order; what differs is that *horizontal*
        // neighbors at row ends stay adjacent. Verify max stretch is
        // attained by row-major at side·1 and that snake's average is no
        // worse.
        let order = 5;
        let row = anns(CurveKind::RowMajor, order).unwrap();
        let snake = anns(CurveKind::Boustrophedon, order).unwrap();
        assert!(snake.average() <= row.average() + 1e-9);
    }

    #[test]
    fn paper_figure5a_ordering_z_and_row_beat_hilbert_and_gray() {
        // The headline surprise of Section V: under ANNS, the Z-curve and
        // row-major order significantly outperform Gray and Hilbert.
        for order in 4..=7 {
            let hilbert = anns(CurveKind::Hilbert, order).unwrap().average();
            let z = anns(CurveKind::ZCurve, order).unwrap().average();
            let gray = anns(CurveKind::Gray, order).unwrap().average();
            let row = anns(CurveKind::RowMajor, order).unwrap().average();
            assert!(z < gray && z < hilbert, "order {order}: z={z} gray={gray} hilbert={hilbert}");
            assert!(row < gray && row < hilbert, "order {order}: row={row}");
        }
    }

    #[test]
    fn generalized_radius_preserves_ordering() {
        // Section V: "irregardless the radius used, the relative ordering of
        // the curves was the same".
        let order = 6;
        for radius in [2, 4, 6] {
            let z = anns_radius(CurveKind::ZCurve, order, radius, Norm::Manhattan).unwrap().average();
            let hilbert =
                anns_radius(CurveKind::Hilbert, order, radius, Norm::Manhattan).unwrap().average();
            let gray = anns_radius(CurveKind::Gray, order, radius, Norm::Manhattan).unwrap().average();
            let row = anns_radius(CurveKind::RowMajor, order, radius, Norm::Manhattan).unwrap().average();
            assert!(z < gray && z < hilbert, "radius {radius}");
            assert!(row < gray && row < hilbert, "radius {radius}");
        }
    }

    #[test]
    fn max_stretch_at_least_average() {
        for kind in CurveKind::PAPER {
            let res = anns(kind, 5).unwrap();
            assert!(res.max_stretch >= res.average());
        }
    }

    #[test]
    fn hilbert_unit_steps_bound_reverse_stretch() {
        // For the Hilbert curve, consecutive linear indices are spatial
        // neighbors, so the *minimum* stretch over M1 pairs is 1 and every
        // index step of 1 contributes stretch exactly 1. Check that some
        // pair achieves stretch 1.
        let res = anns(CurveKind::Hilbert, 4).unwrap();
        // 4^4 - 1 = 255 consecutive index pairs contribute stretch 1 each;
        // with 480 total pairs the average is bounded below by ~1.
        assert!(res.average() >= 1.0);
        assert!(res.num_pairs >= 255);
    }

    #[test]
    fn chebyshev_radius_counts() {
        let order = 3;
        let s = 1i64 << order;
        let res = anns_radius(CurveKind::ZCurve, order, 1, Norm::Chebyshev).unwrap();
        // Chebyshev-1 unordered pairs: horizontal s(s-1) + vertical s(s-1)
        // + 2 diagonals (s-1)^2 each.
        let expected = 2 * s * (s - 1) + 2 * (s - 1) * (s - 1);
        assert_eq!(res.num_pairs, expected as u64);
    }

    #[test]
    fn all_pairs_stretch_small_grid() {
        let res = all_pairs_stretch(CurveKind::Hilbert, 2).unwrap();
        // C(16, 2) pairs.
        assert_eq!(res.num_pairs, 120);
        assert!(res.average() > 0.0);
        assert!(res.max_stretch >= res.average());
    }

    /// The naive per-offset probe loop the row-segment scan replaced,
    /// kept as a reference oracle. Stretch sums are floating point, so the
    /// scans must agree *bitwise*, not just approximately.
    fn naive_scan(table: &CurveTable, radius: u32, norm: Norm, cyclic: bool) -> StretchResult {
        let side = table.side() as i64;
        let n = table.len();
        let offsets = forward_offsets(radius, norm);
        (0..side)
            .into_par_iter()
            .fold(StretchResult::empty, |mut acc, y| {
                for x in 0..side {
                    let here = table.index(Point2::new(x as u32, y as u32));
                    for &(dx, dy, dist) in &offsets {
                        let (nx, ny) = (x + dx, y + dy);
                        if nx < 0 || ny < 0 || nx >= side || ny >= side {
                            continue;
                        }
                        let there = table.index(Point2::new(nx as u32, ny as u32));
                        let linear = here.abs_diff(there);
                        let measured = if cyclic { linear.min(n - linear) } else { linear };
                        let stretch = measured as f64 / dist as f64;
                        acc.total_stretch += stretch;
                        acc.num_pairs += 1;
                        if stretch > acc.max_stretch {
                            acc.max_stretch = stretch;
                        }
                    }
                }
                acc
            })
            .reduce(StretchResult::empty, StretchResult::merge)
    }

    #[test]
    fn row_segment_scan_is_bit_identical_to_naive_probes() {
        for curve in [CurveKind::Hilbert, CurveKind::ZCurve, CurveKind::RowMajor] {
            let table = CurveTable::new(curve, 4);
            for norm in [Norm::Manhattan, Norm::Chebyshev] {
                for radius in [1, 3, 7] {
                    for cyclic in [false, true] {
                        let want = naive_scan(&table, radius, norm, cyclic);
                        let got = if cyclic {
                            stretch_scan::<true>(&table, radius, norm)
                        } else {
                            stretch_scan::<false>(&table, radius, norm)
                        };
                        assert_eq!(want.num_pairs, got.num_pairs, "{curve} r={radius}");
                        assert_eq!(
                            want.total_stretch.to_bits(),
                            got.total_stretch.to_bits(),
                            "{curve} r={radius} {norm:?} cyclic={cyclic}"
                        );
                        assert_eq!(want.max_stretch.to_bits(), got.max_stretch.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn anns_is_deterministic_and_parallel_safe() {
        let a = anns(CurveKind::Gray, 6).unwrap();
        let b = anns(CurveKind::Gray, 6).unwrap();
        assert_eq!(a.num_pairs, b.num_pairs);
        assert!((a.total_stretch - b.total_stretch).abs() < 1e-6);
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert_eq!(
            anns_radius(CurveKind::Hilbert, 4, 0, Norm::Manhattan),
            Err(SfcError::ZeroRadius)
        );
        assert_eq!(
            anns_radius(CurveKind::Hilbert, 15, 1, Norm::Manhattan),
            Err(SfcError::OrderTooLarge {
                order: 15,
                max_order: MAX_STRETCH_ORDER
            })
        );
        assert_eq!(
            all_pairs_stretch(CurveKind::ZCurve, 6),
            Err(SfcError::OrderTooLarge {
                order: 6,
                max_order: MAX_ALL_PAIRS_ORDER
            })
        );
        assert_eq!(
            anns_cyclic(CurveKind::Moore, 4, 0, Norm::Manhattan),
            Err(SfcError::ZeroRadius)
        );
        // The typed error still renders a human-readable message.
        let err = anns_radius(CurveKind::Hilbert, 4, 0, Norm::Manhattan).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
    }
}

/// Cyclic variant of the generalized stretch: linear distance measured
/// around the curve treated as a ring, `min(|Δ|, 4^k − |Δ|)`.
///
/// Motivated by the closed Moore curve extension: on ring-like layouts
/// (torus ranks, pipelined schedules) the ordering wraps, and a closed curve
/// should — and does — shed the huge start-to-end stretch an open curve pays
/// at its seam.
///
/// A zero radius or an order above [`MAX_STRETCH_ORDER`] is a typed
/// [`SfcError`] instead of an abort.
pub fn anns_cyclic(
    curve: CurveKind,
    order: u32,
    radius: u32,
    norm: Norm,
) -> Result<StretchResult, SfcError> {
    check_stretch_params(order, radius, MAX_STRETCH_ORDER)?;
    let table = CurveTable::new(curve, order);
    Ok(stretch_scan::<true>(&table, radius, norm))
}

#[cfg(test)]
mod cyclic_tests {
    use super::*;

    #[test]
    fn cyclic_never_exceeds_linear() {
        for kind in [CurveKind::Hilbert, CurveKind::Moore, CurveKind::ZCurve] {
            let linear = anns_radius(kind, 5, 1, Norm::Manhattan).unwrap();
            let cyclic = anns_cyclic(kind, 5, 1, Norm::Manhattan).unwrap();
            assert_eq!(linear.num_pairs, cyclic.num_pairs);
            assert!(cyclic.average() <= linear.average() + 1e-12, "{kind}");
            assert!(cyclic.max_stretch <= linear.max_stretch + 1e-12);
        }
    }

    #[test]
    fn closing_the_curve_does_not_fix_the_worst_pair() {
        // A counterintuitive empirical fact this metric surfaces: closing
        // the Hilbert curve (Moore) does NOT reduce the worst-case cyclic
        // stretch. The Moore curve's left and right halves are each one
        // contiguous half of the cycle, so spatially adjacent cells across
        // the vertical midline sit ~N/2 apart even cyclically — while the
        // Hilbert curve's recursive structure caps its worst pair at ~N/3.
        let order = 6;
        let n = 1u64 << (2 * order);
        let hilbert = anns_cyclic(CurveKind::Hilbert, order, 1, Norm::Manhattan).unwrap();
        let moore = anns_cyclic(CurveKind::Moore, order, 1, Norm::Manhattan).unwrap();
        assert!(
            moore.max_stretch > hilbert.max_stretch,
            "moore {} vs hilbert {}",
            moore.max_stretch,
            hilbert.max_stretch
        );
        assert!((moore.max_stretch - (n / 2 - 1) as f64).abs() < 2.0);
        assert!(hilbert.max_stretch < 0.34 * n as f64);
    }

    #[test]
    fn moore_and_hilbert_comparable_on_average() {
        let order = 6;
        let hilbert = anns(CurveKind::Hilbert, order).unwrap().average();
        let moore = anns(CurveKind::Moore, order).unwrap().average();
        let gap = (moore - hilbert).abs() / hilbert;
        assert!(gap < 0.25, "moore {moore} vs hilbert {hilbert}");
    }
}
