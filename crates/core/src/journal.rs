//! Append-only JSONL journal of completed sweep cells.
//!
//! A long regeneration sweep decomposes into named cells (one
//! `(configuration, trial)` unit each). As each cell completes, one line is
//! appended here and flushed, so a crash or an exhausted `--time-budget`
//! loses at most the cell in flight. On restart the journal is replayed and
//! only the missing cells are recomputed.
//!
//! Format: line 1 is a header binding the journal to a sweep name and a
//! configuration fingerprint; every further line is one cell record:
//!
//! ```text
//! {"sweep":"tables","fingerprint":{"scale":5,"trials":1,"seed":20130701}}
//! {"cell":"Uniform/t0/Hilbert","status":"ok","values":[1.5,2.25]}
//! {"cell":"Uniform/t0/Z","status":"failed","error":"...","attempts":3}
//! ```
//!
//! Values are `f64`s serialized in shortest-round-trip form, so a value
//! replayed from the journal is *bit-identical* to the one originally
//! computed — resumed runs produce byte-identical artifacts.
//!
//! A truncated final line (the process died mid-write) is detected and
//! dropped; the file is truncated back to the last complete record before
//! appending resumes.

use crate::error::SfcError;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Result of one journaled cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell completed and produced these values.
    Ok(Vec<f64>),
    /// The cell panicked on every attempt; the error is recorded so the
    /// sweep can report it instead of aborting.
    Failed {
        /// Captured panic message of the final attempt.
        error: String,
        /// Number of attempts made.
        attempts: u32,
    },
}

/// An open cell journal: the replayed map of completed cells plus an append
/// handle positioned after the last complete record.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    completed: BTreeMap<String, CellOutcome>,
    /// Fault injection for tests: once this many records have been written
    /// through this handle, every further write fails. `None` disables.
    fail_after: Option<u64>,
    records_written: u64,
}

impl Journal {
    /// Open (or create) the journal at `path` for the given sweep.
    ///
    /// If the file already holds records, the header must match `sweep` and
    /// `fingerprint` exactly — resuming under different parameters would
    /// silently mix incompatible results, so it is a
    /// [`SfcError::JournalMismatch`] instead. A truncated final line is
    /// dropped (and the file truncated back to the last complete record).
    pub fn open(path: &Path, sweep: &str, fingerprint: &Value) -> Result<Journal, SfcError> {
        let io_err = |e: std::io::Error| SfcError::JournalIo {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        let mut text = String::new();
        file.read_to_string(&mut text).map_err(io_err)?;

        let mut completed = BTreeMap::new();
        let header = json!({ "sweep": sweep, "fingerprint": fingerprint });
        if text.is_empty() {
            let mut line = serde_json::to_string(&header).expect("header serializes");
            line.push('\n');
            file.write_all(line.as_bytes()).map_err(io_err)?;
            file.flush().map_err(io_err)?;
        } else {
            // Replay. Anything from the first unparsable line onward is a
            // torn tail write: drop it and truncate so appends stay valid.
            let mut valid_bytes = 0usize;
            for (i, line) in text.split_inclusive('\n').enumerate() {
                let complete = line.ends_with('\n');
                let parsed = serde_json::from_str::<Value>(line.trim_end());
                let record = match (complete, parsed) {
                    (true, Ok(v)) => v,
                    _ => break,
                };
                if i == 0 {
                    if record != header {
                        return Err(SfcError::JournalMismatch {
                            path: path.display().to_string(),
                            reason: format!(
                                "header {record} does not match expected {header}"
                            ),
                        });
                    }
                } else if let Some(outcome) = parse_record(&record) {
                    let cell = record["cell"].as_str().unwrap_or_default().to_string();
                    completed.insert(cell, outcome);
                } else {
                    break;
                }
                valid_bytes += line.len();
            }
            if valid_bytes == 0 {
                // Even the header was torn; start the journal over.
                let mut line = serde_json::to_string(&header).expect("header serializes");
                line.push('\n');
                file.set_len(0).map_err(io_err)?;
                file.write_all(line.as_bytes()).map_err(io_err)?;
                file.flush().map_err(io_err)?;
            } else if valid_bytes < text.len() {
                file.set_len(valid_bytes as u64).map_err(io_err)?;
                file.seek(SeekFrom::End(0)).map_err(io_err)?;
            }
        }
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            completed,
            fail_after: None,
            records_written: 0,
        })
    }

    /// Arrange for every [`record`](Journal::record) call after the first
    /// `n` to fail with [`SfcError::JournalIo`]. Deterministic stand-in for
    /// a disk filling up mid-sweep, used by fault-injection tests
    /// (`--chaos-journal`).
    pub fn inject_write_failures_after(&mut self, n: u64) {
        self.fail_after = Some(n);
    }

    /// The outcome of a cell recorded in (or appended to) this journal.
    pub fn lookup(&self, cell: &str) -> Option<&CellOutcome> {
        self.completed.get(cell)
    }

    /// Number of cells replayed from disk or recorded since opening.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// True when no cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Append one completed cell and flush, so the record survives a crash
    /// immediately after.
    pub fn record(&mut self, cell: &str, outcome: CellOutcome) -> Result<(), SfcError> {
        let io_err = |e: std::io::Error| SfcError::JournalIo {
            path: self.path.display().to_string(),
            reason: e.to_string(),
        };
        if self.fail_after.is_some_and(|n| self.records_written >= n) {
            return Err(SfcError::JournalIo {
                path: self.path.display().to_string(),
                reason: "injected write failure".to_string(),
            });
        }
        let record = match &outcome {
            CellOutcome::Ok(values) => json!({
                "cell": cell,
                "status": "ok",
                "values": json!(values.as_slice()),
            }),
            CellOutcome::Failed { error, attempts } => json!({
                "cell": cell,
                "status": "failed",
                "error": error.as_str(),
                "attempts": *attempts,
            }),
        };
        let mut line = serde_json::to_string(&record).expect("record serializes");
        line.push('\n');
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        self.completed.insert(cell.to_string(), outcome);
        self.records_written += 1;
        Ok(())
    }
}

fn parse_record(v: &Value) -> Option<CellOutcome> {
    v.as_object()?;
    v["cell"].as_str()?;
    match v["status"].as_str()? {
        "ok" => {
            let values = v["values"]
                .as_array()?
                .iter()
                .map(|x| x.as_f64())
                .collect::<Option<Vec<f64>>>()?;
            Some(CellOutcome::Ok(values))
        }
        "failed" => Some(CellOutcome::Failed {
            error: v["error"].as_str()?.to_string(),
            attempts: v["attempts"].as_u64()? as u32,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sfc_journal_{}_{tag}.jsonl", std::process::id()))
    }

    fn fingerprint() -> Value {
        json!({ "scale": 5, "trials": 2, "seed": 7 })
    }

    #[test]
    fn records_survive_reopen() {
        let path = temp_path("reopen");
        std::fs::remove_file(&path).ok();
        {
            let mut j = Journal::open(&path, "demo", &fingerprint()).unwrap();
            j.record("a/t0", CellOutcome::Ok(vec![1.5, 0.1, -0.0])).unwrap();
            j.record(
                "a/t1",
                CellOutcome::Failed {
                    error: "index out of bounds".into(),
                    attempts: 3,
                },
            )
            .unwrap();
        }
        let j = Journal::open(&path, "demo", &fingerprint()).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.lookup("a/t0"), Some(&CellOutcome::Ok(vec![1.5, 0.1, -0.0])));
        match j.lookup("a/t1").unwrap() {
            CellOutcome::Failed { error, attempts } => {
                assert_eq!(error, "index out of bounds");
                assert_eq!(*attempts, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replayed_floats_are_bit_identical() {
        let path = temp_path("bits");
        std::fs::remove_file(&path).ok();
        let values = vec![1.0 / 3.0, f64::MIN_POSITIVE, 123_456_789.123_456_78, -0.0];
        {
            let mut j = Journal::open(&path, "demo", &fingerprint()).unwrap();
            j.record("c", CellOutcome::Ok(values.clone())).unwrap();
        }
        let j = Journal::open(&path, "demo", &fingerprint()).unwrap();
        let CellOutcome::Ok(back) = j.lookup("c").unwrap() else {
            panic!("expected ok outcome");
        };
        for (a, b) in values.iter().zip(back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_last_line_is_dropped() {
        let path = temp_path("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut j = Journal::open(&path, "demo", &fingerprint()).unwrap();
            j.record("a", CellOutcome::Ok(vec![1.0])).unwrap();
            j.record("b", CellOutcome::Ok(vec![2.0])).unwrap();
        }
        // Tear the final record mid-line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();

        let mut j = Journal::open(&path, "demo", &fingerprint()).unwrap();
        assert_eq!(j.len(), 1);
        assert!(j.lookup("a").is_some());
        assert!(j.lookup("b").is_none());
        // The file was truncated back to a record boundary: appending again
        // yields a well-formed journal.
        j.record("b", CellOutcome::Ok(vec![2.5])).unwrap();
        drop(j);
        let j = Journal::open(&path, "demo", &fingerprint()).unwrap();
        assert_eq!(j.lookup("b"), Some(&CellOutcome::Ok(vec![2.5])));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_fingerprint_rejected() {
        let path = temp_path("mismatch");
        std::fs::remove_file(&path).ok();
        drop(Journal::open(&path, "demo", &fingerprint()).unwrap());
        let other = json!({ "scale": 4, "trials": 2, "seed": 7 });
        match Journal::open(&path, "demo", &other) {
            Err(SfcError::JournalMismatch { .. }) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
        match Journal::open(&path, "different-sweep", &fingerprint()) {
            Err(SfcError::JournalMismatch { .. }) => {}
            other => panic!("expected mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_write_failures_fire_after_threshold() {
        let path = temp_path("inject");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, "demo", &fingerprint()).unwrap();
        j.inject_write_failures_after(1);
        j.record("a", CellOutcome::Ok(vec![1.0])).unwrap();
        match j.record("b", CellOutcome::Ok(vec![2.0])) {
            Err(SfcError::JournalIo { reason, .. }) => {
                assert_eq!(reason, "injected write failure");
            }
            other => panic!("expected injected failure, got {other:?}"),
        }
        // The failed record never reached disk or the replay map.
        assert!(j.lookup("b").is_none());
        drop(j);
        let j = Journal::open(&path, "demo", &fingerprint()).unwrap();
        assert_eq!(j.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_header_restarts_journal() {
        let path = temp_path("torn_header");
        std::fs::remove_file(&path).ok();
        std::fs::write(&path, "{\"sweep\":\"demo\",\"finge").unwrap();
        let mut j = Journal::open(&path, "demo", &fingerprint()).unwrap();
        assert!(j.is_empty());
        j.record("a", CellOutcome::Ok(vec![3.0])).unwrap();
        drop(j);
        let j = Journal::open(&path, "demo", &fingerprint()).unwrap();
        assert_eq!(j.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
