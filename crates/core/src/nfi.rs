//! Near-field interaction (NFI) ACD — Section IV of the paper.
//!
//! For each particle `x`, every particle `y` within radius `r` requires one
//! pairwise exchange; the communicated distance of the exchange is the hop
//! distance between the processors holding `x` and `y` (zero when they are
//! co-located). The ACD is the mean over all such exchanges.
//!
//! The neighborhood norm is configurable: the FMM near field is the
//! Chebyshev ball (cells sharing an edge or corner — "the number of nearest
//! neighbors … is bounded by 8" for `r = 1`), while the ANNS experiments use
//! the Manhattan ball. Exchanges are counted *directed* (`x → y` and
//! `y → x` are two communications); since hop distance is symmetric, the
//! ACD is identical to the undirected convention.
//!
//! The scan is parallelized over particles with rayon; each worker folds
//! into local `(distance, count)` accumulators and the reduction is an
//! integer sum, so results are independent of thread count.

use crate::assignment::Assignment;
use crate::error::SfcError;
use crate::machine::Machine;
use rayon::prelude::*;
use sfc_curves::point::Norm;
use sfc_particles::GridIndex;

/// Outcome of a near-field ACD computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NfiResult {
    /// Sum of hop distances over all directed exchanges.
    pub total_distance: u64,
    /// Number of directed exchanges (including rank-local ones).
    pub num_comms: u64,
    /// Exchanges between particles on the same rank (distance 0 by
    /// definition).
    pub local_comms: u64,
}

impl NfiResult {
    /// The Average Communicated Distance: mean hops per exchange. Zero when
    /// no exchanges occur.
    pub fn acd(&self) -> f64 {
        if self.num_comms == 0 {
            0.0
        } else {
            self.total_distance as f64 / self.num_comms as f64
        }
    }

    /// Fraction of exchanges that stayed on-rank.
    pub fn locality(&self) -> f64 {
        if self.num_comms == 0 {
            0.0
        } else {
            self.local_comms as f64 / self.num_comms as f64
        }
    }

    /// Merge two partial results.
    pub fn merge(self, other: NfiResult) -> NfiResult {
        NfiResult {
            total_distance: self.total_distance + other.total_distance,
            num_comms: self.num_comms + other.num_comms,
            local_comms: self.local_comms + other.local_comms,
        }
    }
}

/// Compute the near-field ACD for an assignment on a machine, with
/// neighborhood radius `radius` under `norm`.
///
/// A zero radius or a machine with fewer ranks than the assignment
/// addresses is a typed [`SfcError`], so a sweep harness records a failed
/// cell instead of aborting the run.
pub fn nfi_acd(
    asg: &Assignment,
    machine: &Machine,
    radius: u32,
    norm: Norm,
) -> Result<NfiResult, SfcError> {
    if radius < 1 {
        return Err(SfcError::ZeroRadius);
    }
    machine.check_assignment(asg)?;
    let side = 1i64 << asg.grid_order();
    let r = radius as i64;

    let result = asg
        .particles()
        .par_iter()
        .enumerate()
        .fold(NfiResult::default, |mut acc, (i, p)| {
            // Hoist the per-particle invariants: the particle's rank and —
            // when the machine carries the dense oracle — its whole
            // distance row, so an exchange costs one indexed u16 load
            // instead of a virtual distance call.
            let rank = asg.rank_of_index(i);
            let row = machine.distance_row(rank);
            let x = p.x as i64;
            // The neighborhood is a stack of contiguous row segments: per
            // `dy`, `dx` spans `±r` (Chebyshev) or `±(r − |dy|)`
            // (Manhattan). Clip each segment against the grid edge once,
            // then scan it with no per-cell bounds checks.
            for dy in -r..=r {
                let ny = p.y as i64 + dy;
                if ny < 0 || ny >= side {
                    continue;
                }
                let w = match norm {
                    Norm::Chebyshev => r,
                    Norm::Manhattan => r - dy.abs(),
                };
                let lo = (x - w).max(0);
                let hi = (x + w).min(side - 1);
                if lo > hi {
                    continue;
                }
                match asg.rank_row(ny as u32) {
                    Some(ranks) => {
                        // Dense fast path: two indexed loads (rank slot +
                        // oracle row) per occupied cell. `dy == 0` splits
                        // around the particle's own cell.
                        if dy == 0 {
                            scan_segment(&ranks[lo as usize..x as usize], rank, row, machine, &mut acc);
                            scan_segment(&ranks[(x + 1) as usize..=hi as usize], rank, row, machine, &mut acc);
                        } else {
                            scan_segment(&ranks[lo as usize..=hi as usize], rank, row, machine, &mut acc);
                        }
                    }
                    None => {
                        // Fallback (over-cap grid or `--no-dense-grid`):
                        // probe the CellMap per cell of the same clipped
                        // segment. Identical visit set, identical sums.
                        for nx in lo..=hi {
                            if dy == 0 && nx == x {
                                continue;
                            }
                            if let Some(other) = asg.rank_of_cell(nx as u32, ny as u32) {
                                acc.num_comms += 1;
                                if other == rank {
                                    acc.local_comms += 1;
                                } else {
                                    acc.total_distance += match row {
                                        Some(row) => u64::from(row[other as usize]),
                                        None => machine.distance(rank, other),
                                    };
                                }
                            }
                        }
                    }
                }
            }
            acc
        })
        .reduce(NfiResult::default, NfiResult::merge);
    Ok(result)
}

/// Accumulate one clipped row segment of the dense rank table into `acc`:
/// every occupied slot is one directed exchange. With the oracle row in
/// hand the accumulate is branchless past the occupancy test — the oracle's
/// zero self-distance makes rank-local exchanges add nothing.
#[inline]
fn scan_segment(
    seg: &[u32],
    rank: u32,
    row: Option<&[u16]>,
    machine: &Machine,
    acc: &mut NfiResult,
) {
    match row {
        Some(row) => {
            for &other in seg {
                if other == GridIndex::EMPTY {
                    continue;
                }
                acc.num_comms += 1;
                acc.local_comms += u64::from(other == rank);
                acc.total_distance += u64::from(row[other as usize]);
            }
        }
        None => {
            for &other in seg {
                if other == GridIndex::EMPTY {
                    continue;
                }
                acc.num_comms += 1;
                if other == rank {
                    acc.local_comms += 1;
                } else {
                    acc.total_distance += machine.distance(rank, other);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_curves::{CurveKind, Point2};
    use sfc_topology::TopologyKind;

    fn pts(coords: &[(u32, u32)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    /// Two adjacent particles on two single-particle ranks placed on
    /// adjacent mesh nodes: 2 directed exchanges of 1 hop each.
    #[test]
    fn two_adjacent_particles_two_ranks() {
        let particles = pts(&[(0, 0), (1, 0)]);
        let asg = Assignment::new(&particles, 2, CurveKind::RowMajor, 2);
        let machine = Machine::grid(TopologyKind::Mesh, 16, CurveKind::RowMajor);
        let res = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
        assert_eq!(res.num_comms, 2);
        assert_eq!(res.local_comms, 0);
        // Ranks 0 and 1 sit on mesh nodes (0,0) and (1,0): 1 hop.
        assert_eq!(res.total_distance, 2);
        assert!((res.acd() - 1.0).abs() < 1e-12);
    }

    /// Co-located particles communicate at distance zero.
    #[test]
    fn same_rank_is_free() {
        let particles = pts(&[(0, 0), (1, 0)]);
        let asg = Assignment::new(&particles, 2, CurveKind::RowMajor, 1);
        let machine = Machine::grid(TopologyKind::Mesh, 16, CurveKind::RowMajor);
        let res = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
        assert_eq!(res.num_comms, 2);
        assert_eq!(res.local_comms, 2);
        assert_eq!(res.total_distance, 0);
        assert_eq!(res.acd(), 0.0);
        assert_eq!(res.locality(), 1.0);
    }

    /// Manhattan r=1 sees 4-neighborhoods, Chebyshev sees 8.
    #[test]
    fn norm_controls_neighborhood() {
        // 3x3 block of particles, count the center's exchanges by comparing
        // totals: full block under Chebyshev r=1 has each pair of the 8
        // neighbors of the center... simpler: compare comm counts.
        let mut coords = Vec::new();
        for x in 0..3u32 {
            for y in 0..3u32 {
                coords.push((x, y));
            }
        }
        let particles = pts(&coords);
        let asg = Assignment::new(&particles, 2, CurveKind::RowMajor, 1);
        let machine = Machine::grid(TopologyKind::Mesh, 16, CurveKind::RowMajor);
        let cheb = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
        let manh = nfi_acd(&asg, &machine, 1, Norm::Manhattan).unwrap();
        // Chebyshev: 4 corners*3 + 4 edges*5 + 1 center*8 = 40 exchanges.
        assert_eq!(cheb.num_comms, 40);
        // Manhattan: 4 corners*2 + 4 edges*3 + center*4 = 24.
        assert_eq!(manh.num_comms, 24);
    }

    /// Isolated particles produce no communications.
    #[test]
    fn isolated_particles_no_comms() {
        let particles = pts(&[(0, 0), (7, 7)]);
        let asg = Assignment::new(&particles, 3, CurveKind::Hilbert, 2);
        let machine = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        let res = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
        assert_eq!(res.num_comms, 0);
        assert_eq!(res.acd(), 0.0);
    }

    /// Larger radius reaches the distant particle.
    #[test]
    fn radius_expands_neighborhood() {
        let particles = pts(&[(0, 0), (3, 0)]);
        let asg = Assignment::new(&particles, 3, CurveKind::RowMajor, 2);
        let machine = Machine::grid(TopologyKind::Torus, 64, CurveKind::RowMajor);
        for r in 1..=2 {
            let res = nfi_acd(&asg, &machine, r, Norm::Chebyshev).unwrap();
            assert_eq!(res.num_comms, 0, "radius {r}");
        }
        let res = nfi_acd(&asg, &machine, 3, Norm::Chebyshev).unwrap();
        assert_eq!(res.num_comms, 2);
    }

    /// The grid boundary clips neighborhoods without panicking.
    #[test]
    fn boundary_clipping() {
        let particles = pts(&[(0, 0), (0, 1), (1, 0)]);
        let asg = Assignment::new(&particles, 1, CurveKind::Hilbert, 1);
        let machine = Machine::grid(TopologyKind::Mesh, 4, CurveKind::Hilbert);
        let res = nfi_acd(&asg, &machine, 2, Norm::Chebyshev).unwrap();
        // All pairs within radius 2: 3 unordered pairs = 6 directed.
        assert_eq!(res.num_comms, 6);
        assert_eq!(res.local_comms, 6);
    }

    /// ACD is invariant under the direction convention (always symmetric).
    #[test]
    fn directed_counting_is_symmetric() {
        let particles = pts(&[(0, 0), (1, 1), (2, 2), (0, 2)]);
        let asg = Assignment::new(&particles, 2, CurveKind::ZCurve, 4);
        let machine = Machine::grid(TopologyKind::Mesh, 16, CurveKind::ZCurve);
        let res = nfi_acd(&asg, &machine, 2, Norm::Chebyshev).unwrap();
        assert_eq!(res.num_comms % 2, 0);
        assert_eq!(res.total_distance % 2, 0);
    }

    #[test]
    fn zero_radius_rejected() {
        let particles = pts(&[(0, 0)]);
        let asg = Assignment::new(&particles, 2, CurveKind::Hilbert, 1);
        let machine = Machine::grid(TopologyKind::Mesh, 16, CurveKind::Hilbert);
        let err = nfi_acd(&asg, &machine, 0, Norm::Chebyshev).unwrap_err();
        assert_eq!(err, crate::error::SfcError::ZeroRadius);
        // The typed error still renders the human-readable message callers
        // used to get from the (since removed) panicking shim.
        assert!(
            err.to_string().contains("radius must be at least 1"),
            "{err}"
        );
    }

    #[test]
    fn invalid_configurations_are_typed_errors_not_aborts() {
        use crate::error::SfcError;
        let particles = pts(&[(0, 0), (1, 0)]);
        let asg = Assignment::new(&particles, 2, CurveKind::Hilbert, 4);
        let machine = Machine::grid(TopologyKind::Mesh, 16, CurveKind::Hilbert);
        assert_eq!(
            nfi_acd(&asg, &machine, 0, Norm::Chebyshev),
            Err(SfcError::ZeroRadius)
        );
        // A machine smaller than the assignment's rank space is an error,
        // not a mid-scan panic that would abort a whole sweep.
        let asg64 = Assignment::new(&particles, 2, CurveKind::Hilbert, 64);
        match nfi_acd(&asg64, &machine, 1, Norm::Chebyshev) {
            Err(SfcError::MachineTooSmall {
                machine_ranks: 16,
                assignment_ranks: 64,
            }) => {}
            other => panic!("expected MachineTooSmall, got {other:?}"),
        }
    }

    /// The dense row-segment scan and the CellMap probe fallback produce
    /// bit-identical results, with and without the distance oracle.
    #[test]
    fn dense_grid_on_and_off_agree() {
        let mut coords = Vec::new();
        // An irregular blob so boundary clipping, empty cells and both
        // scan paths are all exercised.
        for x in 0..8u32 {
            for y in 0..8u32 {
                if (x * 7 + y * 3) % 5 != 0 {
                    coords.push((x, y));
                }
            }
        }
        let particles = pts(&coords);
        for curve in [CurveKind::Hilbert, CurveKind::ZCurve, CurveKind::RowMajor] {
            let dense = Assignment::new(&particles, 3, curve, 16);
            let sparse = dense.clone().without_dense_grid();
            assert!(dense.has_dense_grid() && !sparse.has_dense_grid());
            for topo in [TopologyKind::Mesh, TopologyKind::Torus] {
                let cached = Machine::grid(topo, 16, curve);
                let plain = Machine::grid(topo, 16, curve).without_oracle();
                for norm in [Norm::Chebyshev, Norm::Manhattan] {
                    for radius in 1..=4 {
                        let want = nfi_acd(&dense, &cached, radius, norm);
                        assert_eq!(want, nfi_acd(&sparse, &cached, radius, norm));
                        assert_eq!(want, nfi_acd(&dense, &plain, radius, norm));
                        assert_eq!(want, nfi_acd(&sparse, &plain, radius, norm));
                    }
                }
            }
        }
    }

    /// The oracle fast path and the closed-form fallback produce
    /// bit-identical results.
    #[test]
    fn oracle_on_and_off_agree() {
        let mut coords = Vec::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                coords.push((x, y));
            }
        }
        let particles = pts(&coords);
        let asg = Assignment::new(&particles, 3, CurveKind::Hilbert, 16);
        let cached = Machine::grid(TopologyKind::Torus, 16, CurveKind::Hilbert);
        let plain = Machine::grid(TopologyKind::Torus, 16, CurveKind::Hilbert).without_oracle();
        for norm in [Norm::Chebyshev, Norm::Manhattan] {
            for r in 1..=3 {
                assert_eq!(
                    nfi_acd(&asg, &cached, r, norm),
                    nfi_acd(&asg, &plain, r, norm),
                    "radius {r}"
                );
            }
        }
    }
}
