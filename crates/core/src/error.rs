//! Typed errors for experiment configuration and sweep execution.
//!
//! Everything a *user* can get wrong — experiment parameters, journal
//! files, cells that keep failing, kernel entry-point preconditions like an
//! undersized machine or a zero near-field radius — surfaces as an
//! [`SfcError`] so the sweep harness can record it and carry on instead of
//! aborting a multi-hour regeneration run. The metric kernels expose
//! `try_*` entry points returning these errors; their panicking wrappers
//! remain for infallible call sites. Only genuinely-impossible states (an
//! out-of-range index *inside* a validated hot loop) stay panic-based.

use sfc_particles::WorkloadError;

/// Errors raised by experiment validation and the fault-tolerant sweep
/// runner.
#[derive(Debug, Clone, PartialEq)]
pub enum SfcError {
    /// The processor count is not a power of four (every topology in a
    /// sweep must be constructible: square grids and quadtrees need a
    /// power of four).
    NonPowerOfFourProcessors {
        /// The offending count.
        num_processors: u64,
    },
    /// The near-field radius is at least the grid side, so every cell's
    /// neighborhood would wrap the whole domain.
    RadiusExceedsGrid {
        /// Requested neighborhood radius.
        radius: u32,
        /// Grid side `2^order`.
        side: u64,
    },
    /// The experiment asks for zero trials, which can only produce empty
    /// sample sets.
    NoTrials,
    /// The workload description is unsatisfiable (grid order out of range,
    /// particle count exceeding the grid's capacity).
    Workload(WorkloadError),
    /// A statistics summary was requested over an empty sample set — after
    /// a partial sweep, a configuration may have no completed trials.
    EmptySamples,
    /// A 2D mesh/torus route was requested on a node count that is not a
    /// perfect square, so no `side × side` grid exists to route on.
    NonSquareMesh {
        /// The offending node count.
        nodes: u64,
    },
    /// A sweep cell kept panicking after the bounded retries.
    CellFailed {
        /// Cell name.
        cell: String,
        /// The captured panic message of the final attempt.
        error: String,
        /// How many attempts were made.
        attempts: u32,
    },
    /// A journal file exists but does not belong to this sweep
    /// configuration (different sweep name or fingerprint).
    JournalMismatch {
        /// Journal path.
        path: String,
        /// What differed.
        reason: String,
    },
    /// A journal file could not be read or written.
    JournalIo {
        /// Journal path.
        path: String,
        /// The underlying I/O error, stringified.
        reason: String,
    },
    /// An assignment addresses more ranks than the machine has processors,
    /// so some particles would map to nonexistent nodes.
    MachineTooSmall {
        /// Processors in the machine.
        machine_ranks: u64,
        /// Ranks the assignment partitions particles into.
        assignment_ranks: u64,
    },
    /// A near-field/stretch radius of zero was requested; every neighborhood
    /// would be empty and the metric undefined.
    ZeroRadius,
    /// A grid order larger than an entry point's documented ceiling was
    /// requested (full-grid stretch sweeps and all-pairs stretch are
    /// super-linear in the cell count).
    OrderTooLarge {
        /// Requested grid order.
        order: u32,
        /// The entry point's maximum supported order.
        max_order: u32,
    },
    /// The topology's diameter does not fit the distance oracle's `u16`
    /// cells, so a cached distance would saturate.
    OracleDistanceOverflow {
        /// The topology diameter that overflowed.
        diameter: u64,
    },
    /// A whole-artifact computation panicked (outside the per-cell retry
    /// machinery — e.g. in a daemon's `compute_artifact` leader). The panic
    /// was contained with `catch_unwind`; the computation produced nothing
    /// and must be reported as a typed failure, never a hang.
    ComputePanicked {
        /// The captured panic message.
        message: String,
    },
}

impl std::fmt::Display for SfcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SfcError::NonPowerOfFourProcessors { num_processors } => write!(
                f,
                "processor count must be a power of four, got {num_processors}"
            ),
            SfcError::RadiusExceedsGrid { radius, side } => write!(
                f,
                "near-field radius {radius} does not fit a {side}x{side} grid"
            ),
            SfcError::NoTrials => write!(f, "experiment requires at least one trial"),
            SfcError::Workload(e) => write!(f, "{e}"),
            SfcError::EmptySamples => write!(f, "no samples to summarize"),
            SfcError::NonSquareMesh { nodes } => write!(
                f,
                "mesh/torus routing requires a square node count, got {nodes}"
            ),
            SfcError::CellFailed {
                cell,
                error,
                attempts,
            } => write!(f, "cell `{cell}` failed after {attempts} attempts: {error}"),
            SfcError::JournalMismatch { path, reason } => {
                write!(f, "journal {path} belongs to a different sweep: {reason}")
            }
            SfcError::JournalIo { path, reason } => {
                write!(f, "journal {path}: {reason}")
            }
            SfcError::MachineTooSmall {
                machine_ranks,
                assignment_ranks,
            } => write!(
                f,
                "machine has {machine_ranks} ranks but the assignment \
                 addresses {assignment_ranks}"
            ),
            SfcError::ZeroRadius => {
                write!(f, "neighborhood radius must be at least 1")
            }
            SfcError::OrderTooLarge { order, max_order } => write!(
                f,
                "grid order {order} exceeds this entry point's maximum of {max_order}"
            ),
            SfcError::OracleDistanceOverflow { diameter } => write!(
                f,
                "topology diameter {diameter} exceeds the distance oracle's \
                 u16 range"
            ),
            SfcError::ComputePanicked { message } => {
                write!(f, "artifact computation panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SfcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SfcError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WorkloadError> for SfcError {
    fn from(e: WorkloadError) -> Self {
        SfcError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_problem() {
        let e = SfcError::NonPowerOfFourProcessors { num_processors: 48 };
        assert!(e.to_string().contains("power of four"));
        assert!(e.to_string().contains("48"));

        let e = SfcError::RadiusExceedsGrid { radius: 70, side: 64 };
        assert!(e.to_string().contains("radius 70"));

        assert!(SfcError::EmptySamples.to_string().contains("no samples"));

        let e = SfcError::NonSquareMesh { nodes: 32 };
        assert!(e.to_string().contains("square") && e.to_string().contains("32"));

        let e = SfcError::CellFailed {
            cell: "uniform/t0/Hilbert".into(),
            error: "boom".into(),
            attempts: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("uniform/t0/Hilbert") && msg.contains("boom"));

        let e = SfcError::MachineTooSmall {
            machine_ranks: 16,
            assignment_ranks: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("16") && msg.contains("64"));

        assert!(SfcError::ZeroRadius.to_string().contains("at least 1"));

        let e = SfcError::OrderTooLarge { order: 20, max_order: 14 };
        let msg = e.to_string();
        assert!(msg.contains("20") && msg.contains("14"));

        let e = SfcError::OracleDistanceOverflow { diameter: 70_000 };
        assert!(e.to_string().contains("70000"));

        let e = SfcError::ComputePanicked {
            message: "index out of bounds".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("panicked") && msg.contains("index out of bounds"));
    }

    #[test]
    fn workload_errors_convert() {
        let w = WorkloadError::GridOrderOutOfRange { order: 99 };
        let e: SfcError = w.into();
        assert!(e.to_string().contains("grid order out of range"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
