//! # sfc-core
//!
//! The metric engine of the workspace: an implementation of the **Average
//! Communicated Distance (ACD)** metric and the FMM communication model of
//! *DeFord & Kalyanaraman, "Empirical Analysis of Space-Filling Curves for
//! Scientific Computing Applications" (ICPP 2013)*, together with Xu &
//! Tirthapura's **Average Nearest Neighbor Stretch (ANNS)** and the paper's
//! radius-`r` generalization of it.
//!
//! ## The model (paper Sections III–IV)
//!
//! Given `n` particles on a `2^k × 2^k` grid and `p` processors on a
//! network:
//!
//! 1. order the particles by the *particle-order* SFC ([`Assignment`]);
//! 2. split them into `p` consecutive chunks of `⌈n/p⌉` and give chunk `i`
//!    to rank `i`;
//! 3. place ranks onto the physical network with the *processor-order* SFC
//!    ([`Machine`]; grid topologies only);
//! 4. replay the communication pattern of one FMM time step and record the
//!    hop distance of every pairwise communication:
//!    - near-field interactions ([`nfi::nfi_acd`]): every particle exchanges
//!      with all particles within radius `r`;
//!    - far-field interactions ([`ffi::ffi_acd`]): interpolation and
//!      anterpolation up/down the spatial quadtree plus the interaction-list
//!      exchanges at every level.
//!
//! The ACD is the mean hop distance over all communications. Everything is
//! deterministic given the workload seed, and the heavy loops are
//! parallelized with rayon (sums are order-independent, so parallel runs are
//! bit-identical to sequential ones).
//!
//! ## Quick example
//!
//! ```
//! use sfc_core::{Assignment, Machine, nfi::nfi_acd};
//! use sfc_curves::{CurveKind, point::Norm};
//! use sfc_particles::{Distribution, sample};
//! use sfc_topology::TopologyKind;
//!
//! let particles = sample(Distribution::uniform(), 6, 500, 7);
//! let asg = Assignment::new(&particles, 6, CurveKind::Hilbert, 64);
//! let machine = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
//! let result = nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
//! assert!(result.acd() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anns;
pub mod anns3d;
pub mod assignment;
pub mod cache;
pub mod clustering;
pub mod error;
pub mod experiment;
pub mod ffi;
pub mod journal;
pub mod load;
pub mod machine;
pub mod model3d;
pub mod nfi;
pub mod obs;
pub mod oracle;
pub mod pattern;
pub mod report;
pub mod runner;
pub mod sha256;
pub mod spec;
pub mod stats;
pub mod timing;

pub use anns::{anns_radius, StretchResult};
pub use assignment::Assignment;
pub use cache::{CacheCounters, CachedArtifact, MemTierStats, ResultCache, TierHit, KERNEL_VERSION};
pub use error::SfcError;
pub use experiment::{AcdExperiment, AcdMeasurement};
pub use machine::Machine;
pub use obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceSink};
pub use oracle::DistanceOracle;
pub use runner::{BatchCell, CellResult, ChaosInjector, RunnerOptions, SweepRunner, SweepSummary};
pub use spec::{ArtifactKind, ExperimentSpec};
pub use stats::Stats;
pub use timing::{CellTiming, LatencyHistogram};
