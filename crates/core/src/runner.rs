//! Fault-tolerant, parallel sweep execution.
//!
//! A regeneration sweep is decomposed into named *cells* — one
//! `(configuration, trial)` unit each. Cells are submitted in batches
//! ([`SweepRunner::run_cells`]) and executed on a pool of worker threads
//! (`--jobs`); each cell runs under [`std::panic::catch_unwind`] with
//! bounded deterministic retries, is journaled as it completes (see
//! [`crate::journal`]), and is replayed from the journal on restart so
//! interrupted sweeps resume instead of recomputing. A wall-clock
//! `time_budget` stops *scheduling* new cells once exhausted (cells in
//! flight finish), and a deterministic chaos hook injects panics into
//! selected cells for fault-injection tests.
//!
//! ## Determinism
//!
//! Thread count never changes output bytes. Cells are pure functions of
//! their name and the sweep configuration, journal writes are serialized
//! through a single writer, and results are assembled in *submission*
//! order, so the artifact produced under `--jobs 8` is byte-identical to
//! the one produced under `--jobs 1` — and a journal written at one thread
//! count replays correctly at any other (replay is by cell name, not byte
//! offset).
//!
//! Cells that still panic after the retries become structured
//! [`SfcError::CellFailed`] values in the [`SweepSummary`] — the sweep keeps
//! going and reports them at the end, rather than aborting a multi-hour run
//! on the last configuration. Journal *write* failures are not silently
//! swallowed: the summary records a `journal_degraded` flag on the first
//! failed write, and once [`MAX_JOURNAL_WRITE_FAILURES`] consecutive writes
//! fail the journal is declared dead and every subsequent cell returns a
//! hard [`SfcError::JournalIo`] instead of computing results whose coverage
//! the journal would falsely claim on resume.

use crate::error::SfcError;
use crate::journal::{CellOutcome, Journal};
use crate::timing::{self, CellTiming};
use serde_json::Value;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default number of attempts per cell (1 initial + 2 retries).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Consecutive journal write failures tolerated before the journal is
/// declared dead and the sweep starts failing cells hard.
pub const MAX_JOURNAL_WRITE_FAILURES: u32 = 3;

/// Deterministic fault injection: cells whose name contains one of the
/// patterns panic before their closure runs.
#[derive(Debug, Clone, Default)]
pub struct ChaosInjector {
    /// Substring patterns of cell names to sabotage.
    pub patterns: Vec<String>,
    /// `false`: panic only on the first attempt (the retry succeeds).
    /// `true`: panic on every attempt (the cell becomes a structured
    /// failure).
    pub persistent: bool,
}

impl ChaosInjector {
    /// New injector over comma-separated substring patterns.
    pub fn new(patterns: &[String], persistent: bool) -> Self {
        ChaosInjector {
            patterns: patterns.to_vec(),
            persistent,
        }
    }

    fn should_panic(&self, cell: &str, attempt: u32) -> bool {
        (self.persistent || attempt == 0)
            && self.patterns.iter().any(|p| !p.is_empty() && cell.contains(p))
    }
}

/// Configuration of a [`SweepRunner`].
#[derive(Debug, Default)]
pub struct RunnerOptions {
    /// Journal file to append to / resume from (`--journal`).
    pub journal: Option<std::path::PathBuf>,
    /// Attempts per cell before recording a failure; 0 is treated as 1.
    pub max_attempts: u32,
    /// Wall-clock budget; once exceeded, no new cells start
    /// (`--time-budget`).
    pub time_budget: Option<Duration>,
    /// Fault injection for tests (`--chaos`).
    pub chaos: Option<ChaosInjector>,
    /// Worker threads for batch-submitted cells (`--jobs`); 0 means "all
    /// cores" ([`std::thread::available_parallelism`]). Results are
    /// byte-identical for every value.
    pub jobs: usize,
    /// Journal fault injection for tests (`--chaos-journal`): after this
    /// many successful record writes, every further write fails.
    pub journal_fail_after: Option<u64>,
}

impl RunnerOptions {
    /// Options with the default retry bound and everything else off.
    pub fn new() -> Self {
        RunnerOptions {
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            ..Default::default()
        }
    }
}

/// How one cell was resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum CellResult {
    /// Computed in this run (possibly after retries).
    Computed(Vec<f64>),
    /// Replayed from the journal without recomputation.
    Replayed(Vec<f64>),
    /// Panicked on every attempt ([`SfcError::CellFailed`]), or refused
    /// because the journal died ([`SfcError::JournalIo`]); the sweep
    /// continues without it.
    Failed(SfcError),
    /// Not started: the time budget was exhausted.
    Skipped,
}

impl CellResult {
    /// The cell's values, if it completed (now or in a previous run).
    pub fn values(&self) -> Option<&[f64]> {
        match self {
            CellResult::Computed(v) | CellResult::Replayed(v) => Some(v),
            _ => None,
        }
    }
}

/// One named unit of sweep work, for batch submission via
/// [`SweepRunner::run_cells`]. The closure must be callable repeatedly
/// (retries) from any worker thread, and must be a pure function of the
/// sweep configuration so that results are identical regardless of which
/// thread computes them.
pub struct BatchCell<'s> {
    name: String,
    work: Box<dyn Fn() -> Vec<f64> + Send + Sync + 's>,
}

impl<'s> BatchCell<'s> {
    /// Package one named cell.
    pub fn new<F: Fn() -> Vec<f64> + Send + Sync + 's>(name: impl Into<String>, work: F) -> Self {
        BatchCell {
            name: name.into(),
            work: Box::new(work),
        }
    }

    /// The cell's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for BatchCell<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchCell").field("name", &self.name).finish()
    }
}

/// One failed cell, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCell {
    /// Cell name.
    pub cell: String,
    /// Captured panic message of the final attempt, or the journal error
    /// that refused the cell.
    pub error: String,
    /// Attempts made (0 when the cell never ran).
    pub attempts: u32,
}

/// End-of-sweep accounting.
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    /// Cells computed in this run.
    pub computed: usize,
    /// Cells replayed from the journal.
    pub replayed: usize,
    /// Cells that failed after retries (this run or a journaled one), or
    /// were refused because the journal died.
    pub failed: Vec<FailedCell>,
    /// Cells never started because the time budget ran out.
    pub skipped: Vec<String>,
    /// True when at least one journal write failed: the journal on disk
    /// under-reports this run's coverage, so a resume would recompute (and
    /// for failure records, re-retry) cells this run already resolved.
    pub journal_degraded: bool,
    /// Wall time and kernel-phase breakdown of every cell *computed* in
    /// this run (successful attempt only), in submission order. Replayed,
    /// failed and skipped cells have no entry. Excluded from equality —
    /// wall times are non-deterministic, while the rest of the summary must
    /// be byte-identical at any thread count.
    pub timings: Vec<(String, CellTiming)>,
}

impl PartialEq for SweepSummary {
    fn eq(&self, other: &Self) -> bool {
        self.computed == other.computed
            && self.replayed == other.replayed
            && self.failed == other.failed
            && self.skipped == other.skipped
            && self.journal_degraded == other.journal_degraded
    }
}

impl SweepSummary {
    /// True when every scheduled cell completed and the journal (if any)
    /// recorded all of them.
    pub fn complete(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty() && !self.journal_degraded
    }

    /// Names of all cells missing from the results (failed or skipped).
    pub fn missing(&self) -> Vec<String> {
        let mut out: Vec<String> = self.failed.iter().map(|f| f.cell.clone()).collect();
        out.extend(self.skipped.iter().cloned());
        out
    }
}

/// Serialized journal writer shared by the worker pool: a single point
/// through which every record write goes, tracking write health.
#[derive(Debug)]
struct JournalState {
    journal: Journal,
    /// Consecutive failed writes; reset on every success.
    consecutive_failures: u32,
    /// Set on the first failed write, never cleared.
    degraded: bool,
    /// Set once `consecutive_failures` reaches the bound: the error every
    /// subsequent cell is refused with.
    dead: Option<SfcError>,
}

impl JournalState {
    /// Append one outcome; on failure, update the degradation state.
    fn record(&mut self, cell: &str, outcome: CellOutcome) {
        match self.journal.record(cell, outcome) {
            Ok(()) => self.consecutive_failures = 0,
            Err(e) => {
                self.degraded = true;
                self.consecutive_failures += 1;
                eprintln!("warning: journal write failed for cell `{cell}`: {e}");
                if self.consecutive_failures >= MAX_JOURNAL_WRITE_FAILURES && self.dead.is_none() {
                    eprintln!(
                        "error: {} consecutive journal writes failed; refusing further cells",
                        self.consecutive_failures
                    );
                    self.dead = Some(e);
                }
            }
        }
    }
}

/// Shared per-batch execution context for the worker pool.
struct BatchCtx<'a, 'env> {
    cells: &'a [BatchCell<'env>],
    /// Indices of cells not resolved by replay, in submission order.
    queue: Mutex<VecDeque<usize>>,
    /// One slot per submitted cell, filled as workers finish.
    results: Mutex<Vec<Option<CellResult>>>,
    /// Timing of each computed cell, same indexing as `results`.
    timings: Mutex<Vec<Option<CellTiming>>>,
    journal: &'a Mutex<Option<JournalState>>,
    chaos: &'a Option<ChaosInjector>,
    max_attempts: u32,
    time_budget: Option<Duration>,
    started: Instant,
}

impl BatchCtx<'_, '_> {
    fn out_of_time(&self) -> bool {
        self.time_budget
            .is_some_and(|budget| self.started.elapsed() >= budget)
    }

    /// The journal's hard error, if writes have persistently failed.
    fn journal_dead(&self) -> Option<SfcError> {
        let guard = self.journal.lock().expect("journal lock");
        guard.as_ref().and_then(|s| s.dead.clone())
    }

    fn record(&self, cell: &str, outcome: CellOutcome) {
        let mut guard = self.journal.lock().expect("journal lock");
        if let Some(state) = guard.as_mut() {
            state.record(cell, outcome);
        }
    }

    /// Claim-and-run loop executed by every worker thread (and inline by
    /// the calling thread when one worker suffices).
    fn worker_loop(&self) {
        loop {
            let i = match self.queue.lock().expect("queue lock").pop_front() {
                Some(i) => i,
                None => break,
            };
            let (result, timing) = self.run_one(&self.cells[i]);
            self.results.lock().expect("results lock")[i] = Some(result);
            if timing.is_some() {
                self.timings.lock().expect("timings lock")[i] = timing;
            }
        }
    }

    /// Execute one cell: journal-health gate, budget gate, then the bounded
    /// retry loop under `catch_unwind`. A computed cell also returns the
    /// wall time and phase breakdown of its successful attempt.
    fn run_one(&self, cell: &BatchCell<'_>) -> (CellResult, Option<CellTiming>) {
        if let Some(err) = self.journal_dead() {
            return (CellResult::Failed(err), None);
        }
        if self.out_of_time() {
            return (CellResult::Skipped, None);
        }
        let mut last_error = String::new();
        for attempt in 0..self.max_attempts {
            let chaos_hit = self
                .chaos
                .as_ref()
                .is_some_and(|c| c.should_panic(&cell.name, attempt));
            // A cell runs entirely on this thread, so a thread-local phase
            // recorder observes exactly this attempt (and discards any
            // half-recorded phases of a panicked previous one).
            timing::start_recording();
            let attempt_started = Instant::now();
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if chaos_hit {
                    panic!("chaos injection");
                }
                (cell.work)()
            }));
            match result {
                Ok(values) => {
                    let cell_timing = CellTiming {
                        wall_ms: attempt_started.elapsed().as_secs_f64() * 1e3,
                        phases: timing::take_recording(),
                    };
                    self.record(&cell.name, CellOutcome::Ok(values.clone()));
                    return (CellResult::Computed(values), Some(cell_timing));
                }
                Err(payload) => last_error = panic_message(payload.as_ref()),
            }
        }
        let _ = timing::take_recording();
        self.record(
            &cell.name,
            CellOutcome::Failed {
                error: last_error.clone(),
                attempts: self.max_attempts,
            },
        );
        (
            CellResult::Failed(SfcError::CellFailed {
                cell: cell.name.clone(),
                error: last_error,
                attempts: self.max_attempts,
            }),
            None,
        )
    }
}

/// Executes sweep cells on a worker pool with journaling, retries, chaos
/// and a time budget.
#[derive(Debug)]
pub struct SweepRunner {
    journal: Mutex<Option<JournalState>>,
    max_attempts: u32,
    time_budget: Option<Duration>,
    chaos: Option<ChaosInjector>,
    jobs: usize,
    started: Instant,
    summary: SweepSummary,
}

impl SweepRunner {
    /// Create a runner for the sweep `name` under the given configuration
    /// `fingerprint`. When `options.journal` is set, the journal is opened
    /// (resuming any completed cells); a journal written under a different
    /// name/fingerprint is rejected.
    pub fn new(name: &str, fingerprint: &Value, options: RunnerOptions) -> Result<Self, SfcError> {
        let journal = match &options.journal {
            Some(path) => {
                let mut journal = Journal::open(Path::new(path), name, fingerprint)?;
                if let Some(n) = options.journal_fail_after {
                    journal.inject_write_failures_after(n);
                }
                Some(JournalState {
                    journal,
                    consecutive_failures: 0,
                    degraded: false,
                    dead: None,
                })
            }
            None => None,
        };
        let jobs = match options.jobs {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        Ok(SweepRunner {
            journal: Mutex::new(journal),
            max_attempts: options.max_attempts.max(1),
            time_budget: options.time_budget,
            chaos: options.chaos,
            jobs,
            started: Instant::now(),
            summary: SweepSummary::default(),
        })
    }

    /// A runner with no journal, no budget and no chaos — plain bounded
    /// retry on the default worker pool. Useful for tests and ad-hoc
    /// sweeps.
    pub fn ephemeral() -> Self {
        SweepRunner::new("ephemeral", &Value::Null, RunnerOptions::new())
            .expect("no journal to fail on")
    }

    /// Number of cells already present in the journal (0 without one).
    pub fn journaled(&self) -> usize {
        let guard = self.journal.lock().expect("journal lock");
        guard.as_ref().map_or(0, |s| s.journal.len())
    }

    /// Worker threads cells are scheduled on.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// True once the wall-clock budget is spent: no further cell will run.
    pub fn out_of_time(&self) -> bool {
        self.time_budget
            .is_some_and(|budget| self.started.elapsed() >= budget)
    }

    /// Run (or replay) a batch of independent cells on the worker pool.
    ///
    /// Cells execute concurrently (up to the configured `jobs`), but the
    /// returned results — and the summary accounting — are in *submission*
    /// order, and every cell's values are independent of scheduling, so a
    /// sweep's artifact is byte-identical at any thread count. Journaled
    /// cells are replayed without being scheduled; a spent time budget
    /// skips cells not yet claimed (cells in flight finish); a dead journal
    /// fails remaining cells hard with [`SfcError::JournalIo`].
    pub fn run_cells(&mut self, cells: Vec<BatchCell<'_>>) -> Vec<CellResult> {
        let n = cells.len();
        let mut slots: Vec<Option<CellResult>> = vec![None; n];
        let mut pending: VecDeque<usize> = VecDeque::new();
        {
            let guard = self.journal.lock().expect("journal lock");
            for (i, cell) in cells.iter().enumerate() {
                let replay = guard
                    .as_ref()
                    .and_then(|s| s.journal.lookup(&cell.name))
                    .cloned();
                match replay {
                    Some(CellOutcome::Ok(values)) => {
                        slots[i] = Some(CellResult::Replayed(values));
                    }
                    Some(CellOutcome::Failed { error, attempts }) => {
                        slots[i] = Some(CellResult::Failed(SfcError::CellFailed {
                            cell: cell.name.clone(),
                            error,
                            attempts,
                        }));
                    }
                    None => pending.push_back(i),
                }
            }
        }

        let mut cell_timings: Vec<Option<CellTiming>> = vec![None; n];
        if !pending.is_empty() {
            let workers = self.jobs.min(pending.len()).max(1);
            let ctx = BatchCtx {
                cells: &cells,
                queue: Mutex::new(pending),
                results: Mutex::new(slots),
                timings: Mutex::new(cell_timings),
                journal: &self.journal,
                chaos: &self.chaos,
                max_attempts: self.max_attempts,
                time_budget: self.time_budget,
                started: self.started,
            };
            if workers == 1 {
                ctx.worker_loop();
            } else {
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        let ctx = &ctx;
                        s.spawn(move || ctx.worker_loop());
                    }
                });
            }
            slots = ctx.results.into_inner().expect("results lock");
            cell_timings = ctx.timings.into_inner().expect("timings lock");
        }

        // Summary accounting in submission order, so partial-sweep reports
        // and the JSON envelope are deterministic at any thread count (cell
        // timings follow the same order, though their values never are).
        let mut out = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            let result = slot.expect("every submitted cell resolves");
            match &result {
                CellResult::Computed(_) => {
                    self.summary.computed += 1;
                    if let Some(timing) = cell_timings[i].take() {
                        self.summary.timings.push((cells[i].name.clone(), timing));
                    }
                }
                CellResult::Replayed(_) => self.summary.replayed += 1,
                CellResult::Failed(SfcError::CellFailed {
                    cell,
                    error,
                    attempts,
                }) => self.summary.failed.push(FailedCell {
                    cell: cell.clone(),
                    error: error.clone(),
                    attempts: *attempts,
                }),
                CellResult::Failed(other) => self.summary.failed.push(FailedCell {
                    cell: cells[i].name.clone(),
                    error: other.to_string(),
                    attempts: 0,
                }),
                CellResult::Skipped => self.summary.skipped.push(cells[i].name.clone()),
            }
            out.push(result);
        }
        let guard = self.journal.lock().expect("journal lock");
        if guard.as_ref().is_some_and(|s| s.degraded) {
            self.summary.journal_degraded = true;
        }
        drop(guard);
        out
    }

    /// Run (or replay) one named cell — a single-cell [`run_cells`]
    /// batch, kept for small ad-hoc sweeps and tests.
    ///
    /// The closure must be callable repeatedly (retries) and is executed
    /// under [`catch_unwind`](std::panic::catch_unwind); a panic is retried
    /// up to the configured bound, then recorded as a structured failure.
    /// The caller decides how to assemble returned values — a [`Skipped`]
    /// or [`Failed`](CellResult::Failed) cell simply contributes no samples.
    ///
    /// [`run_cells`]: SweepRunner::run_cells
    /// [`Skipped`]: CellResult::Skipped
    pub fn run_cell<F: Fn() -> Vec<f64> + Send + Sync>(&mut self, cell: &str, f: F) -> CellResult {
        self.run_cells(vec![BatchCell::new(cell, f)])
            .pop()
            .expect("one cell in, one result out")
    }

    /// Finish the sweep, returning the accounting.
    pub fn finish(self) -> SweepSummary {
        self.summary
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sfc_runner_{}_{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn plain_cells_compute() {
        let mut r = SweepRunner::ephemeral();
        let out = r.run_cell("a", || vec![1.0, 2.0]);
        assert_eq!(out, CellResult::Computed(vec![1.0, 2.0]));
        let summary = r.finish();
        assert_eq!(summary.computed, 1);
        assert!(summary.complete());
    }

    #[test]
    fn panicking_cell_is_retried_then_recorded() {
        let calls = AtomicU32::new(0);
        let mut r = SweepRunner::ephemeral();
        // Fails twice, succeeds on the bounded third attempt.
        let out = r.run_cell("flaky", || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            vec![9.0]
        });
        assert_eq!(out, CellResult::Computed(vec![9.0]));
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        // Fails on every attempt: structured failure, sweep continues.
        let out = r.run_cell("doomed", || panic!("hard failure"));
        match out {
            CellResult::Failed(SfcError::CellFailed {
                cell,
                error,
                attempts,
            }) => {
                assert_eq!(cell, "doomed");
                assert_eq!(error, "hard failure");
                assert_eq!(attempts, DEFAULT_MAX_ATTEMPTS);
            }
            other => panic!("unexpected {other:?}"),
        }
        let after = r.run_cell("after", || vec![1.0]);
        assert_eq!(after, CellResult::Computed(vec![1.0]));
        let summary = r.finish();
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.missing(), vec!["doomed".to_string()]);
    }

    #[test]
    fn chaos_once_retries_to_success() {
        let mut opts = RunnerOptions::new();
        opts.chaos = Some(ChaosInjector::new(&["t1".into()], false));
        let mut r = SweepRunner::new("chaos", &Value::Null, opts).unwrap();
        assert_eq!(r.run_cell("x/t0", || vec![1.0]), CellResult::Computed(vec![1.0]));
        // Sabotaged on attempt 0, clean on attempt 1.
        assert_eq!(r.run_cell("x/t1", || vec![2.0]), CellResult::Computed(vec![2.0]));
        assert!(r.finish().complete());
    }

    #[test]
    fn persistent_chaos_becomes_structured_failure() {
        let mut opts = RunnerOptions::new();
        opts.chaos = Some(ChaosInjector::new(&["t1".into()], true));
        let mut r = SweepRunner::new("chaos", &Value::Null, opts).unwrap();
        assert!(matches!(r.run_cell("x/t1", || vec![2.0]), CellResult::Failed(_)));
        assert_eq!(r.run_cell("x/t2", || vec![3.0]), CellResult::Computed(vec![3.0]));
        let summary = r.finish();
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.failed[0].error, "chaos injection");
    }

    #[test]
    fn zero_time_budget_skips_everything() {
        let mut opts = RunnerOptions::new();
        opts.time_budget = Some(Duration::ZERO);
        let mut r = SweepRunner::new("budget", &Value::Null, opts).unwrap();
        assert_eq!(r.run_cell("a", || vec![1.0]), CellResult::Skipped);
        assert_eq!(r.run_cell("b", || vec![2.0]), CellResult::Skipped);
        let summary = r.finish();
        assert_eq!(summary.computed, 0);
        assert_eq!(summary.skipped, vec!["a".to_string(), "b".to_string()]);
        assert!(!summary.complete());
    }

    #[test]
    fn journaled_cells_replay_bit_identically() {
        let path = temp_path("replay");
        std::fs::remove_file(&path).ok();
        let fingerprint = json!({ "seed": 7 });
        let values = vec![1.0 / 3.0, -0.0, 6.02e23];

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("sweep", &fingerprint, opts).unwrap();
        assert!(matches!(r.run_cell("c", || values.clone()), CellResult::Computed(_)));
        drop(r);

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("sweep", &fingerprint, opts).unwrap();
        assert_eq!(r.journaled(), 1);
        match r.run_cell("c", || panic!("must not recompute")) {
            CellResult::Replayed(back) => {
                for (a, b) in values.iter().zip(&back) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.finish().replayed, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journaled_failure_replays_without_rerun() {
        let path = temp_path("failure");
        std::fs::remove_file(&path).ok();
        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("sweep", &Value::Null, opts).unwrap();
        let _ = r.run_cell("bad", || panic!("deterministic bug"));
        drop(r);

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("sweep", &Value::Null, opts).unwrap();
        let out = r.run_cell("bad", || panic!("must not rerun"));
        match out {
            CellResult::Failed(SfcError::CellFailed { error, .. }) => {
                assert_eq!(error, "deterministic bug");
            }
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_results_keep_submission_order() {
        for jobs in [1usize, 8] {
            let mut opts = RunnerOptions::new();
            opts.jobs = jobs;
            let mut r = SweepRunner::new("batch", &Value::Null, opts).unwrap();
            let cells: Vec<BatchCell> = (0..20)
                .map(|i| BatchCell::new(format!("cell{i}"), move || vec![i as f64 * 1.5]))
                .collect();
            let results = r.run_cells(cells);
            assert_eq!(results.len(), 20);
            for (i, result) in results.iter().enumerate() {
                assert_eq!(result, &CellResult::Computed(vec![i as f64 * 1.5]), "cell {i}");
            }
            let summary = r.finish();
            assert_eq!(summary.computed, 20);
            assert!(summary.complete());
        }
    }

    #[test]
    fn batch_failures_and_chaos_match_serial_accounting() {
        let run = |jobs: usize| -> SweepSummary {
            let mut opts = RunnerOptions::new();
            opts.jobs = jobs;
            opts.chaos = Some(ChaosInjector::new(&["odd".into()], true));
            let mut r = SweepRunner::new("batch", &Value::Null, opts).unwrap();
            let cells: Vec<BatchCell> = (0..12)
                .map(|i| {
                    let tag = if i % 2 == 1 { "odd" } else { "even" };
                    BatchCell::new(format!("{tag}/c{i}"), move || vec![i as f64])
                })
                .collect();
            let _ = r.run_cells(cells);
            r.finish()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel);
        assert_eq!(serial.computed, 6);
        assert_eq!(serial.failed.len(), 6);
        // Failure list is in submission order regardless of thread count.
        assert_eq!(serial.failed[0].cell, "odd/c1");
        assert_eq!(serial.failed[5].cell, "odd/c11");
    }

    #[test]
    fn parallel_journal_replays_under_any_thread_count() {
        let path = temp_path("parallel_replay");
        std::fs::remove_file(&path).ok();
        let cells = |r: &mut SweepRunner| {
            let batch: Vec<BatchCell> = (0..16)
                .map(|i| BatchCell::new(format!("c{i}"), move || vec![i as f64 / 3.0]))
                .collect();
            r.run_cells(batch)
        };

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        opts.jobs = 8;
        let mut r = SweepRunner::new("par", &Value::Null, opts).unwrap();
        let first = cells(&mut r);
        drop(r);

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        opts.jobs = 1;
        let mut r = SweepRunner::new("par", &Value::Null, opts).unwrap();
        assert_eq!(r.journaled(), 16);
        let second = cells(&mut r);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.values().unwrap(), b.values().unwrap());
        }
        assert_eq!(r.finish().replayed, 16);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_write_failure_sets_degraded_flag() {
        let path = temp_path("degraded");
        std::fs::remove_file(&path).ok();
        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        // First record lands; the second fails but is below the death
        // bound, so the cell still returns its values.
        opts.journal_fail_after = Some(1);
        let mut r = SweepRunner::new("degraded", &Value::Null, opts).unwrap();
        assert!(matches!(r.run_cell("a", || vec![1.0]), CellResult::Computed(_)));
        assert!(matches!(r.run_cell("b", || vec![2.0]), CellResult::Computed(_)));
        let summary = r.finish();
        assert!(summary.journal_degraded);
        assert!(!summary.complete());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persistent_journal_failure_is_a_hard_error() {
        let path = temp_path("dead");
        std::fs::remove_file(&path).ok();
        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        opts.journal_fail_after = Some(0); // every write fails
        let mut r = SweepRunner::new("dead", &Value::Null, opts).unwrap();
        // The first MAX_JOURNAL_WRITE_FAILURES cells still compute (their
        // values are valid in this run) while the writer degrades...
        for i in 0..MAX_JOURNAL_WRITE_FAILURES {
            let name = format!("warm{i}");
            assert!(
                matches!(r.run_cell(&name, || vec![1.0]), CellResult::Computed(_)),
                "cell {i} should compute while the journal degrades"
            );
        }
        // ...after which the journal is dead and cells are refused hard.
        match r.run_cell("refused", || vec![1.0]) {
            CellResult::Failed(SfcError::JournalIo { reason, .. }) => {
                assert!(reason.contains("injected"), "reason: {reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let summary = r.finish();
        assert!(summary.journal_degraded);
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.failed[0].cell, "refused");
        assert_eq!(summary.failed[0].attempts, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn computed_cells_carry_timings_in_submission_order() {
        let mut opts = RunnerOptions::new();
        opts.jobs = 4;
        let mut r = SweepRunner::new("timed", &Value::Null, opts).unwrap();
        let cells: Vec<BatchCell> = (0..6)
            .map(|i| {
                BatchCell::new(format!("cell{i}"), move || {
                    crate::timing::phase("nfi", || {
                        std::thread::sleep(Duration::from_millis(1));
                    });
                    vec![i as f64]
                })
            })
            .collect();
        let _ = r.run_cells(cells);
        let summary = r.finish();
        assert_eq!(summary.timings.len(), 6);
        for (i, (name, timing)) in summary.timings.iter().enumerate() {
            assert_eq!(name, &format!("cell{i}"));
            assert!(timing.wall_ms >= 1.0, "{name}: wall {}", timing.wall_ms);
            let nfi = timing.phase_ms("nfi").expect("nfi phase recorded");
            assert!(nfi > 0.0 && nfi <= timing.wall_ms + 1e-6);
        }
    }

    #[test]
    fn replayed_and_failed_cells_have_no_timing() {
        let path = temp_path("timing_replay");
        std::fs::remove_file(&path).ok();
        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("timed", &Value::Null, opts).unwrap();
        assert!(matches!(r.run_cell("ok", || vec![1.0]), CellResult::Computed(_)));
        let _ = r.run_cell("bad", || panic!("boom"));
        assert_eq!(r.finish().timings.len(), 1);

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("timed", &Value::Null, opts).unwrap();
        assert!(matches!(r.run_cell("ok", || vec![1.0]), CellResult::Replayed(_)));
        let summary = r.finish();
        assert_eq!(summary.replayed, 1);
        assert!(summary.timings.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_equality_ignores_timings() {
        let mut a = SweepSummary {
            computed: 2,
            ..Default::default()
        };
        let b = SweepSummary {
            computed: 2,
            ..Default::default()
        };
        a.timings.push(("c".into(), CellTiming::default()));
        assert_eq!(a, b);
    }

    #[test]
    fn jobs_zero_resolves_to_available_parallelism() {
        let mut opts = RunnerOptions::new();
        opts.jobs = 0;
        let r = SweepRunner::new("auto", &Value::Null, opts).unwrap();
        assert!(r.jobs() >= 1);
        let mut opts = RunnerOptions::new();
        opts.jobs = 3;
        let r = SweepRunner::new("three", &Value::Null, opts).unwrap();
        assert_eq!(r.jobs(), 3);
    }
}
