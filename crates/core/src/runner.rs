//! Fault-tolerant sweep execution.
//!
//! A regeneration sweep is decomposed into named *cells* — one
//! `(configuration, trial)` unit each. [`SweepRunner::run_cell`] executes a
//! cell under [`std::panic::catch_unwind`] with bounded deterministic
//! retries, journals every completed cell (see [`crate::journal`]), and
//! replays journaled cells on restart so interrupted sweeps resume instead
//! of recomputing. A wall-clock `time_budget` stops *scheduling* new cells
//! once exhausted (the cell in flight finishes), and a deterministic chaos
//! hook injects panics into selected cells for fault-injection tests.
//!
//! Cells that still panic after the retries become structured
//! [`SfcError::CellFailed`] values in the [`SweepSummary`] — the sweep keeps
//! going and reports them at the end, rather than aborting a multi-hour run
//! on the last configuration.

use crate::error::SfcError;
use crate::journal::{CellOutcome, Journal};
use serde_json::Value;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::time::{Duration, Instant};

/// Default number of attempts per cell (1 initial + 2 retries).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Deterministic fault injection: cells whose name contains one of the
/// patterns panic before their closure runs.
#[derive(Debug, Clone, Default)]
pub struct ChaosInjector {
    /// Substring patterns of cell names to sabotage.
    pub patterns: Vec<String>,
    /// `false`: panic only on the first attempt (the retry succeeds).
    /// `true`: panic on every attempt (the cell becomes a structured
    /// failure).
    pub persistent: bool,
}

impl ChaosInjector {
    /// New injector over comma-separated substring patterns.
    pub fn new(patterns: &[String], persistent: bool) -> Self {
        ChaosInjector {
            patterns: patterns.to_vec(),
            persistent,
        }
    }

    fn should_panic(&self, cell: &str, attempt: u32) -> bool {
        (self.persistent || attempt == 0)
            && self.patterns.iter().any(|p| !p.is_empty() && cell.contains(p))
    }
}

/// Configuration of a [`SweepRunner`].
#[derive(Debug, Default)]
pub struct RunnerOptions {
    /// Journal file to append to / resume from (`--journal`).
    pub journal: Option<std::path::PathBuf>,
    /// Attempts per cell before recording a failure; 0 is treated as 1.
    pub max_attempts: u32,
    /// Wall-clock budget; once exceeded, no new cells start
    /// (`--time-budget`).
    pub time_budget: Option<Duration>,
    /// Fault injection for tests (`--chaos`).
    pub chaos: Option<ChaosInjector>,
}

impl RunnerOptions {
    /// Options with the default retry bound and everything else off.
    pub fn new() -> Self {
        RunnerOptions {
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            ..Default::default()
        }
    }
}

/// How one cell was resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum CellResult {
    /// Computed in this run (possibly after retries).
    Computed(Vec<f64>),
    /// Replayed from the journal without recomputation.
    Replayed(Vec<f64>),
    /// Panicked on every attempt; the sweep continues without it.
    Failed(SfcError),
    /// Not started: the time budget was exhausted.
    Skipped,
}

impl CellResult {
    /// The cell's values, if it completed (now or in a previous run).
    pub fn values(&self) -> Option<&[f64]> {
        match self {
            CellResult::Computed(v) | CellResult::Replayed(v) => Some(v),
            _ => None,
        }
    }
}

/// One failed cell, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCell {
    /// Cell name.
    pub cell: String,
    /// Captured panic message of the final attempt.
    pub error: String,
    /// Attempts made.
    pub attempts: u32,
}

/// End-of-sweep accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepSummary {
    /// Cells computed in this run.
    pub computed: usize,
    /// Cells replayed from the journal.
    pub replayed: usize,
    /// Cells that failed after retries (this run or a journaled one).
    pub failed: Vec<FailedCell>,
    /// Cells never started because the time budget ran out.
    pub skipped: Vec<String>,
}

impl SweepSummary {
    /// True when every scheduled cell completed.
    pub fn complete(&self) -> bool {
        self.failed.is_empty() && self.skipped.is_empty()
    }

    /// Names of all cells missing from the results (failed or skipped).
    pub fn missing(&self) -> Vec<String> {
        let mut out: Vec<String> = self.failed.iter().map(|f| f.cell.clone()).collect();
        out.extend(self.skipped.iter().cloned());
        out
    }
}

/// Executes sweep cells with journaling, retries, chaos and a time budget.
#[derive(Debug)]
pub struct SweepRunner {
    journal: Option<Journal>,
    max_attempts: u32,
    time_budget: Option<Duration>,
    chaos: Option<ChaosInjector>,
    started: Instant,
    summary: SweepSummary,
}

impl SweepRunner {
    /// Create a runner for the sweep `name` under the given configuration
    /// `fingerprint`. When `options.journal` is set, the journal is opened
    /// (resuming any completed cells); a journal written under a different
    /// name/fingerprint is rejected.
    pub fn new(name: &str, fingerprint: &Value, options: RunnerOptions) -> Result<Self, SfcError> {
        let journal = match &options.journal {
            Some(path) => Some(Journal::open(Path::new(path), name, fingerprint)?),
            None => None,
        };
        Ok(SweepRunner {
            journal,
            max_attempts: options.max_attempts.max(1),
            time_budget: options.time_budget,
            chaos: options.chaos,
            started: Instant::now(),
            summary: SweepSummary::default(),
        })
    }

    /// A runner with no journal, no budget and no chaos — plain bounded
    /// retry. Useful for tests and ad-hoc sweeps.
    pub fn ephemeral() -> Self {
        SweepRunner::new("ephemeral", &Value::Null, RunnerOptions::new())
            .expect("no journal to fail on")
    }

    /// Number of cells already present in the journal (0 without one).
    pub fn journaled(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.len())
    }

    /// True once the wall-clock budget is spent: no further cell will run.
    pub fn out_of_time(&self) -> bool {
        self.time_budget
            .is_some_and(|budget| self.started.elapsed() >= budget)
    }

    /// Run (or replay) one named cell.
    ///
    /// The closure must be callable repeatedly (retries) and is executed
    /// under [`catch_unwind`](std::panic::catch_unwind); a panic is retried
    /// up to the configured bound, then recorded as a structured failure.
    /// The caller decides how to assemble returned values — a [`Skipped`]
    /// or [`Failed`](CellResult::Failed) cell simply contributes no samples.
    pub fn run_cell<F: Fn() -> Vec<f64>>(&mut self, cell: &str, f: F) -> CellResult {
        if let Some(outcome) = self.journal.as_ref().and_then(|j| j.lookup(cell)).cloned() {
            return match outcome {
                CellOutcome::Ok(values) => {
                    self.summary.replayed += 1;
                    CellResult::Replayed(values)
                }
                CellOutcome::Failed { error, attempts } => {
                    self.fail(cell, error, attempts, false)
                }
            };
        }
        if self.out_of_time() {
            self.summary.skipped.push(cell.to_string());
            return CellResult::Skipped;
        }

        let mut last_error = String::new();
        for attempt in 0..self.max_attempts {
            let chaos_hit = self
                .chaos
                .as_ref()
                .is_some_and(|c| c.should_panic(cell, attempt));
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if chaos_hit {
                    panic!("chaos injection");
                }
                f()
            }));
            match result {
                Ok(values) => {
                    self.summary.computed += 1;
                    if let Some(j) = self.journal.as_mut() {
                        j.record(cell, CellOutcome::Ok(values.clone()))
                            .unwrap_or_else(|e| eprintln!("warning: {e}"));
                    }
                    return CellResult::Computed(values);
                }
                Err(payload) => last_error = panic_message(payload.as_ref()),
            }
        }
        self.fail(cell, last_error, self.max_attempts, true)
    }

    fn fail(&mut self, cell: &str, error: String, attempts: u32, journal_it: bool) -> CellResult {
        if journal_it {
            if let Some(j) = self.journal.as_mut() {
                j.record(
                    cell,
                    CellOutcome::Failed {
                        error: error.clone(),
                        attempts,
                    },
                )
                .unwrap_or_else(|e| eprintln!("warning: {e}"));
            }
        }
        self.summary.failed.push(FailedCell {
            cell: cell.to_string(),
            error: error.clone(),
            attempts,
        });
        CellResult::Failed(SfcError::CellFailed {
            cell: cell.to_string(),
            error,
            attempts,
        })
    }

    /// Finish the sweep, returning the accounting.
    pub fn finish(self) -> SweepSummary {
        self.summary
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sfc_runner_{}_{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn plain_cells_compute() {
        let mut r = SweepRunner::ephemeral();
        let out = r.run_cell("a", || vec![1.0, 2.0]);
        assert_eq!(out, CellResult::Computed(vec![1.0, 2.0]));
        let summary = r.finish();
        assert_eq!(summary.computed, 1);
        assert!(summary.complete());
    }

    #[test]
    fn panicking_cell_is_retried_then_recorded() {
        let calls = AtomicU32::new(0);
        let mut r = SweepRunner::ephemeral();
        // Fails twice, succeeds on the bounded third attempt.
        let out = r.run_cell("flaky", || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            vec![9.0]
        });
        assert_eq!(out, CellResult::Computed(vec![9.0]));
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        // Fails on every attempt: structured failure, sweep continues.
        let out = r.run_cell("doomed", || panic!("hard failure"));
        match out {
            CellResult::Failed(SfcError::CellFailed {
                cell,
                error,
                attempts,
            }) => {
                assert_eq!(cell, "doomed");
                assert_eq!(error, "hard failure");
                assert_eq!(attempts, DEFAULT_MAX_ATTEMPTS);
            }
            other => panic!("unexpected {other:?}"),
        }
        let after = r.run_cell("after", || vec![1.0]);
        assert_eq!(after, CellResult::Computed(vec![1.0]));
        let summary = r.finish();
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.missing(), vec!["doomed".to_string()]);
    }

    #[test]
    fn chaos_once_retries_to_success() {
        let mut opts = RunnerOptions::new();
        opts.chaos = Some(ChaosInjector::new(&["t1".into()], false));
        let mut r = SweepRunner::new("chaos", &Value::Null, opts).unwrap();
        assert_eq!(r.run_cell("x/t0", || vec![1.0]), CellResult::Computed(vec![1.0]));
        // Sabotaged on attempt 0, clean on attempt 1.
        assert_eq!(r.run_cell("x/t1", || vec![2.0]), CellResult::Computed(vec![2.0]));
        assert!(r.finish().complete());
    }

    #[test]
    fn persistent_chaos_becomes_structured_failure() {
        let mut opts = RunnerOptions::new();
        opts.chaos = Some(ChaosInjector::new(&["t1".into()], true));
        let mut r = SweepRunner::new("chaos", &Value::Null, opts).unwrap();
        assert!(matches!(r.run_cell("x/t1", || vec![2.0]), CellResult::Failed(_)));
        assert_eq!(r.run_cell("x/t2", || vec![3.0]), CellResult::Computed(vec![3.0]));
        let summary = r.finish();
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.failed[0].error, "chaos injection");
    }

    #[test]
    fn zero_time_budget_skips_everything() {
        let mut opts = RunnerOptions::new();
        opts.time_budget = Some(Duration::ZERO);
        let mut r = SweepRunner::new("budget", &Value::Null, opts).unwrap();
        assert_eq!(r.run_cell("a", || vec![1.0]), CellResult::Skipped);
        assert_eq!(r.run_cell("b", || vec![2.0]), CellResult::Skipped);
        let summary = r.finish();
        assert_eq!(summary.computed, 0);
        assert_eq!(summary.skipped, vec!["a".to_string(), "b".to_string()]);
        assert!(!summary.complete());
    }

    #[test]
    fn journaled_cells_replay_bit_identically() {
        let path = temp_path("replay");
        std::fs::remove_file(&path).ok();
        let fingerprint = json!({ "seed": 7 });
        let values = vec![1.0 / 3.0, -0.0, 6.02e23];

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("sweep", &fingerprint, opts).unwrap();
        assert!(matches!(r.run_cell("c", || values.clone()), CellResult::Computed(_)));
        drop(r);

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("sweep", &fingerprint, opts).unwrap();
        assert_eq!(r.journaled(), 1);
        match r.run_cell("c", || panic!("must not recompute")) {
            CellResult::Replayed(back) => {
                for (a, b) in values.iter().zip(&back) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.finish().replayed, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journaled_failure_replays_without_rerun() {
        let path = temp_path("failure");
        std::fs::remove_file(&path).ok();
        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("sweep", &Value::Null, opts).unwrap();
        let _ = r.run_cell("bad", || panic!("deterministic bug"));
        drop(r);

        let mut opts = RunnerOptions::new();
        opts.journal = Some(path.clone());
        let mut r = SweepRunner::new("sweep", &Value::Null, opts).unwrap();
        let out = r.run_cell("bad", || panic!("must not rerun"));
        match out {
            CellResult::Failed(SfcError::CellFailed { error, .. }) => {
                assert_eq!(error, "deterministic bug");
            }
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
