//! Far-field interaction (FFI) ACD — Sections III–IV of the paper.
//!
//! The far field of one FMM time step induces three communication families:
//!
//! - **Interpolation**: upward accumulation. For every occupied cell at
//!   every level, the cell's owner sends its accumulated value to the owner
//!   of the parent cell. Following the paper's convention, the *owner* of a
//!   cell (quadrant) is the lowest-ranked processor holding a particle in it
//!   — with SFC-contiguous chunks this is also the processor of the lowest
//!   indexed particle.
//! - **Anterpolation**: downward accumulation — the same parent↔child pairs
//!   traversed in the opposite direction.
//! - **Interaction lists**: at every level, every occupied cell exchanges
//!   with every *occupied* cell of its interaction list (children of the
//!   parent's neighbors that are not adjacent to the cell; see
//!   [`sfc_quadtree::interaction`]).
//!
//! The ACD over the far field is the mean hop distance across all three
//! families; the per-family sums are reported separately so experiments can
//! break the total down.

use crate::assignment::Assignment;
use crate::error::SfcError;
use crate::machine::Machine;
use rayon::prelude::*;
use sfc_curves::morton;
use sfc_particles::CellMap;
use sfc_quadtree::{interaction_list, Cell};

/// Outcome of a far-field ACD computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FfiResult {
    /// Hop-distance sum of interpolation (upward) messages.
    pub interp_distance: u64,
    /// Number of interpolation messages.
    pub interp_comms: u64,
    /// Hop-distance sum of anterpolation (downward) messages.
    pub anterp_distance: u64,
    /// Number of anterpolation messages.
    pub anterp_comms: u64,
    /// Hop-distance sum of interaction-list exchanges (directed).
    pub ilist_distance: u64,
    /// Number of interaction-list exchanges (directed).
    pub ilist_comms: u64,
}

impl FfiResult {
    /// Total hop distance over all far-field communications.
    pub fn total_distance(&self) -> u64 {
        self.interp_distance + self.anterp_distance + self.ilist_distance
    }

    /// Total number of far-field communications.
    pub fn num_comms(&self) -> u64 {
        self.interp_comms + self.anterp_comms + self.ilist_comms
    }

    /// The far-field Average Communicated Distance.
    pub fn acd(&self) -> f64 {
        let n = self.num_comms();
        if n == 0 {
            0.0
        } else {
            self.total_distance() as f64 / n as f64
        }
    }

    /// ACD of the tree (interpolation + anterpolation) component alone.
    pub fn tree_acd(&self) -> f64 {
        let n = self.interp_comms + self.anterp_comms;
        if n == 0 {
            0.0
        } else {
            (self.interp_distance + self.anterp_distance) as f64 / n as f64
        }
    }

    /// ACD of the interaction-list component alone.
    pub fn ilist_acd(&self) -> f64 {
        if self.ilist_comms == 0 {
            0.0
        } else {
            self.ilist_distance as f64 / self.ilist_comms as f64
        }
    }
}

/// The per-level occupancy/ownership index the far-field model walks: for
/// each level `0 ..= k`, the occupied cells (by Morton code) and the lowest
/// rank holding a particle in each.
pub struct OwnerTree {
    /// `levels[l]` maps level-`l` Morton codes to owner ranks.
    levels: Vec<CellMap>,
    /// `entries[l]` holds the same mapping as `(code, rank)` pairs sorted by
    /// code — built once here so sweeps can borrow a slice per level instead
    /// of re-collecting the hash table into a fresh `Vec` per call.
    entries: Vec<Vec<(u64, u32)>>,
}

impl OwnerTree {
    /// Build the tree for an assignment.
    pub fn build(asg: &Assignment) -> Self {
        let mut tree = OwnerTree {
            levels: Vec::new(),
            entries: Vec::new(),
        };
        tree.rebuild(asg);
        tree
    }

    /// Rebuild the tree for a new assignment *in place*, reusing every
    /// allocation (entry vectors and hash tables) from the previous build.
    /// Sweeps that index one assignment per trial use this as scratch
    /// instead of constructing a tree per trial.
    pub fn rebuild(&mut self, asg: &Assignment) {
        let k = asg.grid_order() as usize;
        let n = asg.particles().len();
        self.levels.resize_with(k + 1, || CellMap::with_capacity(0));
        self.entries.resize_with(k + 1, Vec::new);
        // Finest level: one entry per particle, min rank per cell. Sorting
        // by (code, rank) makes the first entry of each code run the owner.
        let finest = &mut self.entries[k];
        finest.clear();
        finest.reserve(n);
        for (i, p) in asg.particles().iter().enumerate() {
            finest.push((morton::encode(p.x, p.y), asg.rank_of_index(i)));
        }
        finest.sort_unstable();
        finest.dedup_by(|a, b| a.0 == b.0);
        // Coarser levels, reducing by parent code. Parent codes of a sorted
        // code sequence are themselves sorted, so each level is one linear
        // min-rank fold over runs — no hashing and no re-sorting.
        for level in (0..k).rev() {
            let (dst_part, src_part) = self.entries.split_at_mut(level + 1);
            let dst = &mut dst_part[level];
            let src = &src_part[0];
            dst.clear();
            for &(code, rank) in src.iter() {
                let parent = code >> 2;
                match dst.last_mut() {
                    Some(last) if last.0 == parent => last.1 = last.1.min(rank),
                    _ => dst.push((parent, rank)),
                }
            }
        }
        // Mirror each level into its hash table for point lookups
        // (`owner`), clearing and reusing the previous tables.
        for level in 0..=k {
            let map = &mut self.levels[level];
            map.reset(self.entries[level].len());
            for &(code, rank) in &self.entries[level] {
                map.insert_first(code, rank);
            }
        }
    }

    /// Number of levels (grid order + 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Owner of the given cell, or `None` if it holds no particle.
    pub fn owner(&self, cell: Cell) -> Option<u32> {
        self.levels[cell.level as usize].get(cell.code())
    }

    /// Occupied cells at a level, as `(morton code, owner rank)` pairs
    /// sorted by code. Borrowed from the tree — enumerating a level
    /// allocates nothing.
    pub fn level_entries(&self, level: u32) -> &[(u64, u32)] {
        &self.entries[level as usize]
    }

    /// Number of occupied cells at a level.
    pub fn level_len(&self, level: u32) -> usize {
        self.entries[level as usize].len()
    }
}

/// Compute the far-field ACD for an assignment on a machine. A machine with
/// fewer ranks than the assignment addresses is a typed [`SfcError`].
pub fn ffi_acd(asg: &Assignment, machine: &Machine) -> Result<FfiResult, SfcError> {
    let tree = OwnerTree::build(asg);
    ffi_acd_with_tree(asg, machine, &tree)
}

/// Compute the far-field ACD with a prebuilt [`OwnerTree`] (for callers that
/// evaluate several machines against one assignment).
///
/// A machine with fewer ranks than the assignment addresses is a typed
/// [`SfcError`] instead of an abort.
pub fn ffi_acd_with_tree(
    asg: &Assignment,
    machine: &Machine,
    tree: &OwnerTree,
) -> Result<FfiResult, SfcError> {
    machine.check_assignment(asg)?;
    let k = asg.grid_order();
    let mut result = FfiResult::default();

    // Interpolation / anterpolation: every occupied cell below the root
    // exchanges with its parent's owner. The sender's oracle row is not
    // worth hoisting here — each cell makes exactly one exchange — but the
    // single lookups still ride the dense table via `Machine::distance`.
    for level in 1..=k {
        let entries = tree.level_entries(level);
        let parents = &tree.levels[(level - 1) as usize];
        let (dist, count): (u64, u64) = entries
            .par_iter()
            .map(|&(code, rank)| {
                let parent_owner = parents
                    .get(code >> 2)
                    .expect("parent of an occupied cell is occupied");
                (machine.distance(rank, parent_owner), 1u64)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        result.interp_distance += dist;
        result.interp_comms += count;
    }
    // Downward accumulation retraces the same edges.
    result.anterp_distance = result.interp_distance;
    result.anterp_comms = result.interp_comms;

    // Interaction lists: levels 2 ..= k (level 1 lists are empty).
    for level in 2..=k {
        let entries = tree.level_entries(level);
        let level_map = &tree.levels[level as usize];
        let (dist, count): (u64, u64) = entries
            .par_iter()
            .map(|&(code, rank)| {
                let cell = Cell::from_code(level, code);
                // Hoist the per-cell invariant: one oracle row borrow
                // covers the up-to-27 interaction partners of the cell.
                let row = machine.distance_row(rank);
                let mut d = 0u64;
                let mut c = 0u64;
                for other_cell in interaction_list(cell) {
                    if let Some(other) = level_map.get(other_cell.code()) {
                        d += match row {
                            Some(row) => u64::from(row[other as usize]),
                            None => machine.distance(rank, other),
                        };
                        c += 1;
                    }
                }
                (d, c)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        result.ilist_distance += dist;
        result.ilist_comms += count;
    }

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_curves::{CurveKind, Point2};
    use sfc_topology::TopologyKind;

    fn pts(coords: &[(u32, u32)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    #[test]
    fn owner_tree_propagates_minimum_rank() {
        // Four particles on a 4x4 grid, one per rank, Z-ordered.
        let particles = pts(&[(0, 0), (3, 0), (0, 3), (3, 3)]);
        let asg = Assignment::new(&particles, 2, CurveKind::ZCurve, 4);
        let tree = OwnerTree::build(&asg);
        assert_eq!(tree.num_levels(), 3);
        // Root owned by rank 0.
        assert_eq!(tree.owner(Cell::ROOT), Some(0));
        // Each level-1 quadrant owned by its single particle's rank
        // (Z order: LL=0, LR=1, UL=2, UR=3).
        assert_eq!(tree.owner(Cell::new(1, 0, 0)), Some(0));
        assert_eq!(tree.owner(Cell::new(1, 1, 0)), Some(1));
        assert_eq!(tree.owner(Cell::new(1, 0, 1)), Some(2));
        assert_eq!(tree.owner(Cell::new(1, 1, 1)), Some(3));
        // Empty cells have no owner.
        assert_eq!(tree.owner(Cell::new(2, 1, 1)), None);
    }

    #[test]
    fn single_particle_has_tree_only_traffic_at_zero_distance() {
        let particles = pts(&[(2, 2)]);
        let asg = Assignment::new(&particles, 3, CurveKind::Hilbert, 1);
        let machine = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        let res = ffi_acd(&asg, &machine).unwrap();
        // One occupied cell per level 1..=3: 3 interpolation + 3
        // anterpolation messages, all rank-local.
        assert_eq!(res.interp_comms, 3);
        assert_eq!(res.anterp_comms, 3);
        assert_eq!(res.total_distance(), 0);
        assert_eq!(res.ilist_comms, 0);
        assert_eq!(res.acd(), 0.0);
    }

    #[test]
    fn interpolation_counts_match_occupied_cells() {
        let particles = pts(&[(0, 0), (1, 0), (7, 7), (6, 6)]);
        let asg = Assignment::new(&particles, 3, CurveKind::ZCurve, 4);
        let tree = OwnerTree::build(&asg);
        let machine = Machine::grid(TopologyKind::Mesh, 64, CurveKind::ZCurve);
        let res = ffi_acd_with_tree(&asg, &machine, &tree).unwrap();
        let expected: u64 = (1..=3).map(|l| tree.level_len(l) as u64).sum();
        assert_eq!(res.interp_comms, expected);
        assert_eq!(res.anterp_comms, expected);
        assert_eq!(res.interp_distance, res.anterp_distance);
    }

    #[test]
    fn well_separated_pairs_generate_ilist_traffic() {
        // Two particles whose level-3 cells are in each other's interaction
        // lists: (0,0) and (3,0) on an 8x8 grid — parents (0,0) and (1,0)
        // at level 2 are adjacent, cells are 3 apart (Chebyshev) at level 3.
        let particles = pts(&[(0, 0), (3, 0)]);
        let asg = Assignment::new(&particles, 3, CurveKind::RowMajor, 2);
        let machine = Machine::grid(TopologyKind::Mesh, 64, CurveKind::RowMajor);
        let res = ffi_acd(&asg, &machine).unwrap();
        // Directed: 2 exchanges at level 3 only.
        assert_eq!(res.ilist_comms, 2);
        assert!(res.ilist_distance > 0);
    }

    #[test]
    fn adjacent_cells_never_appear_in_ilists() {
        let particles = pts(&[(0, 0), (1, 0)]);
        let asg = Assignment::new(&particles, 3, CurveKind::Hilbert, 2);
        let machine = Machine::grid(TopologyKind::Mesh, 64, CurveKind::Hilbert);
        let res = ffi_acd(&asg, &machine).unwrap();
        assert_eq!(res.ilist_comms, 0);
    }

    #[test]
    fn ilist_traffic_is_directed_and_symmetric() {
        let particles = pts(&[(0, 0), (3, 3), (5, 5), (7, 0)]);
        let asg = Assignment::new(&particles, 3, CurveKind::Gray, 4);
        let machine = Machine::grid(TopologyKind::Torus, 64, CurveKind::Gray);
        let res = ffi_acd(&asg, &machine).unwrap();
        assert_eq!(res.ilist_comms % 2, 0);
        assert_eq!(res.ilist_distance % 2, 0);
    }

    #[test]
    fn acd_breakdown_sums_to_total() {
        let particles = pts(&[(0, 0), (2, 5), (7, 1), (4, 4), (6, 7)]);
        let asg = Assignment::new(&particles, 3, CurveKind::Hilbert, 4);
        let machine = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        let res = ffi_acd(&asg, &machine).unwrap();
        assert_eq!(
            res.total_distance(),
            res.interp_distance + res.anterp_distance + res.ilist_distance
        );
        assert_eq!(
            res.num_comms(),
            res.interp_comms + res.anterp_comms + res.ilist_comms
        );
        let weighted = res.tree_acd() * (res.interp_comms + res.anterp_comms) as f64
            + res.ilist_acd() * res.ilist_comms as f64;
        assert!((weighted / res.num_comms() as f64 - res.acd()).abs() < 1e-9);
    }

    #[test]
    fn prebuilt_tree_matches_direct_call() {
        let particles = pts(&[(0, 0), (2, 5), (7, 1), (4, 4)]);
        let asg = Assignment::new(&particles, 3, CurveKind::ZCurve, 4);
        let machine = Machine::grid(TopologyKind::Mesh, 64, CurveKind::ZCurve);
        let tree = OwnerTree::build(&asg);
        assert_eq!(ffi_acd(&asg, &machine), ffi_acd_with_tree(&asg, &machine, &tree));
    }

    #[test]
    fn undersized_machine_is_a_typed_error() {
        use crate::error::SfcError;
        let particles = pts(&[(0, 0), (7, 7)]);
        let asg = Assignment::new(&particles, 3, CurveKind::Hilbert, 64);
        let small = Machine::grid(TopologyKind::Mesh, 16, CurveKind::Hilbert);
        match ffi_acd(&asg, &small) {
            Err(SfcError::MachineTooSmall {
                machine_ranks: 16,
                assignment_ranks: 64,
            }) => {}
            other => panic!("expected MachineTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn oracle_on_and_off_agree() {
        let particles = pts(&[(0, 0), (3, 3), (5, 5), (7, 0), (2, 6), (6, 2)]);
        let asg = Assignment::new(&particles, 3, CurveKind::Hilbert, 16);
        let cached = Machine::grid(TopologyKind::Torus, 16, CurveKind::Hilbert);
        let plain = Machine::grid(TopologyKind::Torus, 16, CurveKind::Hilbert).without_oracle();
        assert_eq!(ffi_acd(&asg, &cached), ffi_acd(&asg, &plain));
    }

    #[test]
    fn dense_grid_on_and_off_agree() {
        let particles = pts(&[(0, 0), (3, 3), (5, 5), (7, 0), (2, 6), (6, 2), (1, 7)]);
        let dense = Assignment::new(&particles, 3, CurveKind::Gray, 16);
        let sparse = dense.clone().without_dense_grid();
        let machine = Machine::grid(TopologyKind::Mesh, 16, CurveKind::Gray);
        assert_eq!(ffi_acd(&dense, &machine), ffi_acd(&sparse, &machine));
    }

    #[test]
    fn level_entries_are_sorted_borrowed_slices() {
        let particles = pts(&[(5, 5), (0, 0), (7, 1), (2, 6), (3, 3)]);
        let asg = Assignment::new(&particles, 3, CurveKind::Hilbert, 4);
        let tree = OwnerTree::build(&asg);
        for level in 0..=3 {
            let entries = tree.level_entries(level);
            assert_eq!(entries.len(), tree.level_len(level));
            assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "level {level}");
            for &(code, rank) in entries {
                assert_eq!(tree.owner(Cell::from_code(level, code)), Some(rank));
            }
            // Borrowed, not re-collected: repeated calls hand out the same
            // memory.
            assert_eq!(entries.as_ptr(), tree.level_entries(level).as_ptr());
        }
    }

    #[test]
    fn rebuild_reuses_scratch_allocations() {
        let particles = pts(&[(0, 0), (2, 5), (7, 1), (4, 4)]);
        let asg = Assignment::new(&particles, 3, CurveKind::ZCurve, 4);
        let mut tree = OwnerTree::build(&asg);
        let reference = ffi_acd(
            &asg,
            &Machine::grid(TopologyKind::Mesh, 64, CurveKind::ZCurve),
        );
        let before: Vec<*const (u64, u32)> =
            (0..=3).map(|l| tree.level_entries(l).as_ptr()).collect();
        tree.rebuild(&asg);
        let after: Vec<*const (u64, u32)> =
            (0..=3).map(|l| tree.level_entries(l).as_ptr()).collect();
        assert_eq!(before, after, "rebuild must reuse the entry buffers");
        let machine = Machine::grid(TopologyKind::Mesh, 64, CurveKind::ZCurve);
        assert_eq!(reference, ffi_acd_with_tree(&asg, &machine, &tree));
    }
}
