//! The ACD model in three dimensions — the paper's future-work item (ii)
//! carried out in full: particle ordering by 3-D SFCs, processor ranking on
//! 3-D interconnects, and the near-/far-field FMM communication replayed on
//! an octree.
//!
//! The structure mirrors the 2-D model ([`crate::assignment`],
//! [`crate::machine`], [`crate::nfi`], [`crate::ffi`]) with the dimensional
//! constants swapped: Chebyshev near fields have up to 26 neighbors,
//! interaction lists up to 189 entries, and the upward/downward sweeps run
//! over an octree.

use rayon::prelude::*;
use sfc_curves::curve3d::{Curve3dKind, Point3};
use sfc_particles::CellMap;
use sfc_quadtree::cell3d::{interaction_list_3d, Cell3};
use sfc_topology::{Hypercube, Mesh3d, Topology, Torus3d};

/// 3-D interconnects supported by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology3Kind {
    /// Cubic 3-D mesh; ranks placed by the processor-order 3-D SFC.
    Mesh3d,
    /// Cubic 3-D torus; ranks placed by the processor-order 3-D SFC.
    Torus3d,
    /// Binary hypercube with canonical (identity) ranking.
    Hypercube,
}

impl Topology3Kind {
    /// The three topologies of the 3-D study.
    pub const ALL: [Topology3Kind; 3] = [
        Topology3Kind::Mesh3d,
        Topology3Kind::Torus3d,
        Topology3Kind::Hypercube,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Topology3Kind::Mesh3d => "Mesh3D",
            Topology3Kind::Torus3d => "Torus3D",
            Topology3Kind::Hypercube => "Hypercube",
        }
    }
}

/// A 3-D machine: `p` ranks on a 3-D network, with the rank→node table
/// resolved once at construction.
pub struct Machine3 {
    topo: Box<dyn Topology>,
    node_of_rank: Vec<u64>,
}

impl Machine3 {
    /// Build a machine with `num_ranks` processors. For the cubic grids
    /// `num_ranks` must be a power of eight; ranks are placed along
    /// `processor_curve`. The hypercube requires a power of two and ignores
    /// the curve.
    pub fn new(kind: Topology3Kind, num_ranks: u64, processor_curve: Curve3dKind) -> Self {
        match kind {
            Topology3Kind::Hypercube => {
                let topo = Hypercube::with_nodes(num_ranks);
                Machine3 {
                    topo: Box::new(topo),
                    node_of_rank: (0..num_ranks).collect(),
                }
            }
            Topology3Kind::Mesh3d | Topology3Kind::Torus3d => {
                assert!(
                    num_ranks.is_power_of_two() && num_ranks.trailing_zeros().is_multiple_of(3),
                    "cubic grids need a power-of-eight processor count, got {num_ranks}"
                );
                let order = num_ranks.trailing_zeros() / 3;
                let side = 1u64 << order;
                let curve = processor_curve.curve(order.max(1));
                let node_of_rank: Vec<u64> = if order == 0 {
                    vec![0]
                } else {
                    (0..num_ranks)
                        .map(|r| {
                            let p = curve.point(r);
                            (p.z as u64) * side * side + (p.y as u64) * side + p.x as u64
                        })
                        .collect()
                };
                let topo: Box<dyn Topology> = match kind {
                    Topology3Kind::Mesh3d => Box::new(Mesh3d::new(side, side, side)),
                    _ => Box::new(Torus3d::new(side, side, side)),
                };
                Machine3 { topo, node_of_rank }
            }
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u64 {
        self.node_of_rank.len() as u64
    }

    /// The underlying topology.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Hop distance between two ranks' processors.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u64 {
        self.topo.distance(
            self.node_of_rank[a as usize],
            self.node_of_rank[b as usize],
        )
    }
}

/// Particles ordered by a 3-D SFC and distributed in consecutive chunks.
pub struct Assignment3 {
    grid_order: u32,
    chunk: usize,
    particles: Vec<Point3>,
    cell_rank: CellMap,
}

impl Assignment3 {
    /// Order `particles` (distinct cells of a `2^grid_order` cube) by
    /// `curve` and split them over `num_ranks` processors.
    pub fn new(
        particles: &[Point3],
        grid_order: u32,
        curve: Curve3dKind,
        num_ranks: u64,
    ) -> Self {
        assert!(num_ranks >= 1 && !particles.is_empty());
        let c = curve.curve(grid_order);
        let mut sorted: Vec<(u64, Point3)> =
            particles.iter().map(|&p| (c.index(p), p)).collect();
        sorted.sort_unstable_by_key(|&(idx, _)| idx);
        let chunk = sorted.len().div_ceil(num_ranks as usize);
        let mut cell_rank = CellMap::with_capacity(sorted.len());
        let mut ordered = Vec::with_capacity(sorted.len());
        for (i, &(_, p)) in sorted.iter().enumerate() {
            let prev = cell_rank.insert_first(
                sfc_curves::curve3d::morton3_encode(p.x, p.y, p.z),
                (i / chunk) as u32,
            );
            assert!(prev.is_none(), "duplicate particle cell {p:?}");
            ordered.push(p);
        }
        Assignment3 {
            grid_order,
            chunk,
            particles: ordered,
            cell_rank,
        }
    }

    /// Grid order `k` of the cube.
    pub fn grid_order(&self) -> u32 {
        self.grid_order
    }

    /// The particles in curve order.
    pub fn particles(&self) -> &[Point3] {
        &self.particles
    }

    /// Rank of the `i`-th particle in curve order.
    #[inline]
    pub fn rank_of_index(&self, i: usize) -> u32 {
        (i / self.chunk) as u32
    }

    /// Rank owning the particle in a cell, if occupied.
    #[inline]
    pub fn rank_of_cell(&self, x: u32, y: u32, z: u32) -> Option<u32> {
        self.cell_rank
            .get(sfc_curves::curve3d::morton3_encode(x, y, z))
    }
}

/// Near-field ACD in 3-D: every particle exchanges with all particles in its
/// Chebyshev ball of the given radius.
pub fn nfi_acd_3d(asg: &Assignment3, machine: &Machine3, radius: u32) -> crate::nfi::NfiResult {
    assert!(radius >= 1);
    let side = 1i64 << asg.grid_order();
    let r = radius as i64;
    let mut offsets = Vec::new();
    for dz in -r..=r {
        for dy in -r..=r {
            for dx in -r..=r {
                if dx != 0 || dy != 0 || dz != 0 {
                    offsets.push((dx, dy, dz));
                }
            }
        }
    }
    asg.particles()
        .par_iter()
        .enumerate()
        .fold(crate::nfi::NfiResult::default, |mut acc, (i, p)| {
            let rank = asg.rank_of_index(i);
            for &(dx, dy, dz) in &offsets {
                let nx = p.x as i64 + dx;
                let ny = p.y as i64 + dy;
                let nz = p.z as i64 + dz;
                if nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side {
                    continue;
                }
                if let Some(other) = asg.rank_of_cell(nx as u32, ny as u32, nz as u32) {
                    acc.num_comms += 1;
                    if other == rank {
                        acc.local_comms += 1;
                    } else {
                        acc.total_distance += machine.distance(rank, other);
                    }
                }
            }
            acc
        })
        .reduce(crate::nfi::NfiResult::default, crate::nfi::NfiResult::merge)
}

/// Far-field ACD in 3-D: octree interpolation/anterpolation plus the 3-D
/// interaction lists.
pub fn ffi_acd_3d(asg: &Assignment3, machine: &Machine3) -> crate::ffi::FfiResult {
    let k = asg.grid_order();
    // Per-level owner maps (min rank per occupied cell).
    let mut levels: Vec<CellMap> = Vec::with_capacity(k as usize + 1);
    let mut finest = CellMap::with_capacity(asg.particles().len());
    for (i, p) in asg.particles().iter().enumerate() {
        finest.insert_min(
            sfc_curves::curve3d::morton3_encode(p.x, p.y, p.z),
            asg.rank_of_index(i),
        );
    }
    levels.push(finest);
    for _ in 0..k {
        let prev = levels.last().unwrap();
        let mut coarser = CellMap::with_capacity(prev.len());
        for (code, rank) in prev.iter() {
            coarser.insert_min(code >> 3, rank);
        }
        levels.push(coarser);
    }
    levels.reverse();

    let mut result = crate::ffi::FfiResult::default();
    for level in 1..=k {
        let entries: Vec<(u64, u32)> = levels[level as usize].iter().collect();
        let parent_map = &levels[(level - 1) as usize];
        let (dist, count): (u64, u64) = entries
            .par_iter()
            .map(|&(code, rank)| {
                let parent_owner = parent_map.get(code >> 3).expect("occupied parent");
                (machine.distance(rank, parent_owner), 1u64)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        result.interp_distance += dist;
        result.interp_comms += count;
    }
    result.anterp_distance = result.interp_distance;
    result.anterp_comms = result.interp_comms;

    for level in 2..=k {
        let level_map = &levels[level as usize];
        let entries: Vec<(u64, u32)> = level_map.iter().collect();
        let (dist, count): (u64, u64) = entries
            .par_iter()
            .map(|&(code, rank)| {
                let cell = Cell3::from_code(level, code);
                let mut d = 0u64;
                let mut c = 0u64;
                for other_cell in interaction_list_3d(cell) {
                    if let Some(other) = level_map.get(other_cell.code()) {
                        d += machine.distance(rank, other);
                        c += 1;
                    }
                }
                (d, c)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        result.ilist_distance += dist;
        result.ilist_comms += count;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_particles::sampler3d::sample3d;
    use sfc_particles::Distribution;

    fn setup(
        curve: Curve3dKind,
        topo: Topology3Kind,
    ) -> (Assignment3, Machine3) {
        let particles = sample3d(Distribution::uniform(), 5, 2000, 77);
        let asg = Assignment3::new(&particles, 5, curve, 512);
        let machine = Machine3::new(topo, 512, curve);
        (asg, machine)
    }

    #[test]
    fn machine3_curve_placement_unit_steps() {
        let m = Machine3::new(Topology3Kind::Torus3d, 512, Curve3dKind::Hilbert);
        for r in 0..511u32 {
            assert_eq!(m.distance(r, r + 1), 1, "rank {r}");
        }
    }

    #[test]
    fn machine3_hypercube_hamming() {
        let m = Machine3::new(Topology3Kind::Hypercube, 512, Curve3dKind::Hilbert);
        assert_eq!(m.distance(0, 511), 9);
    }

    #[test]
    #[should_panic(expected = "power-of-eight")]
    fn non_cubic_count_rejected() {
        let _ = Machine3::new(Topology3Kind::Mesh3d, 256, Curve3dKind::Hilbert);
    }

    #[test]
    fn acd_bounded_by_diameter_3d() {
        for curve in Curve3dKind::ALL {
            for topo in Topology3Kind::ALL {
                let (asg, machine) = setup(curve, topo);
                let diameter = machine.topology().diameter() as f64;
                let nfi = nfi_acd_3d(&asg, &machine, 1);
                let ffi = ffi_acd_3d(&asg, &machine);
                assert!(nfi.acd() <= diameter, "{topo:?}/{curve:?}");
                assert!(ffi.acd() <= diameter, "{topo:?}/{curve:?}");
                assert!(nfi.num_comms > 0);
                assert!(ffi.num_comms() > 0);
            }
        }
    }

    #[test]
    fn paper_ordering_persists_in_3d() {
        // The headline 2-D ACD finding carried to 3-D: Hilbert beats
        // row-major by a wide margin on the torus, for both models.
        let (h_asg, h_m) = setup(Curve3dKind::Hilbert, Topology3Kind::Torus3d);
        let (r_asg, r_m) = setup(Curve3dKind::RowMajor, Topology3Kind::Torus3d);
        let h_nfi = nfi_acd_3d(&h_asg, &h_m, 1).acd();
        let r_nfi = nfi_acd_3d(&r_asg, &r_m, 1).acd();
        assert!(
            h_nfi < r_nfi,
            "3-D NFI: Hilbert {h_nfi:.3} should beat row-major {r_nfi:.3}"
        );
        let h_ffi = ffi_acd_3d(&h_asg, &h_m).acd();
        let r_ffi = ffi_acd_3d(&r_asg, &r_m).acd();
        assert!(h_ffi < r_ffi, "3-D FFI: {h_ffi:.3} vs {r_ffi:.3}");
    }

    #[test]
    fn comm_counts_curve_invariant_3d() {
        let mut nfi_counts = std::collections::HashSet::new();
        let mut interp_counts = std::collections::HashSet::new();
        for curve in Curve3dKind::ALL {
            let (asg, machine) = setup(curve, Topology3Kind::Torus3d);
            nfi_counts.insert(nfi_acd_3d(&asg, &machine, 1).num_comms);
            interp_counts.insert(ffi_acd_3d(&asg, &machine).interp_comms);
        }
        assert_eq!(nfi_counts.len(), 1);
        assert_eq!(interp_counts.len(), 1);
    }

    #[test]
    fn single_rank_zero_acd_3d() {
        let particles = sample3d(Distribution::uniform(), 4, 200, 3);
        let asg = Assignment3::new(&particles, 4, Curve3dKind::ZCurve, 1);
        let machine = Machine3::new(Topology3Kind::Torus3d, 1, Curve3dKind::ZCurve);
        assert_eq!(nfi_acd_3d(&asg, &machine, 2).acd(), 0.0);
        assert_eq!(ffi_acd_3d(&asg, &machine).acd(), 0.0);
    }
}
