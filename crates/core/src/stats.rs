//! Summary statistics over experiment trials.
//!
//! The paper reports "averages over multiple independent trials for each set
//! of parameters" (Section VI); [`Stats`] captures mean, spread and extrema
//! of a trial series so regenerated tables can also report uncertainty.

use crate::error::SfcError;

/// Summary of a series of trial measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of trials.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than 2 trials).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Stats {
    /// Summarize a non-empty slice of samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        Self::try_from_samples(samples).expect("no samples to summarize")
    }

    /// Summarize a slice of samples, or report [`SfcError::EmptySamples`]
    /// on an empty one. After a partial sweep (time budget hit, cells
    /// failed), a configuration may have no completed trials; callers use
    /// this to carry `None` through to the rendered tables instead of
    /// panicking.
    pub fn try_from_samples(samples: &[f64]) -> Result<Self, SfcError> {
        if samples.is_empty() {
            return Err(SfcError::EmptySamples);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Stats {
            n: samples.len() as u64,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev / (self.n as f64).sqrt()
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3} (n={})", self.mean, self.std_err(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Stats::from_samples(&[7.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.mean, 7.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_rejected() {
        let _ = Stats::from_samples(&[]);
    }

    #[test]
    fn try_from_samples_reports_empty_as_error() {
        assert_eq!(Stats::try_from_samples(&[]), Err(SfcError::EmptySamples));
        let s = Stats::try_from_samples(&[3.0]).unwrap();
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn display_format() {
        let s = Stats::from_samples(&[2.0, 2.0]);
        assert_eq!(format!("{s}"), "2.000 ± 0.000 (n=2)");
    }
}
