//! The canonical, hashable description of one experiment sweep.
//!
//! Every artifact the bench binaries regenerate — Tables I/II, Figures 5–7,
//! the Section VI-C parametric studies and the Section VIII extension
//! studies — is fully determined by a handful of axes: which curves, which
//! topologies, which input distributions, at what resolution and particle
//! count, over how many trials, from which seed. Before this module each
//! binary carried its own ad-hoc bundle of those axes (an [`AcdExperiment`]
//! here, a hard-coded sweep loop there, a flag struct in between).
//! [`ExperimentSpec`] replaces them with one serializable description that
//!
//! - every binary **parses its flags into** (the flag struct is now a
//!   constructor of specs),
//! - every sweep driver **reads its loops from** (the loops are views of the
//!   spec's axes), and
//! - the result cache and `sfc-serve` daemon **key artifacts by**, via a
//!   canonical JSON form hashed with SHA-256.
//!
//! ## Canonical form
//!
//! [`ExperimentSpec::canonical_json`] always emits every field, in one fixed
//! key order, with `-0.0` normalized to `0.0` — so the serialization of a
//! spec is a *function of its value*, never of how it was produced.
//! [`ExperimentSpec::from_json`] accepts fields in any order and fills
//! omitted fields with their defaults, so any JSON describing the same spec
//! re-canonicalizes to the same bytes and therefore the same
//! [`ExperimentSpec::canonical_hash`].

use crate::error::SfcError;
use crate::experiment::AcdExperiment;
use crate::sha256::sha256_hex;
use serde_json::{json, Map, Value};
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::{Distribution, DistributionKind, Workload};
use sfc_topology::TopologyKind;

/// Which paper artifact a spec regenerates.
///
/// The artifact tag fixes the *interpretation* of the spec's axes (Table I
/// and Table II share every axis but render different interaction models;
/// the extension studies attach fixed 3-D side experiments) and names the
/// artifact in the JSON envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// Table I: near-field ACD over the 4×4 curve-pair grid.
    Table1,
    /// Table II: far-field ACD over the 4×4 curve-pair grid.
    Table2,
    /// Figure 5: ANNS vs spatial resolution.
    Figure5,
    /// Figure 6: ACD by network topology.
    Figure6,
    /// Figure 7: ACD vs processor count.
    Figure7,
    /// Section VI-C parametric studies (radius, input size, distribution).
    Parametric,
    /// Section VIII extension studies (congestion, 3-D, clustering, Moore).
    Extensions,
}

impl ArtifactKind {
    /// All artifacts, in the paper's order.
    pub const ALL: [ArtifactKind; 7] = [
        ArtifactKind::Table1,
        ArtifactKind::Table2,
        ArtifactKind::Figure5,
        ArtifactKind::Figure6,
        ArtifactKind::Figure7,
        ArtifactKind::Parametric,
        ArtifactKind::Extensions,
    ];

    /// Stable identifier used in serialized specs, cache metadata and the
    /// JSON envelope's `artifact` field.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Table1 => "table1",
            ArtifactKind::Table2 => "table2",
            ArtifactKind::Figure5 => "figure5",
            ArtifactKind::Figure6 => "figure6",
            ArtifactKind::Figure7 => "figure7",
            ArtifactKind::Parametric => "parametric",
            ArtifactKind::Extensions => "extensions",
        }
    }

    /// Parse the identifier (case-insensitive; accepts the binary names).
    pub fn parse(s: &str) -> Option<ArtifactKind> {
        match s.to_ascii_lowercase().as_str() {
            "table1" => Some(ArtifactKind::Table1),
            "table2" => Some(ArtifactKind::Table2),
            "figure5" | "fig5" => Some(ArtifactKind::Figure5),
            "figure6" | "fig6" => Some(ArtifactKind::Figure6),
            "figure7" | "fig7" => Some(ArtifactKind::Figure7),
            "parametric" => Some(ArtifactKind::Parametric),
            "extensions" => Some(ArtifactKind::Extensions),
            _ => None,
        }
    }

    /// Name of the sweep this artifact's cells belong to — the journal
    /// identity. Table I and II share the `tables` sweep: each cell computes
    /// both interaction models, so one journal serves both artifacts.
    pub fn sweep_name(self) -> &'static str {
        match self {
            ArtifactKind::Table1 | ArtifactKind::Table2 => "tables",
            ArtifactKind::Figure5 => "figure5",
            ArtifactKind::Figure6 => "figure6",
            ArtifactKind::Figure7 => "figure7",
            ArtifactKind::Parametric => "parametric",
            ArtifactKind::Extensions => "extensions",
        }
    }

    /// Human title used in the stdout banner line.
    pub fn title(self) -> &'static str {
        match self {
            ArtifactKind::Table1 => "Table I — NFI ACD, particle/processor SFC combinations",
            ArtifactKind::Table2 => "Table II — FFI ACD, particle/processor SFC combinations",
            ArtifactKind::Figure5 => "Figure 5 — ANNS vs spatial resolution",
            ArtifactKind::Figure6 => "Figure 6 — ACD by network topology",
            ArtifactKind::Figure7 => "Figure 7 — ACD vs processor count (torus)",
            ArtifactKind::Parametric => "Section VI-C — parametric studies",
            ArtifactKind::Extensions => "Extension studies (paper Section VIII future work)",
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One canonical, serializable, hashable description of a sweep: the full
/// cross-product of curves × topologies × distributions × resolutions ×
/// radii × trials an artifact is assembled from.
///
/// Axes an artifact does not sweep are empty (lists) or zero (scalars); the
/// [`ArtifactKind`] determines which axes are read. All values are stored
/// post-`--scale`: a spec records the *actual* grid order, particle count
/// and processor counts measured, so two invocations describing the same
/// computation hash identically regardless of how their flags spelled it.
/// `scale` itself is retained because the rendered artifact's banner and
/// config envelope report it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Which artifact these axes regenerate.
    pub artifact: ArtifactKind,
    /// Scale-down exponent the sizes were derived with (reported in the
    /// artifact's config envelope; the explicit sizes below are what is
    /// actually computed).
    pub scale: u32,
    /// Independent trials to average.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Grid order of the workload (side `2^k`); 0 when the artifact samples
    /// no particles (Figure 5).
    pub grid_order: u32,
    /// Particle count of the workload; 0 when no particles are sampled.
    pub particles: u64,
    /// Particle-order curves, in column order.
    pub particle_curves: Vec<CurveKind>,
    /// Processor-order curves; empty means "tied to the particle curve"
    /// (the figure experiments use the same SFC for both orderings).
    pub processor_curves: Vec<CurveKind>,
    /// Topologies measured.
    pub topologies: Vec<TopologyKind>,
    /// Input distributions measured (kind + shape parameter).
    pub distributions: Vec<Distribution>,
    /// Grid orders of the ANNS resolution sweep (Figure 5 only).
    pub orders: Vec<u32>,
    /// Processor counts measured.
    pub processors: Vec<u64>,
    /// Particle counts of the input-size sweep (parametric only).
    pub particle_counts: Vec<u64>,
    /// Neighborhood radii measured.
    pub radii: Vec<u32>,
    /// Neighborhood norm.
    pub norm: Norm,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            artifact: ArtifactKind::Table1,
            scale: 0,
            trials: 0,
            seed: 0,
            grid_order: 0,
            particles: 0,
            particle_curves: Vec::new(),
            processor_curves: Vec::new(),
            topologies: Vec::new(),
            distributions: Vec::new(),
            orders: Vec::new(),
            processors: Vec::new(),
            particle_counts: Vec::new(),
            radii: Vec::new(),
            norm: Norm::Chebyshev,
        }
    }
}

/// The scaled Table I/II processor count: 65,536 at paper size, shrunk with
/// the workload, floored at 4 (the smallest power-of-four machine).
fn scaled_procs(scale: u32) -> u64 {
    (65_536u64 >> (2 * scale)).max(4)
}

impl ExperimentSpec {
    /// The JSON keys naming sweep axes — everything beyond
    /// `artifact`/`scale`/`trials`/`seed`. A request object carrying any of
    /// these spells out a full spec and must go through
    /// [`ExperimentSpec::from_json`]; one carrying none of them is the
    /// shorthand whose axes come from [`ExperimentSpec::for_artifact`].
    pub const AXIS_KEYS: [&'static str; 11] = [
        "grid_order",
        "particles",
        "particle_curves",
        "processor_curves",
        "topologies",
        "distributions",
        "orders",
        "processors",
        "particle_counts",
        "radii",
        "norm",
    ];

    /// Whether `obj` names any axis field (see
    /// [`ExperimentSpec::AXIS_KEYS`]), i.e. spells out a full spec rather
    /// than the artifact/scale/trials/seed shorthand.
    pub fn json_names_axes(obj: &Map) -> bool {
        Self::AXIS_KEYS.iter().any(|k| obj.get(k).is_some())
    }

    /// Build the spec for `artifact` at the given scale/trials/seed — the
    /// single entry point the binaries and the daemon construct specs
    /// through.
    pub fn for_artifact(artifact: ArtifactKind, scale: u32, trials: u64, seed: u64) -> Self {
        match artifact {
            ArtifactKind::Table1 => Self::table1(scale, trials, seed),
            ArtifactKind::Table2 => Self::table2(scale, trials, seed),
            ArtifactKind::Figure5 => Self::figure5(scale, trials, seed),
            ArtifactKind::Figure6 => Self::figure6(scale, trials, seed),
            ArtifactKind::Figure7 => Self::figure7(scale, trials, seed),
            ArtifactKind::Parametric => Self::parametric(scale, trials, seed),
            ArtifactKind::Extensions => Self::extensions(scale, trials, seed),
        }
    }

    /// Table I: the 4×4 particle/processor curve grid under each of the
    /// paper's three distributions, radius-1 Chebyshev near field, torus.
    pub fn table1(scale: u32, trials: u64, seed: u64) -> Self {
        let workload = Workload::tables_1_2(DistributionKind::Uniform, seed).scaled_down(scale);
        ExperimentSpec {
            artifact: ArtifactKind::Table1,
            scale,
            trials,
            seed,
            grid_order: workload.grid_order,
            particles: workload.n as u64,
            particle_curves: CurveKind::PAPER.to_vec(),
            processor_curves: CurveKind::PAPER.to_vec(),
            topologies: vec![TopologyKind::Torus],
            distributions: DistributionKind::ALL
                .iter()
                .map(|k| k.default_params())
                .collect(),
            processors: vec![scaled_procs(scale)],
            radii: vec![1],
            norm: Norm::Chebyshev,
            ..ExperimentSpec::default()
        }
    }

    /// Table II: identical axes to [`ExperimentSpec::table1`] (each sweep
    /// cell computes both interaction models); renders the far field.
    pub fn table2(scale: u32, trials: u64, seed: u64) -> Self {
        ExperimentSpec {
            artifact: ArtifactKind::Table2,
            ..Self::table1(scale, trials, seed)
        }
    }

    /// Figure 5: average nearest-neighbor stretch at radii 1 and 6 as the
    /// resolution grows 2×2 → 512×512. Exhaustive over grid cells — no
    /// sampling, so no workload axes; trials/seed are carried only for the
    /// artifact's config envelope.
    pub fn figure5(scale: u32, trials: u64, seed: u64) -> Self {
        ExperimentSpec {
            artifact: ArtifactKind::Figure5,
            scale,
            trials,
            seed,
            particle_curves: CurveKind::PAPER.to_vec(),
            orders: (1..=9).collect(),
            radii: vec![1, 6],
            norm: Norm::Manhattan,
            ..ExperimentSpec::default()
        }
    }

    /// Figure 6: 1,000,000 uniform particles on a 4096×4096 resolution
    /// (scaled), radius-4 near field, the same SFC for both orderings,
    /// across all six topologies.
    pub fn figure6(scale: u32, trials: u64, seed: u64) -> Self {
        let workload = Workload::figure6(seed).scaled_down(scale);
        ExperimentSpec {
            artifact: ArtifactKind::Figure6,
            scale,
            trials,
            seed,
            grid_order: workload.grid_order,
            particles: workload.n as u64,
            particle_curves: CurveKind::PAPER.to_vec(),
            topologies: TopologyKind::PAPER.to_vec(),
            distributions: vec![Distribution::uniform()],
            processors: vec![scaled_procs(scale)],
            radii: vec![4],
            norm: Norm::Chebyshev,
            ..ExperimentSpec::default()
        }
    }

    /// Figure 7: the Figure 6 workload on a torus with the processor count
    /// swept over powers of four up to the scaled 65,536.
    pub fn figure7(scale: u32, trials: u64, seed: u64) -> Self {
        let workload = Workload::figure7(seed).scaled_down(scale);
        // Paper range: 256 .. 65,536 processors, shifted down with the
        // workload; at most five points, stopping at 16.
        let max_procs = (65_536u64 >> (2 * scale)).max(16);
        let mut processors = Vec::new();
        let mut p = max_procs;
        for _ in 0..5 {
            processors.push(p);
            if p <= 16 {
                break;
            }
            p >>= 2;
        }
        processors.reverse();
        ExperimentSpec {
            artifact: ArtifactKind::Figure7,
            scale,
            trials,
            seed,
            grid_order: workload.grid_order,
            particles: workload.n as u64,
            particle_curves: CurveKind::PAPER.to_vec(),
            topologies: vec![TopologyKind::Torus],
            distributions: vec![Distribution::uniform()],
            processors,
            radii: vec![1],
            norm: Norm::Chebyshev,
            ..ExperimentSpec::default()
        }
    }

    /// Section VI-C parametric studies: NFI ACD vs radius, ACD vs input
    /// size, and ACD per distribution, all on the scaled Table I torus with
    /// tied curves.
    pub fn parametric(scale: u32, trials: u64, seed: u64) -> Self {
        let workload = Workload::tables_1_2(DistributionKind::Uniform, seed).scaled_down(scale);
        // Input sizes around the (scaled) Table I workload: ×¼, ×½, ×1, ×2,
        // floored so the smallest scale still has a meaningful sweep.
        let base_n = (250_000u64 >> (2 * scale)).max(64);
        ExperimentSpec {
            artifact: ArtifactKind::Parametric,
            scale,
            trials,
            seed,
            grid_order: workload.grid_order,
            particles: workload.n as u64,
            particle_curves: CurveKind::PAPER.to_vec(),
            topologies: vec![TopologyKind::Torus],
            distributions: DistributionKind::ALL
                .iter()
                .map(|k| k.default_params())
                .collect(),
            processors: vec![scaled_procs(scale)],
            particle_counts: vec![base_n / 4, base_n / 2, base_n, base_n * 2],
            radii: vec![1, 2, 4, 6, 8],
            norm: Norm::Chebyshev,
            ..ExperimentSpec::default()
        }
    }

    /// Section VIII extension studies. The 2-D axes (congestion and
    /// closed-curve studies) run at `max(scale, 2)` — routing every
    /// near-field message is heavy. The fixed 3-D / clustering side
    /// experiments are part of the artifact family itself and are covered by
    /// the cache's kernel-version key rather than spec axes.
    pub fn extensions(scale: u32, trials: u64, seed: u64) -> Self {
        let eff = scale.max(2);
        let workload = Workload::tables_1_2(DistributionKind::Uniform, seed).scaled_down(eff);
        ExperimentSpec {
            artifact: ArtifactKind::Extensions,
            scale,
            trials,
            seed,
            grid_order: workload.grid_order,
            particles: workload.n as u64,
            particle_curves: CurveKind::PAPER.to_vec(),
            topologies: vec![TopologyKind::Torus],
            distributions: vec![Distribution::uniform()],
            processors: vec![scaled_procs(eff)],
            radii: vec![1],
            norm: Norm::Chebyshev,
            ..ExperimentSpec::default()
        }
    }

    /// The workload this spec samples particles from, under `dist`.
    pub fn workload(&self, dist: Distribution) -> Workload {
        Workload::new(self.grid_order, self.particles as usize, dist, self.seed)
    }

    /// The processor-order curves actually used: the explicit list, or the
    /// particle curves when the orderings are tied.
    pub fn effective_processor_curves(&self) -> &[CurveKind] {
        if self.processor_curves.is_empty() {
            &self.particle_curves
        } else {
            &self.processor_curves
        }
    }

    /// The single-cell [`AcdExperiment`]s this spec's ACD axes describe: the
    /// cross-product of distributions × topologies × processor counts ×
    /// particle curves × processor curves at the first radius. The ad-hoc
    /// per-binary configs are views of this enumeration.
    pub fn acd_experiments(&self) -> Vec<AcdExperiment> {
        let radius = self.radii.first().copied().unwrap_or(1);
        let mut out = Vec::new();
        for &dist in &self.distributions {
            let workload = self.workload(dist);
            for &topology in &self.topologies {
                for &num_processors in &self.processors {
                    for &particle_curve in &self.particle_curves {
                        let processor_curves: &[CurveKind] = if self.processor_curves.is_empty() {
                            std::slice::from_ref(&particle_curve)
                        } else {
                            &self.processor_curves
                        };
                        for &processor_curve in processor_curves {
                            out.push(AcdExperiment {
                                workload,
                                particle_curve,
                                processor_curve,
                                topology,
                                num_processors,
                                radius,
                                norm: self.norm,
                                trials: self.trials,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Check the spec before any work happens, mirroring
    /// [`AcdExperiment::validate`] across every axis combination.
    pub fn validate(&self) -> Result<(), SfcError> {
        if self.trials == 0 {
            return Err(SfcError::NoTrials);
        }
        for &p in &self.processors {
            if !p.is_power_of_two() || !p.trailing_zeros().is_multiple_of(2) {
                return Err(SfcError::NonPowerOfFourProcessors { num_processors: p });
            }
        }
        for e in self.acd_experiments() {
            e.validate()?;
        }
        for &order in &self.orders {
            if order == 0 || order > crate::anns::MAX_STRETCH_ORDER {
                return Err(SfcError::OrderTooLarge {
                    order,
                    max_order: crate::anns::MAX_STRETCH_ORDER,
                });
            }
        }
        Ok(())
    }

    /// The canonical JSON form: every field present, fixed key order,
    /// `-0.0` normalized to `0.0`. Hash input for
    /// [`ExperimentSpec::canonical_hash`].
    pub fn canonical_json(&self) -> Value {
        let dists: Vec<Value> = self
            .distributions
            .iter()
            .map(|d| {
                // Normalize the sign of a zero shape so the canonical bytes
                // are a function of the numeric value.
                let shape = if d.shape == 0.0 { 0.0 } else { d.shape };
                json!({ "kind": d.kind.name(), "shape": shape })
            })
            .collect();
        json!({
            "artifact": self.artifact.name(),
            "scale": self.scale,
            "trials": self.trials,
            "seed": self.seed,
            "grid_order": self.grid_order,
            "particles": self.particles,
            "particle_curves": self.particle_curves.iter().map(|c| c.short_name()).collect::<Vec<_>>(),
            "processor_curves": self.processor_curves.iter().map(|c| c.short_name()).collect::<Vec<_>>(),
            "topologies": self.topologies.iter().map(|t| t.name()).collect::<Vec<_>>(),
            "distributions": dists,
            "orders": self.orders,
            "processors": self.processors,
            "particle_counts": self.particle_counts,
            "radii": self.radii,
            "norm": self.norm.name(),
        })
    }

    /// The canonical serialization: compact JSON of
    /// [`ExperimentSpec::canonical_json`].
    pub fn canonical_string(&self) -> String {
        serde_json::to_string(&self.canonical_json()).expect("canonical spec serializes")
    }

    /// SHA-256 of the canonical serialization — the spec's content address.
    /// Stable across field order, default omission and `-0.0` in the inputs
    /// it was parsed from (see [`ExperimentSpec::from_json`]).
    pub fn canonical_hash(&self) -> String {
        sha256_hex(self.canonical_string().as_bytes())
    }

    /// Parse a spec from JSON text. See [`ExperimentSpec::from_json`].
    pub fn from_json_str(text: &str) -> Result<ExperimentSpec, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("spec is not valid JSON: {e}"))?;
        Self::from_json(&value)
    }

    /// Parse a spec from a JSON object. Fields may appear in any order;
    /// omitted fields take their [`Default`] values (so a minimal request
    /// like `{"artifact": "figure5", "orders": [1,2,3], ...}` is valid), and
    /// re-canonicalizing yields identical bytes and hash.
    pub fn from_json(value: &Value) -> Result<ExperimentSpec, String> {
        let obj = value
            .as_object()
            .ok_or_else(|| "spec must be a JSON object".to_string())?;
        let mut spec = ExperimentSpec {
            artifact: parse_artifact(obj)?,
            ..ExperimentSpec::default()
        };
        if let Some(v) = obj.get("scale") {
            spec.scale = as_u64(v, "scale")? as u32;
        }
        if let Some(v) = obj.get("trials") {
            spec.trials = as_u64(v, "trials")?;
        }
        if let Some(v) = obj.get("seed") {
            spec.seed = as_u64(v, "seed")?;
        }
        if let Some(v) = obj.get("grid_order") {
            spec.grid_order = as_u64(v, "grid_order")? as u32;
        }
        if let Some(v) = obj.get("particles") {
            spec.particles = as_u64(v, "particles")?;
        }
        if let Some(v) = obj.get("particle_curves") {
            spec.particle_curves = parse_list(v, "particle_curves", |s| {
                CurveKind::parse(s).ok_or_else(|| format!("unknown curve `{s}`"))
            })?;
        }
        if let Some(v) = obj.get("processor_curves") {
            spec.processor_curves = parse_list(v, "processor_curves", |s| {
                CurveKind::parse(s).ok_or_else(|| format!("unknown curve `{s}`"))
            })?;
        }
        if let Some(v) = obj.get("topologies") {
            spec.topologies = parse_list(v, "topologies", |s| {
                TopologyKind::parse(s).ok_or_else(|| format!("unknown topology `{s}`"))
            })?;
        }
        if let Some(v) = obj.get("distributions") {
            spec.distributions = parse_distributions(v)?;
        }
        if let Some(v) = obj.get("orders") {
            spec.orders = parse_num_list(v, "orders")?
                .into_iter()
                .map(|n| n as u32)
                .collect();
        }
        if let Some(v) = obj.get("processors") {
            spec.processors = parse_num_list(v, "processors")?;
        }
        if let Some(v) = obj.get("particle_counts") {
            spec.particle_counts = parse_num_list(v, "particle_counts")?;
        }
        if let Some(v) = obj.get("radii") {
            spec.radii = parse_num_list(v, "radii")?
                .into_iter()
                .map(|n| n as u32)
                .collect();
        }
        if let Some(v) = obj.get("norm") {
            let s = v
                .as_str()
                .ok_or_else(|| "norm must be a string".to_string())?;
            spec.norm = Norm::parse(s).ok_or_else(|| format!("unknown norm `{s}`"))?;
        }
        Ok(spec)
    }
}

fn parse_artifact(obj: &Map) -> Result<ArtifactKind, String> {
    let v = obj
        .get("artifact")
        .ok_or_else(|| "spec is missing required field `artifact`".to_string())?;
    let s = v
        .as_str()
        .ok_or_else(|| "artifact must be a string".to_string())?;
    ArtifactKind::parse(s).ok_or_else(|| format!("unknown artifact `{s}`"))
}

fn as_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("{field} must be a non-negative integer"))
}

fn parse_list<T>(
    v: &Value,
    field: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    v.as_array()
        .ok_or_else(|| format!("{field} must be an array of strings"))?
        .iter()
        .map(|e| {
            let s = e
                .as_str()
                .ok_or_else(|| format!("{field} entries must be strings"))?;
            parse(s)
        })
        .collect()
}

fn parse_num_list(v: &Value, field: &str) -> Result<Vec<u64>, String> {
    v.as_array()
        .ok_or_else(|| format!("{field} must be an array of integers"))?
        .iter()
        .map(|e| as_u64(e, field))
        .collect()
}

fn parse_distributions(v: &Value) -> Result<Vec<Distribution>, String> {
    v.as_array()
        .ok_or_else(|| "distributions must be an array".to_string())?
        .iter()
        .map(|e| {
            // Accept both the canonical {"kind", "shape"} object and a bare
            // kind string (which takes the paper's default shape).
            if let Some(s) = e.as_str() {
                let kind = DistributionKind::parse(s)
                    .ok_or_else(|| format!("unknown distribution `{s}`"))?;
                return Ok(kind.default_params());
            }
            let obj = e
                .as_object()
                .ok_or_else(|| "distribution entries must be objects or strings".to_string())?;
            let kind_str = obj
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| "distribution entries need a string `kind`".to_string())?;
            let kind = DistributionKind::parse(kind_str)
                .ok_or_else(|| format!("unknown distribution `{kind_str}`"))?;
            let shape = match obj.get("shape") {
                Some(s) => s
                    .as_f64()
                    .ok_or_else(|| "distribution shape must be a number".to_string())?,
                None => kind.default_params().shape,
            };
            Ok(Distribution { kind, shape })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_legacy_scaling_math() {
        let spec = ExperimentSpec::table1(4, 2, 99);
        assert_eq!(spec.grid_order, 6); // 1024 >> 4 = 64 per side
        assert_eq!(spec.particles, 250_000 >> 8);
        assert_eq!(spec.processors, vec![256]);
        assert_eq!(spec.distributions.len(), 3);
        assert_eq!(spec.radii, vec![1]);

        let fig7 = ExperimentSpec::figure7(5, 1, 3);
        assert_eq!(fig7.processors, vec![16, 64]);
        let fig7_full = ExperimentSpec::figure7(0, 1, 3);
        assert_eq!(fig7_full.processors, vec![256, 1024, 4096, 16_384, 65_536]);

        let ext = ExperimentSpec::extensions(0, 1, 3);
        assert_eq!(ext.grid_order, 8); // clamped to scale 2
        assert_eq!(ext.processors, vec![4096]);
        let ext5 = ExperimentSpec::extensions(5, 1, 3);
        assert_eq!(ext5.grid_order, 5);
    }

    #[test]
    fn canonical_json_has_fixed_key_order() {
        let spec = ExperimentSpec::table1(4, 1, 7);
        let canon = spec.canonical_json();
        let keys: Vec<&str> = canon
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            vec![
                "artifact",
                "scale",
                "trials",
                "seed",
                "grid_order",
                "particles",
                "particle_curves",
                "processor_curves",
                "topologies",
                "distributions",
                "orders",
                "processors",
                "particle_counts",
                "radii",
                "norm",
            ]
        );
    }

    #[test]
    fn round_trip_preserves_value_and_hash() {
        for artifact in ArtifactKind::ALL {
            let spec = ExperimentSpec::for_artifact(artifact, 4, 2, 42);
            let back = ExperimentSpec::from_json_str(&spec.canonical_string()).unwrap();
            assert_eq!(back, spec);
            assert_eq!(back.canonical_hash(), spec.canonical_hash());
        }
    }

    #[test]
    fn field_order_does_not_change_the_hash() {
        let spec = ExperimentSpec::figure6(4, 2, 42);
        // Rebuild the JSON with keys in reverse insertion order.
        let canon = spec.canonical_json();
        let obj = canon.as_object().unwrap();
        let entries: Vec<(String, Value)> =
            obj.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let mut reversed = Map::new();
        for (k, v) in entries.into_iter().rev() {
            reversed.insert(k, v);
        }
        let back = ExperimentSpec::from_json(&Value::Object(reversed)).unwrap();
        assert_eq!(back.canonical_hash(), spec.canonical_hash());
    }

    #[test]
    fn negative_zero_shape_hashes_like_positive_zero() {
        let mut a = ExperimentSpec::figure6(4, 1, 1);
        a.distributions = vec![Distribution::uniform()]; // shape 0.0
        let mut b = a.clone();
        b.distributions[0].shape = -0.0;
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        // And the canonical bytes themselves are sign-free.
        assert!(!b.canonical_string().contains("-0"));
    }

    #[test]
    fn omitted_default_fields_hash_identically() {
        let full = ExperimentSpec::figure5(2, 3, 5);
        let minimal = serde_json::json!({
            "artifact": "figure5",
            "scale": 2,
            "trials": 3,
            "seed": 5,
            "particle_curves": vec!["Hilbert", "Z", "Gray", "RowMajor"],
            "orders": (1u64..=9).collect::<Vec<_>>(),
            "radii": vec![1u64, 6],
            "norm": "manhattan",
        });
        let parsed = ExperimentSpec::from_json(&minimal).unwrap();
        assert_eq!(parsed, full);
        assert_eq!(parsed.canonical_hash(), full.canonical_hash());
    }

    #[test]
    fn distinct_specs_hash_differently() {
        let a = ExperimentSpec::table1(4, 1, 7);
        let mut hashes = std::collections::HashSet::new();
        assert!(hashes.insert(a.canonical_hash()));
        assert!(hashes.insert(ExperimentSpec::table2(4, 1, 7).canonical_hash()));
        assert!(hashes.insert(ExperimentSpec::table1(5, 1, 7).canonical_hash()));
        assert!(hashes.insert(ExperimentSpec::table1(4, 2, 7).canonical_hash()));
        assert!(hashes.insert(ExperimentSpec::table1(4, 1, 8).canonical_hash()));
    }

    #[test]
    fn acd_experiments_enumerate_the_table_grid() {
        let spec = ExperimentSpec::table1(4, 2, 99);
        let exps = spec.acd_experiments();
        // 3 distributions × 1 topology × 1 processor count × 4×4 curve pairs.
        assert_eq!(exps.len(), 48);
        for e in &exps {
            assert_eq!(e.validate(), Ok(()));
            assert_eq!(e.num_processors, 256);
            assert_eq!(e.trials, 2);
        }
        // Tied-curve specs enumerate the diagonal only.
        let fig6 = ExperimentSpec::figure6(5, 1, 3);
        let exps = fig6.acd_experiments();
        assert_eq!(exps.len(), 6 * 4);
        assert!(exps.iter().all(|e| e.particle_curve == e.processor_curve));
    }

    #[test]
    fn validate_flags_bad_axes() {
        assert_eq!(
            ExperimentSpec::table1(4, 1, 7).validate(),
            Ok(()),
            "stock spec must validate"
        );
        let mut bad = ExperimentSpec::table1(4, 0, 7);
        assert_eq!(bad.validate(), Err(SfcError::NoTrials));
        bad.trials = 1;
        bad.processors = vec![48];
        assert!(matches!(
            bad.validate(),
            Err(SfcError::NonPowerOfFourProcessors { num_processors: 48 })
        ));
        let mut bad_order = ExperimentSpec::figure5(0, 1, 7);
        bad_order.orders.push(40);
        assert!(matches!(
            bad_order.validate(),
            Err(SfcError::OrderTooLarge { order: 40, .. })
        ));
    }

    #[test]
    fn from_json_rejects_malformed_specs() {
        assert!(ExperimentSpec::from_json_str("not json").is_err());
        assert!(ExperimentSpec::from_json_str("[]").is_err());
        assert!(ExperimentSpec::from_json_str("{}").is_err());
        assert!(ExperimentSpec::from_json_str(r#"{"artifact": "table9"}"#).is_err());
        assert!(
            ExperimentSpec::from_json_str(r#"{"artifact": "table1", "scale": -1}"#).is_err()
        );
        assert!(ExperimentSpec::from_json_str(
            r#"{"artifact": "table1", "particle_curves": ["klein"]}"#
        )
        .is_err());
    }

    #[test]
    fn bare_distribution_strings_take_default_shapes() {
        let spec = ExperimentSpec::from_json(&serde_json::json!({
            "artifact": "table1",
            "distributions": vec!["uniform", "normal", "exponential"],
        }))
        .unwrap();
        assert_eq!(
            spec.distributions,
            DistributionKind::ALL
                .iter()
                .map(|k| k.default_params())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn axis_keys_distinguish_full_specs_from_shorthand() {
        // Every canonical spec names axes; the shorthand never does.
        for artifact in ArtifactKind::ALL {
            let spec = ExperimentSpec::for_artifact(artifact, 4, 1, 7);
            let canon = spec.canonical_json();
            assert!(
                ExperimentSpec::json_names_axes(canon.as_object().unwrap()),
                "{artifact}: canonical form must name axes"
            );
        }
        let shorthand = serde_json::json!({
            "id": 1, "op": "run", "artifact": "table1",
            "scale": 4, "trials": 1, "seed": 7, "format": "plain",
        });
        assert!(!ExperimentSpec::json_names_axes(
            shorthand.as_object().unwrap()
        ));
        // AXIS_KEYS stays in sync with the canonical key list: it is the
        // canonical order minus the four identity fields.
        let spec = ExperimentSpec::table1(4, 1, 7);
        let canon = spec.canonical_json();
        let canonical_keys: Vec<&str> = canon
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| !matches!(*k, "artifact" | "scale" | "trials" | "seed"))
            .collect();
        assert_eq!(canonical_keys, ExperimentSpec::AXIS_KEYS.to_vec());
    }

    #[test]
    fn artifact_kind_parse_round_trips() {
        for kind in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ArtifactKind::parse("fig6"), Some(ArtifactKind::Figure6));
        assert_eq!(ArtifactKind::parse("nope"), None);
    }
}
