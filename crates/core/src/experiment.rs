//! Experiment runner: one (workload, curve pair, machine) configuration,
//! averaged over independent trials.
//!
//! This is the unit all the paper's evaluations are assembled from:
//!
//! - Tables I & II sweep the 4 × 4 particle/processor curve combinations for
//!   each distribution on a fixed torus;
//! - Figure 6 sweeps topologies with the particle and processor curves tied;
//! - Figure 7 sweeps the processor count on a torus.
//!
//! Trials share seeds across configurations — trial `t` of every
//! configuration of a workload sees the *same* particle set (the paper:
//! "we used fixed sets of inputs and computed the ACD for each topology
//! under each SFC"), so differences between configurations are purely due to
//! the curves/network, not sampling noise.

use crate::assignment::Assignment;
use crate::error::SfcError;
use crate::ffi::{ffi_acd_with_tree, FfiResult, OwnerTree};
use crate::machine::Machine;
use crate::nfi::{nfi_acd, NfiResult};
use crate::stats::Stats;
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::Workload;
use sfc_topology::TopologyKind;

/// A fully specified ACD experiment.
#[derive(Debug, Clone, Copy)]
pub struct AcdExperiment {
    /// The input description (grid order, particle count, distribution,
    /// seed).
    pub workload: Workload,
    /// Particle-order SFC.
    pub particle_curve: CurveKind,
    /// Processor-order SFC (ignored on non-grid topologies).
    pub processor_curve: CurveKind,
    /// Interconnect family.
    pub topology: TopologyKind,
    /// Processor count (must be a power of four).
    pub num_processors: u64,
    /// Near-field neighborhood radius.
    pub radius: u32,
    /// Near-field neighborhood norm (the FMM model uses Chebyshev).
    pub norm: Norm,
    /// Number of independent trials.
    pub trials: u64,
}

impl AcdExperiment {
    /// The paper's default setup for Tables I and II: 65,536 processors on
    /// a torus, radius-1 Chebyshev near field, for the given workload and
    /// curve pair.
    pub fn tables_1_2(
        workload: Workload,
        particle_curve: CurveKind,
        processor_curve: CurveKind,
        trials: u64,
    ) -> Self {
        AcdExperiment {
            workload,
            particle_curve,
            processor_curve,
            topology: TopologyKind::Torus,
            num_processors: 65_536,
            radius: 1,
            norm: Norm::Chebyshev,
            trials,
        }
    }

    /// Scale processor count and workload down together by `scale` powers of
    /// four (for smoke runs of the regeneration binaries).
    pub fn scaled_down(mut self, scale: u32) -> Self {
        self.workload = self.workload.scaled_down(scale);
        self.num_processors = (self.num_processors >> (2 * scale)).max(4);
        self
    }

    /// Check every parameter before any work happens: processor count a
    /// power of four, workload satisfiable (grid order in range, particle
    /// count within the grid's capacity), near-field radius smaller than
    /// the grid side, at least one trial. Misconfigurations surface as
    /// typed [`SfcError`]s a sweep harness can record instead of panicking
    /// deep inside a run.
    pub fn validate(&self) -> Result<(), SfcError> {
        if !self.num_processors.is_power_of_two()
            || !self.num_processors.trailing_zeros().is_multiple_of(2)
        {
            return Err(SfcError::NonPowerOfFourProcessors {
                num_processors: self.num_processors,
            });
        }
        self.workload.validate()?;
        if u64::from(self.radius) >= self.workload.side() {
            return Err(SfcError::RadiusExceedsGrid {
                radius: self.radius,
                side: self.workload.side(),
            });
        }
        if self.trials == 0 {
            return Err(SfcError::NoTrials);
        }
        Ok(())
    }

    /// Run all trials, measuring both interaction models. An invalid
    /// configuration is a typed [`SfcError`].
    pub fn run(&self) -> Result<AcdMeasurement, SfcError> {
        self.validate()?;
        let machine = self.machine();
        let mut nfi_acds = Vec::with_capacity(self.trials as usize);
        let mut nfi_locals = Vec::with_capacity(self.trials as usize);
        let mut ffi_acds = Vec::with_capacity(self.trials as usize);
        let mut tree_acds = Vec::with_capacity(self.trials as usize);
        let mut ilist_acds = Vec::with_capacity(self.trials as usize);
        for t in 0..self.trials {
            let (nfi, ffi) = self.run_trial(&machine, t)?;
            nfi_acds.push(nfi.acd());
            nfi_locals.push(nfi.locality());
            ffi_acds.push(ffi.acd());
            tree_acds.push(ffi.tree_acd());
            ilist_acds.push(ffi.ilist_acd());
        }
        Ok(AcdMeasurement {
            nfi: Stats::from_samples(&nfi_acds),
            nfi_locality: Stats::from_samples(&nfi_locals),
            ffi: Stats::from_samples(&ffi_acds),
            ffi_tree: Stats::from_samples(&tree_acds),
            ffi_ilist: Stats::from_samples(&ilist_acds),
        })
    }

    /// Build the machine for this experiment.
    pub fn machine(&self) -> Machine {
        Machine::new(self.topology, self.num_processors, self.processor_curve)
    }

    /// Build the assignment for trial `t`.
    pub fn assignment(&self, t: u64) -> Assignment {
        let particles = self.workload.particles(t);
        Assignment::new(
            &particles,
            self.workload.grid_order,
            self.particle_curve,
            self.num_processors,
        )
    }

    /// Run one trial against a prebuilt machine, returning the raw results.
    pub fn run_trial(&self, machine: &Machine, t: u64) -> Result<(NfiResult, FfiResult), SfcError> {
        let asg = self.assignment(t);
        let nfi = nfi_acd(&asg, machine, self.radius, self.norm)?;
        let tree = OwnerTree::build(&asg);
        let ffi = ffi_acd_with_tree(&asg, machine, &tree)?;
        Ok((nfi, ffi))
    }
}

/// Trial-averaged results of an [`AcdExperiment`].
#[derive(Debug, Clone, Copy)]
pub struct AcdMeasurement {
    /// Near-field ACD.
    pub nfi: Stats,
    /// Fraction of near-field exchanges that stayed on-rank.
    pub nfi_locality: Stats,
    /// Far-field ACD (all three communication families).
    pub ffi: Stats,
    /// ACD of the interpolation + anterpolation component.
    pub ffi_tree: Stats,
    /// ACD of the interaction-list component.
    pub ffi_ilist: Stats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_particles::{Distribution, DistributionKind};

    fn small_experiment(
        particle_curve: CurveKind,
        processor_curve: CurveKind,
        topology: TopologyKind,
    ) -> AcdExperiment {
        AcdExperiment {
            workload: Workload::new(6, 400, Distribution::uniform(), 1234),
            particle_curve,
            processor_curve,
            topology,
            num_processors: 64,
            radius: 1,
            norm: Norm::Chebyshev,
            trials: 3,
        }
    }

    #[test]
    fn runs_and_reports_sane_values() {
        let e = small_experiment(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Torus);
        let m = e.run().unwrap();
        assert_eq!(m.nfi.n, 3);
        assert!(m.nfi.mean >= 0.0);
        assert!(m.ffi.mean > 0.0);
        // ACD can never exceed the network diameter.
        let diameter = e.machine().topology().diameter() as f64;
        assert!(m.nfi.mean <= diameter);
        assert!(m.ffi.mean <= diameter);
    }

    #[test]
    fn trials_share_particles_across_configurations() {
        let a = small_experiment(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Torus);
        let b = small_experiment(CurveKind::RowMajor, CurveKind::Gray, TopologyKind::Mesh);
        // Same workload -> same particle sets per trial.
        assert_eq!(a.assignment(2).particles().len(), b.assignment(2).particles().len());
        let mut pa: Vec<_> = a.assignment(2).particles().to_vec();
        let mut pb: Vec<_> = b.assignment(2).particles().to_vec();
        pa.sort_unstable();
        pb.sort_unstable();
        assert_eq!(pa, pb);
    }

    #[test]
    fn measurements_are_reproducible() {
        let e = small_experiment(CurveKind::ZCurve, CurveKind::ZCurve, TopologyKind::Quadtree);
        let m1 = e.run().unwrap();
        let m2 = e.run().unwrap();
        assert_eq!(m1.nfi.mean, m2.nfi.mean);
        assert_eq!(m1.ffi.mean, m2.ffi.mean);
    }

    #[test]
    fn paper_shape_hilbert_beats_row_major_on_nfi() {
        // The central qualitative claim of Table I at miniature scale.
        let hil = small_experiment(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Torus)
            .run()
            .unwrap()
            .nfi
            .mean;
        let row = small_experiment(CurveKind::RowMajor, CurveKind::RowMajor, TopologyKind::Torus)
            .run()
            .unwrap()
            .nfi
            .mean;
        assert!(
            hil < row,
            "expected Hilbert ({hil}) below row-major ({row}) on NFI ACD"
        );
    }

    #[test]
    fn validate_catches_each_misconfiguration() {
        let good = small_experiment(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Torus);
        assert_eq!(good.validate(), Ok(()));

        let mut bad = good;
        bad.num_processors = 48;
        assert!(matches!(
            bad.validate(),
            Err(SfcError::NonPowerOfFourProcessors { num_processors: 48 })
        ));

        let mut bad = good;
        bad.workload.grid_order = 40;
        assert!(matches!(bad.validate(), Err(SfcError::Workload(_))));

        let mut bad = good;
        bad.workload.n = 1 << 20; // far beyond a 64x64 grid
        assert!(matches!(bad.validate(), Err(SfcError::Workload(_))));

        let mut bad = good;
        bad.radius = 64; // grid side is 2^6 = 64
        assert!(matches!(
            bad.validate(),
            Err(SfcError::RadiusExceedsGrid { radius: 64, side: 64 })
        ));

        let mut bad = good;
        bad.trials = 0;
        assert_eq!(bad.validate(), Err(SfcError::NoTrials));
    }

    #[test]
    fn run_rejects_invalid_configuration() {
        let mut e = small_experiment(CurveKind::Hilbert, CurveKind::Hilbert, TopologyKind::Torus);
        e.num_processors = 48;
        assert!(matches!(
            e.run(),
            Err(SfcError::NonPowerOfFourProcessors { num_processors: 48 })
        ));
    }

    #[test]
    fn scaled_down_reduces_both_axes() {
        let e = AcdExperiment::tables_1_2(
            Workload::tables_1_2(DistributionKind::Uniform, 0),
            CurveKind::Hilbert,
            CurveKind::Hilbert,
            1,
        )
        .scaled_down(3);
        assert_eq!(e.workload.side(), 128);
        assert_eq!(e.num_processors, 1024);
    }
}
