//! Link-load accounting — a first step toward the paper's future-work item
//! (i): "study the impact of data volume and network contention on
//! communication efficiency".
//!
//! The ACD metric is contention-unaware by design (Section IV: distances are
//! shortest paths, every message assumed independent). This module routes
//! every near-field message along a *deterministic* shortest path and counts
//! how many messages cross each physical link. The maximum link load is the
//! classic congestion lower bound on communication time; comparing it across
//! SFCs shows whether a curve that wins on ACD also spreads traffic evenly.
//!
//! Routing disciplines per topology:
//!
//! - bus: the unique path;
//! - ring: the shorter arc (ties toward increasing ids);
//! - mesh: dimension-order (X then Y);
//! - torus: dimension-order with the shorter wrap per axis (ties toward
//!   increasing coordinates);
//! - hypercube: e-cube (fix differing address bits from LSB to MSB);
//! - quadtree: up to the lowest common ancestor, then down.

use crate::assignment::Assignment;
use crate::error::SfcError;
use crate::machine::Machine;
use sfc_curves::point::Norm;
use sfc_topology::TopologyKind;
use std::collections::HashMap;

/// A directed physical link. For the quadtree, switch nodes are encoded as
/// `(level << 56) | index-within-level` with leaves at their plain ids.
pub type Link = (u64, u64);

/// Per-link message counts for one communication phase.
#[derive(Debug, Clone, Default)]
pub struct LinkLoad {
    /// Messages crossing each directed link.
    pub links: HashMap<Link, u64>,
    /// Total messages routed (including rank-local ones, which cross no
    /// link).
    pub messages: u64,
    /// Total link crossings (= sum of all loads = total distance).
    pub crossings: u64,
    /// Total directed links in the topology, *including* idle ones
    /// ([`sfc_topology::Topology::num_links`]). Averages are taken over
    /// this: a workload that concentrates all traffic on 2 of 1000 links
    /// must report a large imbalance, not a perfect 1.0.
    pub total_links: u64,
}

impl LinkLoad {
    /// The largest load on any single link — the congestion bound.
    pub fn max_load(&self) -> u64 {
        self.links.values().copied().max().unwrap_or(0)
    }

    /// Mean load over *all* links of the topology, idle ones included.
    pub fn mean_load(&self) -> f64 {
        if self.total_links == 0 {
            0.0
        } else {
            self.crossings as f64 / self.total_links as f64
        }
    }

    /// Mean load over only the links that carried at least one message —
    /// the quantity [`mean_load`](LinkLoad::mean_load) reported before it
    /// was fixed to count idle links.
    pub fn mean_active_load(&self) -> f64 {
        if self.links.is_empty() {
            0.0
        } else {
            self.crossings as f64 / self.links.len() as f64
        }
    }

    /// Ratio of max to [`mean_load`](LinkLoad::mean_load): 1.0 means
    /// traffic spread perfectly over the whole network.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_load();
        if mean == 0.0 {
            0.0
        } else {
            self.max_load() as f64 / mean
        }
    }

    fn record_path(&mut self, path: &[u64]) {
        for hop in path.windows(2) {
            *self.links.entry((hop[0], hop[1])).or_insert(0) += 1;
            self.crossings += 1;
        }
    }
}

/// Compute the shortest route between two physical nodes under the
/// deterministic discipline for `kind`. The returned path includes both
/// endpoints; its length minus one equals the topology's hop distance.
///
/// Mesh/torus routing requires `nodes` to be a perfect square — a
/// non-square count has no `side × side` grid and is rejected as
/// [`SfcError::NonSquareMesh`] rather than silently mis-routing on a
/// rounded side length.
pub fn route(kind: TopologyKind, nodes: u64, a: u64, b: u64) -> Result<Vec<u64>, SfcError> {
    Ok(match kind {
        TopologyKind::Bus => {
            let mut path = vec![a];
            let mut cur = a;
            while cur != b {
                cur = if b > cur { cur + 1 } else { cur - 1 };
                path.push(cur);
            }
            path
        }
        TopologyKind::Ring => {
            let mut path = vec![a];
            let mut cur = a;
            let forward = (b + nodes - a) % nodes;
            let step_forward = forward <= nodes - forward;
            while cur != b {
                cur = if step_forward {
                    (cur + 1) % nodes
                } else {
                    (cur + nodes - 1) % nodes
                };
                path.push(cur);
            }
            path
        }
        TopologyKind::Mesh | TopologyKind::Torus => {
            let side = nodes.isqrt();
            if side * side != nodes {
                return Err(SfcError::NonSquareMesh { nodes });
            }
            let (ax, ay) = (a % side, a / side);
            let (bx, by) = (b % side, b / side);
            let torus = kind == TopologyKind::Torus;
            let mut path = vec![a];
            let (mut x, mut y) = (ax, ay);
            // X dimension first.
            while x != bx {
                x = axis_step(x, bx, side, torus);
                path.push(y * side + x);
            }
            while y != by {
                y = axis_step(y, by, side, torus);
                path.push(y * side + x);
            }
            path
        }
        TopologyKind::Hypercube => {
            let mut path = vec![a];
            let mut cur = a;
            let mut diff = a ^ b;
            while diff != 0 {
                let bit = diff & diff.wrapping_neg();
                cur ^= bit;
                diff ^= bit;
                path.push(cur);
            }
            path
        }
        TopologyKind::Quadtree => {
            let levels = nodes.trailing_zeros() / 2;
            let encode = |level: u32, idx: u64| -> u64 {
                if level == levels {
                    idx // leaf: plain id
                } else {
                    ((level as u64 + 1) << 56) | idx
                }
            };
            if a == b {
                return Ok(vec![a]);
            }
            // Climb to the LCA, then descend.
            let net = sfc_topology::QuadtreeNet::new(levels);
            let lca = net.lca_level(a, b);
            let mut path = vec![a];
            // Up from a.
            let mut idx = a;
            for level in (lca..levels).rev() {
                idx >>= 2;
                path.push(encode(level, idx));
            }
            // Down to b: collect then reverse.
            let mut down = Vec::new();
            let mut idx = b;
            for level in (lca + 1..=levels).rev() {
                down.push(encode(level, idx));
                idx >>= 2;
            }
            path.extend(down.into_iter().rev());
            path
        }
        TopologyKind::Mesh3d | TopologyKind::Torus3d => {
            unimplemented!("3-D routing is not part of the link-load study")
        }
    })
}

fn axis_step(cur: u64, target: u64, side: u64, torus: bool) -> u64 {
    if !torus {
        return if target > cur { cur + 1 } else { cur - 1 };
    }
    let forward = (target + side - cur) % side;
    if forward <= side - forward {
        (cur + 1) % side
    } else {
        (cur + side - 1) % side
    }
}

/// Route every near-field message of the assignment and accumulate link
/// loads. Serial (link counting is a shared-map reduction; the study runs at
/// moderate scale).
pub fn nfi_link_load(asg: &Assignment, machine: &Machine, radius: u32, norm: Norm) -> LinkLoad {
    let kind = machine.topology().kind();
    let nodes = machine.topology().num_nodes();
    let side = 1i64 << asg.grid_order();
    let r = radius as i64;
    let mut load = LinkLoad {
        total_links: machine.num_links(),
        ..LinkLoad::default()
    };
    for (i, p) in asg.particles().iter().enumerate() {
        let rank = asg.rank_of_index(i);
        for dy in -r..=r {
            for dx in -r..=r {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let inside = match norm {
                    Norm::Manhattan => dx.abs() + dy.abs() <= r,
                    Norm::Chebyshev => dx.abs().max(dy.abs()) <= r,
                };
                if !inside {
                    continue;
                }
                let nx = p.x as i64 + dx;
                let ny = p.y as i64 + dy;
                if nx < 0 || ny < 0 || nx >= side || ny >= side {
                    continue;
                }
                if let Some(other) = asg.rank_of_cell(nx as u32, ny as u32) {
                    load.messages += 1;
                    if other != rank {
                        let path = route(kind, nodes, machine.node_of(rank), machine.node_of(other))
                            .expect("machine topologies are square by construction");
                        load.record_path(&path);
                    }
                }
            }
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_curves::CurveKind;
    use sfc_particles::{sample, Distribution};
    use sfc_topology::Topology;

    /// Route lengths must equal closed-form distances, for every topology.
    #[test]
    fn route_lengths_match_distances() {
        for kind in TopologyKind::PAPER {
            let topo = kind.build(256);
            for a in (0..256u64).step_by(23) {
                for b in (0..256u64).step_by(17) {
                    let path = route(kind, 256, a, b).unwrap();
                    assert_eq!(
                        (path.len() - 1) as u64,
                        topo.distance(a, b),
                        "{kind}: route {a}->{b}"
                    );
                    assert_eq!(path[0], a);
                    assert_eq!(*path.last().unwrap(), b);
                }
            }
        }
    }

    /// Every consecutive pair along a routed path is one physical hop.
    #[test]
    fn route_steps_are_links() {
        for kind in [TopologyKind::Mesh, TopologyKind::Torus, TopologyKind::Hypercube] {
            let topo = kind.build(64);
            for (a, b) in [(0u64, 63u64), (5, 40), (62, 1)] {
                for hop in route(kind, 64, a, b).unwrap().windows(2) {
                    assert_eq!(topo.distance(hop[0], hop[1]), 1, "{kind} hop {hop:?}");
                }
            }
        }
    }

    /// Self-routes are trivial.
    #[test]
    fn self_route_is_single_node() {
        for kind in TopologyKind::PAPER {
            assert_eq!(route(kind, 64, 7, 7).unwrap(), vec![7]);
        }
    }

    /// Total crossings equal the total NFI distance: the link-load view is
    /// an exact refinement of the ACD view.
    #[test]
    fn crossings_equal_total_distance() {
        let particles = sample(Distribution::uniform(), 6, 500, 11);
        for topo in [TopologyKind::Torus, TopologyKind::Hypercube, TopologyKind::Quadtree] {
            let asg = Assignment::new(&particles, 6, CurveKind::Hilbert, 64);
            let machine = Machine::new(topo, 64, CurveKind::Hilbert);
            let load = nfi_link_load(&asg, &machine, 1, Norm::Chebyshev);
            let nfi = crate::nfi::nfi_acd(&asg, &machine, 1, Norm::Chebyshev).unwrap();
            assert_eq!(load.crossings, nfi.total_distance, "{topo}");
            assert_eq!(load.messages, nfi.num_comms, "{topo}");
        }
    }

    /// The Hilbert curve should not only reduce total distance but also keep
    /// the worst link no more loaded than row-major's worst link.
    #[test]
    fn hilbert_congestion_no_worse_than_row_major() {
        let particles = sample(Distribution::uniform(), 7, 2000, 3);
        let machine_of = |c| Machine::grid(TopologyKind::Torus, 256, c);
        let load_of = |c| {
            let asg = Assignment::new(&particles, 7, c, 256);
            nfi_link_load(&asg, &machine_of(c), 1, Norm::Chebyshev)
        };
        let hilbert = load_of(CurveKind::Hilbert);
        let row = load_of(CurveKind::RowMajor);
        assert!(
            hilbert.max_load() <= row.max_load(),
            "hilbert max {} vs row-major max {}",
            hilbert.max_load(),
            row.max_load()
        );
    }

    /// Quadtree routes pass through encoded switch nodes, never through
    /// other leaves.
    #[test]
    fn quadtree_routes_use_switches() {
        let path = route(TopologyKind::Quadtree, 64, 0, 63).unwrap();
        // 0 and 63 are in different top quadrants: path length = diameter.
        assert_eq!(path.len() - 1, 6);
        for &node in &path[1..path.len() - 1] {
            assert!(node >> 56 != 0, "intermediate {node} is not a switch");
        }
    }

    /// Imbalance statistics behave sensibly.
    #[test]
    fn load_statistics() {
        let mut load = LinkLoad {
            total_links: 4,
            ..LinkLoad::default()
        };
        load.record_path(&[0, 1, 2]);
        load.record_path(&[0, 1]);
        assert_eq!(load.crossings, 3);
        assert_eq!(load.max_load(), 2);
        // Two of four links are active: the all-links mean counts the idle
        // pair, the active mean does not.
        assert!((load.mean_load() - 0.75).abs() < 1e-12);
        assert!((load.mean_active_load() - 1.5).abs() < 1e-12);
        assert!((load.imbalance() - 2.0 / 0.75).abs() < 1e-12);
        let empty = LinkLoad::default();
        assert_eq!(empty.max_load(), 0);
        assert_eq!(empty.mean_load(), 0.0);
        assert_eq!(empty.mean_active_load(), 0.0);
        assert_eq!(empty.imbalance(), 0.0);
    }

    /// Regression: a workload that concentrates all traffic on 2 of 1000
    /// links used to report imbalance ≈ 1.0 ("perfectly balanced") because
    /// idle links were left out of the mean. It must report ≫ 1.
    #[test]
    fn concentrated_traffic_reports_large_imbalance() {
        let mut load = LinkLoad {
            total_links: 1000,
            ..LinkLoad::default()
        };
        for _ in 0..50 {
            load.record_path(&[0, 1, 2]); // the same 2 links, every message
        }
        assert_eq!(load.max_load(), 50);
        // The buggy active-links mean still says "balanced"...
        assert!((load.mean_active_load() - 50.0).abs() < 1e-12);
        // ...while the fixed mean exposes the concentration.
        assert!((load.mean_load() - 0.1).abs() < 1e-12);
        assert!(load.imbalance() > 100.0, "imbalance {}", load.imbalance());
    }

    /// Regression: mesh/torus routing used to derive the grid side from a
    /// truncated f64 sqrt, silently mis-routing non-square node counts in
    /// release builds. They are now a typed error.
    #[test]
    fn non_square_mesh_routing_rejected() {
        for nodes in [2u64, 32, 48, 1000] {
            for kind in [TopologyKind::Mesh, TopologyKind::Torus] {
                match route(kind, nodes, 0, 1) {
                    Err(SfcError::NonSquareMesh { nodes: got }) => assert_eq!(got, nodes),
                    other => panic!("{kind} with {nodes} nodes: expected error, got {other:?}"),
                }
            }
        }
        // Square-but-not-power-of-four counts are legitimately routable.
        let path = route(TopologyKind::Mesh, 25, 0, 24).unwrap();
        assert_eq!(path.len() - 1, 8); // (0,0) -> (4,4) on a 5×5 mesh
    }
}
