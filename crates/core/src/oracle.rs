//! Dense rank-to-rank hop-distance oracle.
//!
//! Every ACD metric in the paper reduces to summing [`Machine::distance`]
//! over millions of (rank, rank) pairs, and each call pays a dyn-`Topology`
//! virtual dispatch, a `node_of_rank` indirection, and the topology's
//! closed-form arithmetic (for the quadtree, a bit-twiddling LCA walk).
//! [`DistanceOracle`] precomputes the full `P × P` hop matrix once at
//! machine construction so the kernels' inner loop becomes one
//! multiply-add and a `u16` load.
//!
//! ## Memory envelope and fallback
//!
//! The table is a flat `Box<[u16]>` of `P²` entries. Construction is gated
//! at [`MAX_ORACLE_ENTRIES`] (`2²⁴` entries = 32 MiB, i.e. `P ≤ 4096`);
//! above the threshold [`Machine`](crate::Machine) falls back to the
//! closed-form path. Distances are stored *exactly* — a diameter that does
//! not fit `u16` is a typed [`SfcError::OracleDistanceOverflow`], never a
//! silent saturation — so results are bit-identical with the oracle on or
//! off, which the test suite checks.
//!
//! [`Machine::distance`]: crate::Machine::distance

use crate::error::SfcError;
use sfc_topology::{NodeId, Topology};

/// Largest `P²` table the oracle will materialize: `2²⁴` `u16` entries,
/// 32 MiB, reached at `P = 4096`. Chosen so every configuration the paper
/// sweeps (`P ≤ 65 536 / 4^scale`, and `P = 65 536` only at `--scale 0`
/// where the table would be 8 GiB) stays well under typical last-level
/// cache pressure while the big-`P` tail transparently uses closed forms.
pub const MAX_ORACLE_ENTRIES: u64 = 1 << 24;

/// A precomputed `P × P` rank-to-rank hop-distance matrix.
#[derive(Clone)]
pub struct DistanceOracle {
    /// Row-major `num_ranks × num_ranks` hop distances.
    table: Box<[u16]>,
    num_ranks: usize,
}

impl DistanceOracle {
    /// Build the dense table for ranks placed on `topo` by `node_of_rank`
    /// (rank `r` lives on physical node `node_of_rank[r]`).
    ///
    /// Costs `P` bulk [`Topology::fill_distance_row`] calls — one virtual
    /// call per row instead of one per pair. Returns
    /// [`SfcError::OracleDistanceOverflow`] if the topology's diameter does
    /// not fit a `u16` cell (no silent saturation).
    pub fn build(topo: &dyn Topology, node_of_rank: &[u64]) -> Result<Self, SfcError> {
        let diameter = topo.diameter();
        if diameter > u64::from(u16::MAX) {
            return Err(SfcError::OracleDistanceOverflow { diameter });
        }
        let p = node_of_rank.len();
        let n = topo.num_nodes() as usize;
        // One node-indexed scratch row per source, permuted into rank order.
        let mut node_row = vec![0u64; n];
        let mut table = vec![0u16; p * p];
        for (a, row) in table.chunks_exact_mut(p).enumerate() {
            topo.fill_distance_row(node_of_rank[a] as NodeId, &mut node_row);
            for (slot, &node_b) in row.iter_mut().zip(node_of_rank) {
                *slot = node_row[node_b as usize] as u16;
            }
        }
        Ok(DistanceOracle {
            table: table.into_boxed_slice(),
            num_ranks: p,
        })
    }

    /// Number of ranks the table covers.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// The full distance row of `rank`: `row(a)[b]` is the hop distance
    /// from rank `a` to rank `b`. Kernels hoist this borrow out of their
    /// inner scan so the per-pair cost is a single indexed load.
    #[inline]
    pub fn row(&self, rank: u32) -> &[u16] {
        let a = rank as usize;
        match self.table.get(a * self.num_ranks..(a + 1) * self.num_ranks) {
            Some(row) => row,
            None => panic!(
                "rank {rank} out of range for a distance oracle over {} ranks",
                self.num_ranks
            ),
        }
    }

    /// Hop distance between ranks `a` and `b`.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u64 {
        let b = b as usize;
        assert!(
            b < self.num_ranks,
            "rank {b} out of range for a distance oracle over {} ranks",
            self.num_ranks
        );
        u64::from(self.row(a)[b])
    }

    /// Bytes held by the table, for memory-envelope reporting.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u16>()
    }
}

impl std::fmt::Debug for DistanceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistanceOracle")
            .field("num_ranks", &self.num_ranks)
            .field("table_bytes", &self.table_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_topology::{Bus, Hypercube, Mesh2d, QuadtreeNet, Ring, Torus2d};

    #[test]
    fn oracle_matches_closed_form_identity_placement() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Bus::new(16)),
            Box::new(Ring::new(16)),
            Box::new(Mesh2d::square(2)),
            Box::new(Torus2d::square(2)),
            Box::new(QuadtreeNet::new(2)),
            Box::new(Hypercube::new(4)),
        ];
        for topo in &topos {
            let p = topo.num_nodes();
            let identity: Vec<u64> = (0..p).collect();
            let oracle = DistanceOracle::build(topo.as_ref(), &identity).unwrap();
            for a in 0..p as u32 {
                for b in 0..p as u32 {
                    assert_eq!(
                        oracle.distance(a, b),
                        topo.distance(a as u64, b as u64),
                        "{} {a}->{b}",
                        topo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_respects_rank_permutation() {
        // Reverse placement on a bus: rank r lives on node p-1-r.
        let topo = Bus::new(8);
        let placement: Vec<u64> = (0..8).rev().collect();
        let oracle = DistanceOracle::build(&topo, &placement).unwrap();
        assert_eq!(oracle.distance(0, 7), 7);
        assert_eq!(oracle.distance(0, 1), 1); // nodes 7 and 6
        assert_eq!(oracle.distance(3, 3), 0);
    }

    #[test]
    fn diameter_overflow_is_a_typed_error() {
        // A bus longer than u16::MAX hops end to end. Building the full
        // table would be enormous, so the check must fire before any
        // allocation proportional to P².
        let topo = Bus::new(1 << 20);
        let err = DistanceOracle::build(&topo, &[0, 1 << 19]).unwrap_err();
        match err {
            SfcError::OracleDistanceOverflow { diameter } => {
                assert_eq!(diameter, (1 << 20) - 1)
            }
            other => panic!("expected overflow error, got {other:?}"),
        }
    }

    #[test]
    fn row_borrow_matches_distance() {
        let topo = Torus2d::square(3);
        let identity: Vec<u64> = (0..64).collect();
        let oracle = DistanceOracle::build(&topo, &identity).unwrap();
        for a in 0..64u32 {
            let row = oracle.row(a);
            assert_eq!(row.len(), 64);
            for b in 0..64u32 {
                assert_eq!(u64::from(row[b as usize]), oracle.distance(a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range for a distance oracle")]
    fn out_of_range_rank_names_the_bounds() {
        let topo = Ring::new(4);
        let oracle = DistanceOracle::build(&topo, &[0, 1, 2, 3]).unwrap();
        let _ = oracle.distance(0, 9);
    }

    #[test]
    fn table_bytes_reports_the_envelope() {
        let topo = Ring::new(32);
        let identity: Vec<u64> = (0..32).collect();
        let oracle = DistanceOracle::build(&topo, &identity).unwrap();
        assert_eq!(oracle.table_bytes(), 32 * 32 * 2);
    }
}
