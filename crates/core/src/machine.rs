//! The machine model: a topology plus a processor-order SFC — step 3 of the
//! paper's algorithm.
//!
//! [`Machine`] resolves application ranks to physical nodes *once* at
//! construction (the rank→node table is `p` entries) so that the metric
//! loops, which call [`Machine::distance`] tens of millions of times per
//! trial, pay only a table load and a closed-form hop computation per call.

use crate::error::SfcError;
use sfc_curves::CurveKind;
use sfc_topology::{RankMap, SfcRankMap, Topology, TopologyKind};

/// A concrete parallel machine: `p` ranks placed on a network.
pub struct Machine {
    topo: Box<dyn Topology>,
    /// Physical node of each rank; identity for non-grid topologies.
    node_of_rank: Vec<u64>,
    /// Processor-order curve, if one applies.
    processor_curve: Option<CurveKind>,
}

impl Machine {
    /// Build a machine on `kind` with `num_ranks` processors. For grid
    /// topologies (mesh, torus) the ranks are placed along `processor_curve`;
    /// for the others the curve is ignored and the canonical numbering is
    /// used, matching the paper ("applies only to mesh and torus
    /// topologies").
    pub fn new(kind: TopologyKind, num_ranks: u64, processor_curve: CurveKind) -> Self {
        let topo = kind.build(num_ranks);
        Self::on_topology(topo, processor_curve)
    }

    /// Fallible variant of [`Machine::new`]: reports a processor count that
    /// is not a power of four as a typed error instead of panicking, so
    /// sweep harnesses can validate a configuration before running it.
    pub fn try_new(
        kind: TopologyKind,
        num_ranks: u64,
        processor_curve: CurveKind,
    ) -> Result<Self, SfcError> {
        if !num_ranks.is_power_of_two() || !num_ranks.trailing_zeros().is_multiple_of(2) {
            return Err(SfcError::NonPowerOfFourProcessors {
                num_processors: num_ranks,
            });
        }
        Ok(Self::new(kind, num_ranks, processor_curve))
    }

    /// Build a machine on a grid topology with an SFC rank placement.
    /// Convenience alias of [`Machine::new`] that documents intent at call
    /// sites.
    pub fn grid(kind: TopologyKind, num_ranks: u64, processor_curve: CurveKind) -> Self {
        assert!(
            matches!(kind, TopologyKind::Mesh | TopologyKind::Torus),
            "Machine::grid expects a mesh or torus, got {kind}"
        );
        Self::new(kind, num_ranks, processor_curve)
    }

    /// Build from an already-constructed topology.
    pub fn on_topology(topo: Box<dyn Topology>, processor_curve: CurveKind) -> Self {
        let p = topo.num_nodes();
        let (node_of_rank, used_curve) = match topo.grid_side() {
            Some(side) => {
                let map = SfcRankMap::for_side(processor_curve, side);
                ((0..p).map(|r| map.node_of(r)).collect(), Some(processor_curve))
            }
            None => ((0..p).collect(), None),
        };
        Machine {
            topo,
            node_of_rank,
            processor_curve: used_curve,
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u64 {
        self.node_of_rank.len() as u64
    }

    /// Total directed links of the underlying network, idle ones included
    /// ([`Topology::num_links`]) — the denominator for link-load averages.
    pub fn num_links(&self) -> u64 {
        self.topo.num_links()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The processor-order curve actually in effect (`None` on non-grid
    /// topologies).
    pub fn processor_curve(&self) -> Option<CurveKind> {
        self.processor_curve
    }

    /// Hop distance between the processors hosting ranks `a` and `b`.
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u64 {
        self.topo.distance(
            self.node_of_rank[a as usize],
            self.node_of_rank[b as usize],
        )
    }

    /// Physical node of a rank.
    #[inline]
    pub fn node_of(&self, rank: u32) -> u64 {
        self.node_of_rank[rank as usize]
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("topology", &self.topo.name())
            .field("ranks", &self.num_ranks())
            .field("processor_curve", &self.processor_curve)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_machine_uses_curve_placement() {
        let m = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        assert_eq!(m.num_ranks(), 64);
        assert_eq!(m.processor_curve(), Some(CurveKind::Hilbert));
        // Hilbert consecutive ranks are physically adjacent.
        for r in 0..63u32 {
            assert_eq!(m.distance(r, r + 1), 1);
        }
    }

    #[test]
    fn non_grid_machine_ignores_curve() {
        let m = Machine::new(TopologyKind::Hypercube, 64, CurveKind::Hilbert);
        assert_eq!(m.processor_curve(), None);
        // Identity placement: distance = Hamming of rank ids.
        assert_eq!(m.distance(0, 63), 6);
        assert_eq!(m.distance(5, 5), 0);
    }

    #[test]
    fn row_major_on_mesh_matches_grid_arithmetic() {
        let m = Machine::grid(TopologyKind::Mesh, 16, CurveKind::RowMajor);
        // Rank 0 at (0,0), rank 15 at (3,3): 6 hops.
        assert_eq!(m.distance(0, 15), 6);
        // Rank 3 at (3,0), rank 4 at (0,1): 4 hops.
        assert_eq!(m.distance(3, 4), 4);
    }

    #[test]
    fn quadtree_machine_identity_ranks() {
        let m = Machine::new(TopologyKind::Quadtree, 16, CurveKind::ZCurve);
        assert_eq!(m.processor_curve(), None);
        assert_eq!(m.distance(0, 1), 2);
        assert_eq!(m.distance(0, 15), 4);
    }

    #[test]
    #[should_panic(expected = "expects a mesh or torus")]
    fn grid_constructor_rejects_non_grids() {
        let _ = Machine::grid(TopologyKind::Hypercube, 64, CurveKind::Hilbert);
    }

    #[test]
    fn try_new_validates_processor_count() {
        use crate::error::SfcError;
        for bad in [0u64, 3, 32, 48, 100] {
            match Machine::try_new(TopologyKind::Torus, bad, CurveKind::Hilbert) {
                Err(SfcError::NonPowerOfFourProcessors { num_processors }) => {
                    assert_eq!(num_processors, bad)
                }
                other => panic!("expected error for {bad}, got {other:?}"),
            }
        }
        let m = Machine::try_new(TopologyKind::Torus, 64, CurveKind::Hilbert).unwrap();
        assert_eq!(m.num_ranks(), 64);
    }

    #[test]
    fn num_links_delegates_to_topology() {
        // 8×8 torus: 2 rings per row and column of 8 edges each.
        let m = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        assert_eq!(m.num_links(), 2 * (8 * 8 + 8 * 8));
        let m = Machine::new(TopologyKind::Hypercube, 64, CurveKind::Hilbert);
        assert_eq!(m.num_links(), 64 * 6);
    }

    #[test]
    fn distance_symmetry_spot_check() {
        for kind in [TopologyKind::Mesh, TopologyKind::Torus, TopologyKind::Quadtree] {
            let m = Machine::new(kind, 256, CurveKind::Gray);
            for (a, b) in [(0u32, 255u32), (17, 200), (3, 3)] {
                assert_eq!(m.distance(a, b), m.distance(b, a));
            }
        }
    }
}
