//! The machine model: a topology plus a processor-order SFC — step 3 of the
//! paper's algorithm.
//!
//! [`Machine`] resolves application ranks to physical nodes *once* at
//! construction (the rank→node table is `p` entries), and for machines of
//! up to [`MAX_ORACLE_ENTRIES`]`.isqrt()` ranks additionally precomputes the
//! dense `P × P` hop matrix ([`DistanceOracle`]) so that the metric loops,
//! which call [`Machine::distance`] tens of millions of times per trial,
//! pay only a single `u16` table load per call. Above the threshold the
//! closed-form path is used; the two paths return bit-identical distances.

use crate::error::SfcError;
use crate::oracle::{DistanceOracle, MAX_ORACLE_ENTRIES};
use crate::Assignment;
use sfc_curves::CurveKind;
use sfc_topology::{RankMap, SfcRankMap, Topology, TopologyKind};

/// A concrete parallel machine: `p` ranks placed on a network.
pub struct Machine {
    topo: Box<dyn Topology>,
    /// Physical node of each rank; identity for non-grid topologies.
    node_of_rank: Vec<u64>,
    /// Processor-order curve, if one applies.
    processor_curve: Option<CurveKind>,
    /// Dense `P × P` hop table; `None` above the size threshold (or when
    /// explicitly disabled for ablation).
    oracle: Option<DistanceOracle>,
}

impl Machine {
    /// Build a machine on `kind` with `num_ranks` processors. For grid
    /// topologies (mesh, torus) the ranks are placed along `processor_curve`;
    /// for the others the curve is ignored and the canonical numbering is
    /// used, matching the paper ("applies only to mesh and torus
    /// topologies").
    pub fn new(kind: TopologyKind, num_ranks: u64, processor_curve: CurveKind) -> Self {
        let topo = kind.build(num_ranks);
        Self::on_topology(topo, processor_curve)
    }

    /// Fallible variant of [`Machine::new`]: reports a processor count that
    /// is not a power of four as a typed error instead of panicking, so
    /// sweep harnesses can validate a configuration before running it.
    pub fn try_new(
        kind: TopologyKind,
        num_ranks: u64,
        processor_curve: CurveKind,
    ) -> Result<Self, SfcError> {
        if !num_ranks.is_power_of_two() || !num_ranks.trailing_zeros().is_multiple_of(2) {
            return Err(SfcError::NonPowerOfFourProcessors {
                num_processors: num_ranks,
            });
        }
        Ok(Self::new(kind, num_ranks, processor_curve))
    }

    /// Build a machine on a grid topology with an SFC rank placement.
    /// Convenience alias of [`Machine::new`] that documents intent at call
    /// sites.
    pub fn grid(kind: TopologyKind, num_ranks: u64, processor_curve: CurveKind) -> Self {
        assert!(
            matches!(kind, TopologyKind::Mesh | TopologyKind::Torus),
            "Machine::grid expects a mesh or torus, got {kind}"
        );
        Self::new(kind, num_ranks, processor_curve)
    }

    /// Build from an already-constructed topology.
    pub fn on_topology(topo: Box<dyn Topology>, processor_curve: CurveKind) -> Self {
        let p = topo.num_nodes();
        let (node_of_rank, used_curve): (Vec<u64>, _) = match topo.grid_side() {
            Some(side) => {
                let map = SfcRankMap::for_side(processor_curve, side);
                ((0..p).map(|r| map.node_of(r)).collect(), Some(processor_curve))
            }
            None => ((0..p).collect(), None),
        };
        // Materialize the dense hop table when it fits the memory envelope.
        // A diameter overflowing u16 (only reachable on topologies far past
        // the threshold anyway) degrades to the closed-form path rather than
        // failing construction: distances are identical either way.
        let oracle = if p.checked_mul(p).is_some_and(|e| e <= MAX_ORACLE_ENTRIES) {
            DistanceOracle::build(topo.as_ref(), &node_of_rank).ok()
        } else {
            None
        };
        Machine {
            topo,
            node_of_rank,
            processor_curve: used_curve,
            oracle,
        }
    }

    /// This machine with the distance oracle dropped, forcing every
    /// [`Machine::distance`] call through the closed-form topology path.
    /// Ablation/benchmark knob; metric results are bit-identical with the
    /// oracle on or off.
    pub fn without_oracle(mut self) -> Self {
        self.oracle = None;
        self
    }

    /// Whether the dense hop table is in effect (machines over the
    /// [`MAX_ORACLE_ENTRIES`] envelope, or explicitly ablated, run without
    /// one).
    pub fn has_oracle(&self) -> bool {
        self.oracle.is_some()
    }

    /// The hop-distance row of `rank` as `u16` entries, when the oracle is
    /// present. Kernels hoist this borrow per particle so the inner scan is
    /// one indexed load per pair.
    #[inline]
    pub fn distance_row(&self, rank: u32) -> Option<&[u16]> {
        self.oracle.as_ref().map(|o| o.row(rank))
    }

    /// Check that every rank the assignment addresses exists on this
    /// machine, as a typed error instead of a mid-kernel panic.
    pub fn check_assignment(&self, asg: &Assignment) -> Result<(), SfcError> {
        if asg.num_ranks() > self.num_ranks() {
            return Err(SfcError::MachineTooSmall {
                machine_ranks: self.num_ranks(),
                assignment_ranks: asg.num_ranks(),
            });
        }
        Ok(())
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u64 {
        self.node_of_rank.len() as u64
    }

    /// Total directed links of the underlying network, idle ones included
    /// ([`Topology::num_links`]) — the denominator for link-load averages.
    pub fn num_links(&self) -> u64 {
        self.topo.num_links()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// The processor-order curve actually in effect (`None` on non-grid
    /// topologies).
    pub fn processor_curve(&self) -> Option<CurveKind> {
        self.processor_curve
    }

    /// Hop distance between the processors hosting ranks `a` and `b`.
    ///
    /// Served from the dense [`DistanceOracle`] when present; the
    /// closed-form topology path otherwise. An out-of-range rank panics
    /// with a message naming the rank and the machine size (not a bare
    /// slice-index abort).
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u64 {
        if let Some(oracle) = &self.oracle {
            return oracle.distance(a, b);
        }
        self.topo.distance(self.node_of(a), self.node_of(b))
    }

    /// Physical node of a rank. Panics with a bounds message naming the
    /// rank when it exceeds the machine.
    #[inline]
    pub fn node_of(&self, rank: u32) -> u64 {
        match self.node_of_rank.get(rank as usize) {
            Some(&node) => node,
            None => panic!(
                "rank {rank} out of range for a machine with {} ranks",
                self.node_of_rank.len()
            ),
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("topology", &self.topo.name())
            .field("ranks", &self.num_ranks())
            .field("processor_curve", &self.processor_curve)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_machine_uses_curve_placement() {
        let m = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        assert_eq!(m.num_ranks(), 64);
        assert_eq!(m.processor_curve(), Some(CurveKind::Hilbert));
        // Hilbert consecutive ranks are physically adjacent.
        for r in 0..63u32 {
            assert_eq!(m.distance(r, r + 1), 1);
        }
    }

    #[test]
    fn non_grid_machine_ignores_curve() {
        let m = Machine::new(TopologyKind::Hypercube, 64, CurveKind::Hilbert);
        assert_eq!(m.processor_curve(), None);
        // Identity placement: distance = Hamming of rank ids.
        assert_eq!(m.distance(0, 63), 6);
        assert_eq!(m.distance(5, 5), 0);
    }

    #[test]
    fn row_major_on_mesh_matches_grid_arithmetic() {
        let m = Machine::grid(TopologyKind::Mesh, 16, CurveKind::RowMajor);
        // Rank 0 at (0,0), rank 15 at (3,3): 6 hops.
        assert_eq!(m.distance(0, 15), 6);
        // Rank 3 at (3,0), rank 4 at (0,1): 4 hops.
        assert_eq!(m.distance(3, 4), 4);
    }

    #[test]
    fn quadtree_machine_identity_ranks() {
        let m = Machine::new(TopologyKind::Quadtree, 16, CurveKind::ZCurve);
        assert_eq!(m.processor_curve(), None);
        assert_eq!(m.distance(0, 1), 2);
        assert_eq!(m.distance(0, 15), 4);
    }

    #[test]
    #[should_panic(expected = "expects a mesh or torus")]
    fn grid_constructor_rejects_non_grids() {
        let _ = Machine::grid(TopologyKind::Hypercube, 64, CurveKind::Hilbert);
    }

    #[test]
    fn try_new_validates_processor_count() {
        use crate::error::SfcError;
        for bad in [0u64, 3, 32, 48, 100] {
            match Machine::try_new(TopologyKind::Torus, bad, CurveKind::Hilbert) {
                Err(SfcError::NonPowerOfFourProcessors { num_processors }) => {
                    assert_eq!(num_processors, bad)
                }
                other => panic!("expected error for {bad}, got {other:?}"),
            }
        }
        let m = Machine::try_new(TopologyKind::Torus, 64, CurveKind::Hilbert).unwrap();
        assert_eq!(m.num_ranks(), 64);
    }

    #[test]
    fn num_links_delegates_to_topology() {
        // 8×8 torus: 2 rings per row and column of 8 edges each.
        let m = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        assert_eq!(m.num_links(), 2 * (8 * 8 + 8 * 8));
        let m = Machine::new(TopologyKind::Hypercube, 64, CurveKind::Hilbert);
        assert_eq!(m.num_links(), 64 * 6);
    }

    #[test]
    fn distance_symmetry_spot_check() {
        for kind in [TopologyKind::Mesh, TopologyKind::Torus, TopologyKind::Quadtree] {
            let m = Machine::new(kind, 256, CurveKind::Gray);
            for (a, b) in [(0u32, 255u32), (17, 200), (3, 3)] {
                assert_eq!(m.distance(a, b), m.distance(b, a));
            }
        }
    }

    #[test]
    fn small_machines_carry_an_oracle_and_it_can_be_ablated() {
        let m = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        assert!(m.has_oracle());
        assert_eq!(m.distance_row(0).unwrap().len(), 64);
        let m = m.without_oracle();
        assert!(!m.has_oracle());
        assert!(m.distance_row(0).is_none());
    }

    #[test]
    fn above_the_size_threshold_the_fallback_stays_bit_identical() {
        // 16,384² entries exceed MAX_ORACLE_ENTRIES, so construction skips
        // the table and every distance takes the closed-form path — the
        // same path `without_oracle` exercises, which the property test
        // above pins against the cached path pair by pair. Here we check
        // the threshold actually trips and the fallback still matches the
        // raw topology.
        let p = 16_384u64;
        assert!(p * p > crate::oracle::MAX_ORACLE_ENTRIES);
        let m = Machine::new(TopologyKind::Torus, p, CurveKind::Hilbert);
        assert!(!m.has_oracle());
        assert!(m.distance_row(0).is_none());
        let topo = TopologyKind::Torus.build(p);
        for (a, b) in [(0u32, 1u32), (5, 16_000), (9_999, 123), (777, 777)] {
            assert_eq!(m.distance(a, b), topo.distance(m.node_of(a), m.node_of(b)));
        }
    }

    #[test]
    fn oracle_and_closed_form_agree_on_every_pair() {
        for kind in [
            TopologyKind::Bus,
            TopologyKind::Ring,
            TopologyKind::Mesh,
            TopologyKind::Torus,
            TopologyKind::Quadtree,
            TopologyKind::Hypercube,
        ] {
            for curve in [CurveKind::Hilbert, CurveKind::ZCurve] {
                for p in [4u64, 16, 64, 256] {
                    let cached = Machine::new(kind, p, curve);
                    let plain = Machine::new(kind, p, curve).without_oracle();
                    assert!(cached.has_oracle());
                    for a in 0..p as u32 {
                        for b in 0..p as u32 {
                            assert_eq!(
                                cached.distance(a, b),
                                plain.distance(a, b),
                                "{kind} {curve:?} P={p} {a}->{b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range for a machine with 16 ranks")]
    fn out_of_range_rank_panics_with_bounds_message() {
        let m = Machine::grid(TopologyKind::Mesh, 16, CurveKind::Hilbert).without_oracle();
        let _ = m.distance(0, 99);
    }

    #[test]
    fn check_assignment_reports_undersized_machines() {
        use sfc_curves::Point2;
        let particles = vec![Point2::new(0, 0), Point2::new(1, 1)];
        let asg = Assignment::new(&particles, 2, CurveKind::Hilbert, 64);
        let small = Machine::grid(TopologyKind::Mesh, 16, CurveKind::Hilbert);
        match small.check_assignment(&asg) {
            Err(SfcError::MachineTooSmall {
                machine_ranks,
                assignment_ranks,
            }) => {
                assert_eq!(machine_ranks, 16);
                assert_eq!(assignment_ranks, 64);
            }
            other => panic!("expected MachineTooSmall, got {other:?}"),
        }
        let big = Machine::grid(TopologyKind::Mesh, 64, CurveKind::Hilbert);
        assert!(big.check_assignment(&asg).is_ok());
    }
}
