//! A minimal, dependency-free SHA-256 (FIPS 180-4).
//!
//! The content-addressed result cache ([`crate::cache`]) keys experiment
//! artifacts by the digest of their canonical spec serialization. The
//! container ships no crypto crate, and a cache key needs no hardware
//! acceleration — a straightforward scalar implementation of the standard is
//! plenty: hashing a spec is a few hundred bytes, microseconds against
//! sweeps that run for seconds.
//!
//! Verified against the FIPS 180-4 test vectors (empty string, `"abc"`, the
//! two-block `"abcdbcde..."` message) in this module's tests.

/// Round constants: the first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

fn compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// SHA-256 digest of `data` as 32 raw bytes.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut state, block);
    }

    // Padding: 0x80, zeros, then the message length in bits as a big-endian
    // u64 — one or two final blocks depending on how much room the tail
    // leaves.
    let tail = chunks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut last = [0u8; 128];
    last[..tail.len()].copy_from_slice(tail);
    last[tail.len()] = 0x80;
    let blocks = if tail.len() + 9 <= 64 { 1 } else { 2 };
    last[blocks * 64 - 8..blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    for block in last[..blocks * 64].chunks_exact(64) {
        compress(&mut state, block);
    }

    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-256 digest of `data` as a lowercase hex string (64 characters).
pub fn sha256_hex(data: &[u8]) -> String {
    let digest = sha256(data);
    let mut out = String::with_capacity(64);
    for byte in digest {
        use std::fmt::Write;
        write!(out, "{byte:02x}").expect("write to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP reference digests.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 55/56 byte single/double-block padding edge and
        // the 64-byte block edge must all round-trip through the hex API
        // without panicking and produce distinct digests.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=130 {
            let data = vec![0x5au8; len];
            assert!(seen.insert(sha256_hex(&data)), "collision at length {len}");
        }
    }
}
