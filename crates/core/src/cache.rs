//! Content-addressed cache of rendered experiment artifacts.
//!
//! Regenerating a paper artifact is expensive (minutes of sweep cells) but
//! perfectly deterministic: the workspace guarantees byte-identical output
//! for a given [`ExperimentSpec`] at every `--jobs` value. That makes the
//! artifact a pure function of the spec and the kernel implementation — so
//! it can be cached by content address and served back without recomputing
//! a single sweep cell.
//!
//! ## Keying
//!
//! A cache entry's directory name is
//! `sha256(canonical_spec_json + "\n" + KERNEL_VERSION)`. Including
//! [`KERNEL_VERSION`] in the hashed material means a change to any metric
//! kernel or renderer is published by bumping one constant: every old entry
//! silently misses (the key changes), no scanning or invalidation pass
//! required. Old directories are inert garbage, safe to delete at leisure.
//!
//! ## Layout
//!
//! ```text
//! <root>/<key>/
//!   meta.json     # kernel_version + spec_hash + artifact, for humans/tools
//!   spec.json     # the canonical spec serialization
//!   stdout.txt    # full plain-mode stdout, banner included
//!   stdout.md     # full markdown-mode stdout, banner included
//!   artifact.json # the machine-readable envelope (--json payload)
//! ```
//!
//! Writes go to a temporary sibling directory first and are published with a
//! single atomic `rename`, so readers never observe a half-written entry and
//! concurrent writers of the same spec race harmlessly (determinism makes
//! their payloads byte-identical).
//!
//! ## Self-healing
//!
//! A corrupt entry (unparseable or mismatched `meta.json`, a missing payload
//! file, a truncated `artifact.json`, a payload whose checksum disagrees
//! with `meta.json`) is not merely treated as a miss: [`ResultCache::load`]
//! **quarantines** it by moving the whole directory to
//! `<root>/.quarantine/<key>-<n>/`. Without that move the broken directory
//! would shadow every future [`ResultCache::store`] (which yields to an
//! existing entry), forcing the artifact to be recomputed on every request
//! forever. After quarantine the next store publishes a fresh entry and
//! subsequent loads hit. Quarantined directories are kept (not deleted) so
//! the corruption can be inspected; [`ResultCache::quarantined`] counts the
//! entries this handle has quarantined.
//!
//! ## The memory tier
//!
//! The disk tier re-reads and re-sha256-verifies three payload files on
//! *every* hit — correct, but the opposite of the locality the workspace
//! preaches. A cache opened with [`ResultCache::with_memory_budget`] keeps
//! a **byte-budgeted, sharded in-memory LRU tier** in front of the disk:
//!
//! * entries enter the tier when [`store`](ResultCache::store) publishes
//!   them and when a disk load verifies them (**promotion**), so every
//!   artifact in memory has passed the checksum gate exactly once;
//! * a [`load`](ResultCache::load) consults memory first — a memory hit
//!   returns the very same [`Arc<CachedArtifact>`] with **zero file I/O and
//!   zero re-hashing**;
//! * the tier is sharded by key (one mutex per shard) so concurrent daemon
//!   workers do not serialize on one lock, and each shard evicts its
//!   least-recently-used entries once its slice of the byte budget
//!   overflows — evicted keys fall back to the (still verified) disk tier
//!   with identical bytes;
//! * [`quarantine`](ResultCache::load)-ing a key also evicts it from the
//!   memory tier, so a corrupt key never survives in either tier.
//!
//! [`ResultCache::mem_stats`] snapshots the tier counters
//! (`mem_hits`/`disk_hits`/`mem_evictions`/`mem_bytes`/`mem_entries`),
//! which `sfc-serve` surfaces through its `stats` and `health` ops.

use crate::obs::{Counter, MetricsRegistry};
use crate::spec::ExperimentSpec;
use serde_json::{json, Value};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version tag of the metric kernels and artifact renderers, hashed into
/// every cache key.
///
/// Bump this whenever a change alters any artifact byte stream — a metric
/// kernel fix, a rendering tweak, an envelope field. Stale entries then miss
/// automatically because their keys no longer match.
pub const KERNEL_VERSION: &str = "2013-icpp-sfc/1";

/// The cached byte streams of one rendered artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedArtifact {
    /// Full plain-mode stdout, banner line included.
    pub stdout_plain: String,
    /// Full markdown-mode stdout, banner line included.
    pub stdout_markdown: String,
    /// The pretty-printed machine-readable envelope (the `--json` payload).
    pub artifact_json: String,
}

/// Which tier answered a [`ResultCache::load_tiered`] hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierHit {
    /// Served from the in-memory LRU tier: zero file I/O, zero hashing.
    Memory,
    /// Read and checksum-verified from disk (and promoted to memory when a
    /// tier is configured).
    Disk,
}

/// Snapshot of the memory-tier counters (all zero when the cache was opened
/// without a memory tier).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemTierStats {
    /// Loads answered from memory.
    pub mem_hits: u64,
    /// Loads answered from (verified) disk.
    pub disk_hits: u64,
    /// Entries evicted by the LRU byte budget.
    pub mem_evictions: u64,
    /// Payload bytes currently resident in the tier.
    pub mem_bytes: u64,
    /// Entries currently resident in the tier.
    pub mem_entries: u64,
}

/// The cache's cumulative counters, as shareable [`Counter`] handles.
///
/// By default a cache owns standalone counters; a daemon that wants its
/// Prometheus page to read the *same* storage the cache increments builds
/// the set from its registry with [`CacheCounters::registered`] and passes
/// it to [`ResultCache::with_observability`]. The counter handle **is** the
/// registry series, so there is no render-time copy to drift out of sync —
/// tier counts are bookkept in exactly one place.
#[derive(Debug, Clone, Default)]
pub struct CacheCounters {
    /// Loads answered from the memory tier.
    pub mem_hits: Counter,
    /// Loads answered from (verified) disk.
    pub disk_hits: Counter,
    /// Entries evicted by the LRU byte budget.
    pub mem_evictions: Counter,
    /// Corrupt entries moved to quarantine.
    pub quarantined: Counter,
}

impl CacheCounters {
    /// Register the cache counter set in `registry` under `prefix`
    /// (`<prefix>_mem_hits_total`, `<prefix>_disk_hits_total`,
    /// `<prefix>_mem_evictions_total`, `<prefix>_quarantined_total`).
    pub fn registered(registry: &MetricsRegistry, prefix: &str) -> CacheCounters {
        CacheCounters {
            mem_hits: registry.counter(
                &format!("{prefix}_mem_hits_total"),
                "Cache loads answered from the in-memory LRU tier.",
            ),
            disk_hits: registry.counter(
                &format!("{prefix}_disk_hits_total"),
                "Cache loads answered from checksum-verified disk.",
            ),
            mem_evictions: registry.counter(
                &format!("{prefix}_mem_evictions_total"),
                "Memory-tier entries evicted by the LRU byte budget.",
            ),
            quarantined: registry.counter(
                &format!("{prefix}_quarantined_total"),
                "Corrupt cache entries moved to quarantine.",
            ),
        }
    }
}

/// One resident artifact plus its LRU bookkeeping.
struct MemEntry {
    artifact: Arc<CachedArtifact>,
    bytes: u64,
    last_used: u64,
}

/// One lock's worth of the memory tier.
#[derive(Default)]
struct Shard {
    entries: HashMap<String, MemEntry>,
    bytes: u64,
}

/// The sharded in-memory LRU tier. Shared (via `Arc`) by every clone of a
/// [`ResultCache`] so daemon worker threads see one coherent tier.
struct MemTier {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget / shard count).
    shard_budget: u64,
    /// Monotonic LRU clock; ticked on every touch.
    clock: AtomicU64,
    bytes: AtomicU64,
    entries: AtomicU64,
    evictions: Counter,
}

impl std::fmt::Debug for MemTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTier")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .field("bytes", &self.bytes.load(Ordering::SeqCst))
            .finish()
    }
}

impl MemTier {
    fn new(budget_bytes: u64, shards: usize, evictions: Counter) -> MemTier {
        let shards = shards.max(1);
        MemTier {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget_bytes / shards as u64,
            clock: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            evictions,
        }
    }

    /// Lock the shard a key lives in. Keys are sha256 hex, so the first
    /// byte is already uniformly distributed — no extra hashing needed.
    fn shard(&self, key: &str) -> std::sync::MutexGuard<'_, Shard> {
        let b = key.as_bytes().first().copied().unwrap_or(0) as usize;
        self.shards[b % self.shards.len()]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn get(&self, key: &str) -> Option<Arc<CachedArtifact>> {
        let mut shard = self.shard(key);
        let entry = shard.entries.get_mut(key)?;
        entry.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.artifact))
    }

    /// Insert (or refresh) `key`, evicting least-recently-used entries
    /// until the shard fits its budget again. An artifact too large to
    /// ever fit a shard's budget is not cached at all — evicting the
    /// whole shard for it would only thrash.
    fn insert(&self, key: &str, artifact: Arc<CachedArtifact>) {
        let bytes = entry_bytes(key, &artifact);
        if bytes > self.shard_budget {
            return;
        }
        let mut shard = self.shard(key);
        if let Some(existing) = shard.entries.get_mut(key) {
            // Determinism guarantees byte-identity, so refreshing the LRU
            // stamp is all a re-insert needs to do.
            existing.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
            return;
        }
        while shard.bytes + bytes > self.shard_budget {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(evicted) = shard.entries.remove(&k) {
                        shard.bytes -= evicted.bytes;
                        self.bytes.fetch_sub(evicted.bytes, Ordering::SeqCst);
                        self.entries.fetch_sub(1, Ordering::SeqCst);
                        self.evictions.inc();
                    }
                }
                None => break,
            }
        }
        shard.bytes += bytes;
        self.bytes.fetch_add(bytes, Ordering::SeqCst);
        self.entries.fetch_add(1, Ordering::SeqCst);
        shard.entries.insert(
            key.to_string(),
            MemEntry {
                artifact,
                bytes,
                last_used: self.clock.fetch_add(1, Ordering::Relaxed),
            },
        );
    }

    /// Drop `key` from the tier (quarantine path). Not counted as an
    /// eviction — evictions measure budget pressure, not corruption.
    fn remove(&self, key: &str) {
        let mut shard = self.shard(key);
        if let Some(entry) = shard.entries.remove(key) {
            shard.bytes -= entry.bytes;
            self.bytes.fetch_sub(entry.bytes, Ordering::SeqCst);
            self.entries.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Resident cost of one entry: the three payload streams plus the key and
/// a small fixed overhead for the map slot and `Arc` bookkeeping.
fn entry_bytes(key: &str, artifact: &CachedArtifact) -> u64 {
    (artifact.stdout_plain.len()
        + artifact.stdout_markdown.len()
        + artifact.artifact_json.len()
        + key.len()
        + 64) as u64
}

/// Default shard count of the memory tier: enough to keep a daemon's
/// worker pool from serializing on one lock, few enough that tiny budgets
/// still hold a useful number of entries per shard.
pub const DEFAULT_MEM_SHARDS: usize = 8;

/// A directory of content-addressed artifact entries, optionally fronted
/// by a sharded in-memory LRU tier (see the module docs).
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
    /// The cumulative counters (quarantines, tier hits, evictions). The
    /// handles are shared across clones — and, when the cache was built
    /// with [`ResultCache::with_observability`], with a metrics registry —
    /// so a daemon's stats see every increment regardless of which worker
    /// thread (or which view of the counters) made it.
    counters: CacheCounters,
    /// The optional memory tier, shared across clones.
    mem: Option<Arc<MemTier>>,
}

impl ResultCache {
    /// Open (and create, if needed) a cache rooted at `root`, without a
    /// memory tier: every load reads and verifies from disk.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<ResultCache> {
        Self::with_observability(root, 0, DEFAULT_MEM_SHARDS, CacheCounters::default())
    }

    /// Open a cache whose loads are fronted by an in-memory LRU tier
    /// bounded to `budget_bytes` payload bytes (sharded
    /// [`DEFAULT_MEM_SHARDS`] ways). A budget of 0 disables the tier.
    pub fn with_memory_budget(
        root: impl Into<PathBuf>,
        budget_bytes: u64,
    ) -> io::Result<ResultCache> {
        Self::with_memory_tier(root, budget_bytes, DEFAULT_MEM_SHARDS)
    }

    /// [`ResultCache::with_memory_budget`] with an explicit shard count
    /// (tests pin it to 1 for deterministic LRU order; servers tune it to
    /// their worker count).
    pub fn with_memory_tier(
        root: impl Into<PathBuf>,
        budget_bytes: u64,
        shards: usize,
    ) -> io::Result<ResultCache> {
        Self::with_observability(root, budget_bytes, shards, CacheCounters::default())
    }

    /// [`ResultCache::with_memory_tier`] incrementing caller-supplied
    /// [`CacheCounters`] — typically handles registered in a
    /// [`MetricsRegistry`], making the registry the single bookkeeper of
    /// the tier counters.
    pub fn with_observability(
        root: impl Into<PathBuf>,
        budget_bytes: u64,
        shards: usize,
        counters: CacheCounters,
    ) -> io::Result<ResultCache> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mem = (budget_bytes > 0).then(|| {
            Arc::new(MemTier::new(
                budget_bytes,
                shards,
                counters.mem_evictions.clone(),
            ))
        });
        Ok(ResultCache {
            root,
            counters,
            mem,
        })
    }

    /// Snapshot the tier counters.
    pub fn mem_stats(&self) -> MemTierStats {
        MemTierStats {
            mem_hits: self.counters.mem_hits.get(),
            disk_hits: self.counters.disk_hits.get(),
            mem_evictions: self.counters.mem_evictions.get(),
            mem_bytes: self
                .mem
                .as_ref()
                .map_or(0, |m| m.bytes.load(Ordering::SeqCst)),
            mem_entries: self
                .mem
                .as_ref()
                .map_or(0, |m| m.entries.load(Ordering::SeqCst)),
        }
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The content address of `spec` under the current [`KERNEL_VERSION`].
    pub fn key(spec: &ExperimentSpec) -> String {
        let material = format!("{}\n{}", spec.canonical_string(), KERNEL_VERSION);
        crate::sha256::sha256_hex(material.as_bytes())
    }

    /// Directory a `spec`'s entry lives in (whether or not it exists yet).
    pub fn entry_dir(&self, spec: &ExperimentSpec) -> PathBuf {
        self.root.join(Self::key(spec))
    }

    /// Load the cached artifact for `spec`, or `None` on a miss.
    ///
    /// A *corrupt* entry — unparseable or mismatched `meta.json`, a missing
    /// payload file, an `artifact.json` that no longer parses (truncation),
    /// or a payload whose checksum disagrees with `meta.json` — is
    /// quarantined to `<root>/.quarantine/<key>-<n>/` and reported as a
    /// miss, so the next [`store`](ResultCache::store) can publish a clean
    /// replacement instead of being shadowed forever.
    pub fn load(&self, spec: &ExperimentSpec) -> Option<CachedArtifact> {
        self.load_tiered(spec).map(|(a, _)| (*a).clone())
    }

    /// [`ResultCache::load`] without the final clone: the artifact arrives
    /// behind an `Arc`, which on a memory hit is the very allocation the
    /// tier holds.
    pub fn load_arc(&self, spec: &ExperimentSpec) -> Option<Arc<CachedArtifact>> {
        self.load_tiered(spec).map(|(a, _)| a)
    }

    /// Load with tier provenance: memory first (zero file I/O, zero
    /// hashing), then verified disk, promoting a disk hit into the memory
    /// tier so its next load is a memory hit.
    pub fn load_tiered(&self, spec: &ExperimentSpec) -> Option<(Arc<CachedArtifact>, TierHit)> {
        let key = Self::key(spec);
        if let Some(mem) = &self.mem {
            if let Some(artifact) = mem.get(&key) {
                self.counters.mem_hits.inc();
                return Some((artifact, TierHit::Memory));
            }
        }
        let dir = self.entry_dir(spec);
        if !dir.exists() {
            return None;
        }
        match self.load_entry(&dir, spec) {
            Ok(artifact) => {
                self.counters.disk_hits.inc();
                let artifact = Arc::new(artifact);
                if let Some(mem) = &self.mem {
                    mem.insert(&key, Arc::clone(&artifact));
                }
                Some((artifact, TierHit::Disk))
            }
            Err(reason) => {
                self.quarantine(&dir, &key, &reason);
                None
            }
        }
    }

    /// Read and validate one entry directory, describing what is wrong with
    /// it on failure.
    fn load_entry(&self, dir: &Path, spec: &ExperimentSpec) -> Result<CachedArtifact, String> {
        let meta_text = fs::read_to_string(dir.join("meta.json"))
            .map_err(|e| format!("meta.json unreadable: {e}"))?;
        let meta: Value =
            serde_json::from_str(&meta_text).map_err(|e| format!("meta.json unparseable: {e}"))?;
        if meta.get("kernel_version").and_then(Value::as_str) != Some(KERNEL_VERSION) {
            return Err("meta.json kernel_version mismatch".to_string());
        }
        if meta.get("spec_hash").and_then(Value::as_str)
            != Some(spec.canonical_hash()).as_deref()
        {
            return Err("meta.json spec_hash mismatch".to_string());
        }
        let read = |name: &str| -> Result<String, String> {
            let text = fs::read_to_string(dir.join(name))
                .map_err(|e| format!("{name} unreadable: {e}"))?;
            // Entries written since checksums were introduced carry the
            // payload hashes in meta.json; verify when present (older
            // entries without them stay loadable).
            if let Some(expected) = meta
                .get("payload_sha256")
                .and_then(|c| c.get(name))
                .and_then(Value::as_str)
            {
                let actual = crate::sha256::sha256_hex(text.as_bytes());
                if actual != expected {
                    return Err(format!("{name} checksum mismatch (truncated or edited)"));
                }
            }
            Ok(text)
        };
        let artifact_json = read("artifact.json")?;
        // Even without a checksum, the envelope must at least still be
        // valid JSON — a truncated file is not.
        serde_json::from_str::<Value>(&artifact_json)
            .map_err(|e| format!("artifact.json unparseable (truncated?): {e}"))?;
        Ok(CachedArtifact {
            stdout_plain: read("stdout.txt")?,
            stdout_markdown: read("stdout.md")?,
            artifact_json,
        })
    }

    /// Move a corrupt entry out of the way, into
    /// `<root>/.quarantine/<key>-<n>/` (first free `n`). Best-effort: a
    /// concurrent quarantine of the same entry may win the rename, which is
    /// fine — the goal is only that the entry no longer shadows stores.
    /// The key is also evicted from the memory tier, so a quarantined key
    /// is gone from *both* tiers at once.
    fn quarantine(&self, dir: &Path, key: &str, reason: &str) {
        if let Some(mem) = &self.mem {
            mem.remove(key);
        }
        let qroot = self.root.join(".quarantine");
        if let Err(e) = fs::create_dir_all(&qroot) {
            eprintln!("# cache: cannot create quarantine dir: {e}");
            let _ = fs::remove_dir_all(dir);
            self.counters.quarantined.inc();
            return;
        }
        for n in 0u32.. {
            let target = qroot.join(format!("{key}-{n}"));
            if target.exists() {
                continue;
            }
            match fs::rename(dir, &target) {
                Ok(()) => {
                    eprintln!(
                        "# cache: quarantined corrupt entry {key} -> {}: {reason}",
                        target.display()
                    );
                    self.counters.quarantined.inc();
                    return;
                }
                Err(_) if !dir.exists() => {
                    // Another handle quarantined (or deleted) it first.
                    return;
                }
                Err(_) if target.exists() => {
                    // Lost the race for this slot number; try the next.
                    continue;
                }
                Err(e) => {
                    eprintln!(
                        "# cache: cannot quarantine {key} ({reason}); removing instead: {e}"
                    );
                    let _ = fs::remove_dir_all(dir);
                    self.counters.quarantined.inc();
                    return;
                }
            }
        }
    }

    /// Entries this handle (and its clones) have quarantined.
    pub fn quarantined(&self) -> u64 {
        self.counters.quarantined.get()
    }

    /// Persist `artifact` as the entry for `spec`.
    ///
    /// The entry is staged in a temporary directory and published with one
    /// atomic rename. If another writer published the same key first, this
    /// store quietly yields to it — determinism guarantees the bytes match.
    pub fn store(&self, spec: &ExperimentSpec, artifact: &CachedArtifact) -> io::Result<()> {
        let dir = self.entry_dir(spec);
        if dir.exists() {
            return Ok(());
        }
        let key = Self::key(spec);
        let tmp = self.root.join(format!(
            ".tmp-{key}-{}",
            std::process::id()
        ));
        fs::create_dir_all(&tmp)?;
        let checksums = json!({
            "stdout.txt": crate::sha256::sha256_hex(artifact.stdout_plain.as_bytes()),
            "stdout.md": crate::sha256::sha256_hex(artifact.stdout_markdown.as_bytes()),
            "artifact.json": crate::sha256::sha256_hex(artifact.artifact_json.as_bytes()),
        });
        let meta = json!({
            "kernel_version": KERNEL_VERSION,
            "spec_hash": spec.canonical_hash(),
            "artifact": spec.artifact.name(),
            "cache_key": key,
            "payload_sha256": checksums,
        });
        fs::write(
            tmp.join("meta.json"),
            serde_json::to_string_pretty(&meta).expect("meta serializes"),
        )?;
        fs::write(tmp.join("spec.json"), spec.canonical_string())?;
        fs::write(tmp.join("stdout.txt"), &artifact.stdout_plain)?;
        fs::write(tmp.join("stdout.md"), &artifact.stdout_markdown)?;
        fs::write(tmp.join("artifact.json"), &artifact.artifact_json)?;
        match fs::rename(&tmp, &dir) {
            Ok(()) => {
                // Only the writer that actually published seeds the memory
                // tier: a store that yielded to an existing entry must not
                // let its (unverified-against-disk) bytes shadow it.
                if let Some(mem) = &self.mem {
                    mem.insert(&key, Arc::new(artifact.clone()));
                }
                Ok(())
            }
            Err(e) => {
                // Lost a publish race (or the target appeared concurrently):
                // the existing entry is byte-identical, keep it.
                let _ = fs::remove_dir_all(&tmp);
                if dir.exists() {
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfc-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_artifact() -> CachedArtifact {
        CachedArtifact {
            stdout_plain: "# banner\ntable body\n".to_string(),
            stdout_markdown: "# banner\n| table |\n".to_string(),
            artifact_json: "{\n  \"artifact\": \"table1\"\n}".to_string(),
        }
    }

    #[test]
    fn store_then_load_round_trips_bytes() {
        let root = temp_root("round-trip");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        assert_eq!(cache.load(&spec), None, "fresh cache must miss");
        let artifact = sample_artifact();
        cache.store(&spec, &artifact).unwrap();
        assert_eq!(cache.load(&spec), Some(artifact));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_depends_on_spec_and_kernel_version() {
        let a = ResultCache::key(&ExperimentSpec::table1(5, 1, 7));
        let b = ResultCache::key(&ExperimentSpec::table1(5, 1, 8));
        assert_ne!(a, b, "different specs must have different keys");
        assert_eq!(a.len(), 64);
        // The kernel version is part of the hashed material, so the key is
        // NOT the bare spec hash: bumping KERNEL_VERSION invalidates.
        assert_ne!(a, ExperimentSpec::table1(5, 1, 7).canonical_hash());
    }

    #[test]
    fn corrupt_meta_is_a_miss_and_quarantines() {
        let root = temp_root("corrupt");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure6(5, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        let meta_path = cache.entry_dir(&spec).join("meta.json");
        fs::write(
            &meta_path,
            r#"{"kernel_version": "something-else/0", "spec_hash": "beef"}"#,
        )
        .unwrap();
        assert_eq!(cache.load(&spec), None);
        assert_eq!(cache.quarantined(), 1);
        let key = ResultCache::key(&spec);
        let qdir = root.join(".quarantine").join(format!("{key}-0"));
        assert!(qdir.is_dir(), "corrupt entry must move to quarantine");
        assert!(!cache.entry_dir(&spec).exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_artifact_is_quarantined_and_recomputed_once() {
        let root = temp_root("truncated");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        let artifact = sample_artifact();
        cache.store(&spec, &artifact).unwrap();

        // Truncate the envelope mid-document, as a crashed writer (or a
        // full disk) would leave it.
        let path = cache.entry_dir(&spec).join("artifact.json");
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();

        // First load detects the corruption: miss + quarantine, so the
        // caller recomputes...
        assert_eq!(cache.load(&spec), None);
        assert_eq!(cache.quarantined(), 1);
        // ...and the re-store is NOT shadowed by the broken directory.
        cache.store(&spec, &artifact).unwrap();
        // The repaired entry hits from now on: recomputed once, not forever.
        assert_eq!(cache.load(&spec), Some(artifact));
        assert_eq!(cache.quarantined(), 1, "a repaired entry must not re-quarantine");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn checksum_mismatch_is_quarantined() {
        let root = temp_root("checksum");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(6, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        // Tamper with a payload that still *reads* fine — only the
        // checksum catches it.
        let path = cache.entry_dir(&spec).join("stdout.txt");
        fs::write(&path, "# banner\nDIFFERENT body\n").unwrap();
        assert_eq!(cache.load(&spec), None);
        assert_eq!(cache.quarantined(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn legacy_entry_without_checksums_still_loads() {
        let root = temp_root("legacy");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(7, 1, 7);
        let artifact = sample_artifact();
        cache.store(&spec, &artifact).unwrap();
        // Strip the checksum block, as an entry written before this field
        // existed would look.
        let meta_path = cache.entry_dir(&spec).join("meta.json");
        let meta: Value = serde_json::from_str(&fs::read_to_string(&meta_path).unwrap()).unwrap();
        let legacy = json!({
            "kernel_version": meta.get("kernel_version").unwrap().clone(),
            "spec_hash": meta.get("spec_hash").unwrap().clone(),
        });
        fs::write(&meta_path, serde_json::to_string_pretty(&legacy).unwrap()).unwrap();
        assert_eq!(cache.load(&spec), Some(artifact));
        assert_eq!(cache.quarantined(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn repeated_corruption_fills_successive_quarantine_slots() {
        let root = temp_root("slots");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure7(6, 1, 7);
        let key = ResultCache::key(&spec);
        for n in 0..2u32 {
            cache.store(&spec, &sample_artifact()).unwrap();
            fs::write(cache.entry_dir(&spec).join("artifact.json"), "{trunc").unwrap();
            assert_eq!(cache.load(&spec), None);
            let qdir = root.join(".quarantine").join(format!("{key}-{n}"));
            assert!(qdir.is_dir(), "quarantine slot {n} must exist");
        }
        assert_eq!(cache.quarantined(), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_payload_file_is_quarantined() {
        let root = temp_root("missing-file");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure6(6, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        fs::remove_file(cache.entry_dir(&spec).join("stdout.md")).unwrap();
        assert_eq!(cache.load(&spec), None);
        assert_eq!(cache.quarantined(), 1);
        // After quarantine the entry can be rebuilt.
        cache.store(&spec, &sample_artifact()).unwrap();
        assert_eq!(cache.load(&spec), Some(sample_artifact()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn second_store_keeps_the_existing_entry() {
        let root = temp_root("second-store");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure7(5, 1, 7);
        let first = sample_artifact();
        cache.store(&spec, &first).unwrap();
        let mut second = sample_artifact();
        second.stdout_plain.push_str("tampered\n");
        cache.store(&spec, &second).unwrap();
        assert_eq!(
            cache.load(&spec),
            Some(first),
            "an existing entry must never be overwritten"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn memory_tier_serves_repeats_with_zero_file_io() {
        let root = temp_root("mem-hit");
        let cache = ResultCache::with_memory_budget(&root, 1 << 20).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        let artifact = sample_artifact();
        cache.store(&spec, &artifact).unwrap();

        // The store seeded the tier; deleting the disk entry proves the
        // following hits touch no file at all.
        fs::remove_dir_all(cache.entry_dir(&spec)).unwrap();
        let (hit, tier) = cache.load_tiered(&spec).unwrap();
        assert_eq!(tier, TierHit::Memory);
        assert_eq!(*hit, artifact);
        assert_eq!(cache.load(&spec), Some(artifact));

        let stats = cache.mem_stats();
        assert_eq!(stats.mem_hits, 2);
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.mem_entries, 1);
        assert!(stats.mem_bytes > 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_hit_promotes_into_the_memory_tier() {
        let root = temp_root("promote");
        let spec = ExperimentSpec::table1(5, 1, 7);
        let artifact = sample_artifact();
        // Written by a handle with no tier (a CLI run, say)...
        ResultCache::new(&root).unwrap().store(&spec, &artifact).unwrap();

        // ...then read through a tiered handle: first load verifies from
        // disk and promotes, the second is pure memory. All three paths —
        // the freshly stored artifact, the disk hit, and the memory hit —
        // are byte-identical.
        let cache = ResultCache::with_memory_budget(&root, 1 << 20).unwrap();
        let (from_disk, t1) = cache.load_tiered(&spec).unwrap();
        let (from_mem, t2) = cache.load_tiered(&spec).unwrap();
        assert_eq!(t1, TierHit::Disk);
        assert_eq!(t2, TierHit::Memory);
        assert_eq!(*from_disk, artifact);
        assert_eq!(*from_mem, artifact);

        let stats = cache.mem_stats();
        assert_eq!((stats.disk_hits, stats.mem_hits, stats.mem_entries), (1, 1, 1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget_and_falls_back_to_disk() {
        let root = temp_root("evict");
        // One shard for a deterministic LRU order; the budget holds about
        // two sample entries.
        let budget = 2 * entry_bytes("k".repeat(64).as_str(), &sample_artifact()) + 16;
        let cache = ResultCache::with_memory_tier(&root, budget, 1).unwrap();
        let specs: Vec<ExperimentSpec> =
            (0..4).map(|s| ExperimentSpec::table1(5, 1, 100 + s)).collect();
        for spec in &specs {
            cache.store(spec, &sample_artifact()).unwrap();
        }
        let stats = cache.mem_stats();
        assert!(stats.mem_evictions >= 2, "evictions: {}", stats.mem_evictions);
        assert!(stats.mem_bytes <= budget, "{} > {budget}", stats.mem_bytes);
        assert_eq!(stats.mem_entries, 2);

        // The oldest key was evicted from memory but still hits the disk
        // tier with identical bytes — and is promoted back in.
        let (hit, tier) = cache.load_tiered(&specs[0]).unwrap();
        assert_eq!(tier, TierHit::Disk);
        assert_eq!(*hit, sample_artifact());
        let (_, tier) = cache.load_tiered(&specs[0]).unwrap();
        assert_eq!(tier, TierHit::Memory);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn oversized_artifact_skips_the_memory_tier() {
        let root = temp_root("oversize");
        let cache = ResultCache::with_memory_tier(&root, 32, 1).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        assert_eq!(cache.mem_stats().mem_entries, 0);
        assert_eq!(cache.mem_stats().mem_evictions, 0, "no thrash for a lost cause");
        // Still served, from disk, byte-identically.
        let (hit, tier) = cache.load_tiered(&spec).unwrap();
        assert_eq!(tier, TierHit::Disk);
        assert_eq!(*hit, sample_artifact());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn quarantine_evicts_the_key_from_the_memory_tier_too() {
        let root = temp_root("mem-quarantine");
        let cache = ResultCache::with_memory_budget(&root, 1 << 20).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        assert_eq!(cache.mem_stats().mem_entries, 1);

        // Corrupt the disk entry and force the quarantine path (in normal
        // operation a memory hit would shadow the corruption until the key
        // is evicted; the invariant is that *whenever* quarantine fires,
        // the key leaves both tiers).
        let dir = cache.entry_dir(&spec);
        fs::write(dir.join("artifact.json"), "{trunc").unwrap();
        cache.quarantine(&dir, &ResultCache::key(&spec), "test corruption");

        assert_eq!(cache.quarantined(), 1);
        assert_eq!(cache.mem_stats().mem_entries, 0, "key must leave the memory tier");
        assert_eq!(cache.load(&spec), None, "no tier may still answer the key");

        // And the repaired key serves from both tiers again.
        cache.store(&spec, &sample_artifact()).unwrap();
        assert_eq!(cache.load(&spec), Some(sample_artifact()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn clones_share_one_memory_tier() {
        let root = temp_root("mem-clone");
        let cache = ResultCache::with_memory_budget(&root, 1 << 20).unwrap();
        let clone = cache.clone();
        clone.store(&ExperimentSpec::table1(5, 1, 7), &sample_artifact()).unwrap();
        let (_, tier) = cache.load_tiered(&ExperimentSpec::table1(5, 1, 7)).unwrap();
        assert_eq!(tier, TierHit::Memory, "clone's store must seed the shared tier");
        assert_eq!(cache.mem_stats().mem_hits, 1);
        assert_eq!(clone.mem_stats().mem_hits, 1, "counters are shared too");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_budget_disables_the_tier() {
        let root = temp_root("mem-zero");
        let cache = ResultCache::with_memory_budget(&root, 0).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        let (_, tier) = cache.load_tiered(&spec).unwrap();
        assert_eq!(tier, TierHit::Disk);
        let stats = cache.mem_stats();
        assert_eq!((stats.mem_hits, stats.disk_hits, stats.mem_bytes), (0, 1, 0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn registered_counters_are_the_registry_series() {
        let root = temp_root("registered-counters");
        let registry = MetricsRegistry::new();
        let counters = CacheCounters::registered(&registry, "sfc_serve");
        let cache =
            ResultCache::with_observability(&root, 1 << 20, 1, counters).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        let _ = cache.load(&spec); // memory hit
        // The registry sees the increment with no copy step: the cache's
        // counter handle IS the registered series.
        let page = registry.render_prometheus();
        assert!(page.contains("sfc_serve_mem_hits_total 1"), "{page}");
        assert!(page.contains("sfc_serve_disk_hits_total 0"), "{page}");
        assert_eq!(cache.mem_stats().mem_hits, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn distinct_specs_occupy_distinct_entries() {
        let root = temp_root("distinct");
        let cache = ResultCache::new(&root).unwrap();
        let t1 = ExperimentSpec::table1(5, 2, 7);
        let t2 = ExperimentSpec::table2(5, 2, 7);
        let mut art2 = sample_artifact();
        art2.artifact_json = "{\n  \"artifact\": \"table2\"\n}".to_string();
        cache.store(&t1, &sample_artifact()).unwrap();
        cache.store(&t2, &art2).unwrap();
        assert_eq!(cache.load(&t1), Some(sample_artifact()));
        assert_eq!(cache.load(&t2), Some(art2));
        let _ = fs::remove_dir_all(&root);
    }
}
