//! Content-addressed cache of rendered experiment artifacts.
//!
//! Regenerating a paper artifact is expensive (minutes of sweep cells) but
//! perfectly deterministic: the workspace guarantees byte-identical output
//! for a given [`ExperimentSpec`] at every `--jobs` value. That makes the
//! artifact a pure function of the spec and the kernel implementation — so
//! it can be cached by content address and served back without recomputing
//! a single sweep cell.
//!
//! ## Keying
//!
//! A cache entry's directory name is
//! `sha256(canonical_spec_json + "\n" + KERNEL_VERSION)`. Including
//! [`KERNEL_VERSION`] in the hashed material means a change to any metric
//! kernel or renderer is published by bumping one constant: every old entry
//! silently misses (the key changes), no scanning or invalidation pass
//! required. Old directories are inert garbage, safe to delete at leisure.
//!
//! ## Layout
//!
//! ```text
//! <root>/<key>/
//!   meta.json     # kernel_version + spec_hash + artifact, for humans/tools
//!   spec.json     # the canonical spec serialization
//!   stdout.txt    # full plain-mode stdout, banner included
//!   stdout.md     # full markdown-mode stdout, banner included
//!   artifact.json # the machine-readable envelope (--json payload)
//! ```
//!
//! Writes go to a temporary sibling directory first and are published with a
//! single atomic `rename`, so readers never observe a half-written entry and
//! concurrent writers of the same spec race harmlessly (determinism makes
//! their payloads byte-identical).

use crate::spec::ExperimentSpec;
use serde_json::{json, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version tag of the metric kernels and artifact renderers, hashed into
/// every cache key.
///
/// Bump this whenever a change alters any artifact byte stream — a metric
/// kernel fix, a rendering tweak, an envelope field. Stale entries then miss
/// automatically because their keys no longer match.
pub const KERNEL_VERSION: &str = "2013-icpp-sfc/1";

/// The cached byte streams of one rendered artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedArtifact {
    /// Full plain-mode stdout, banner line included.
    pub stdout_plain: String,
    /// Full markdown-mode stdout, banner line included.
    pub stdout_markdown: String,
    /// The pretty-printed machine-readable envelope (the `--json` payload).
    pub artifact_json: String,
}

/// A directory of content-addressed artifact entries.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// Open (and create, if needed) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultCache { root })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The content address of `spec` under the current [`KERNEL_VERSION`].
    pub fn key(spec: &ExperimentSpec) -> String {
        let material = format!("{}\n{}", spec.canonical_string(), KERNEL_VERSION);
        crate::sha256::sha256_hex(material.as_bytes())
    }

    /// Directory a `spec`'s entry lives in (whether or not it exists yet).
    pub fn entry_dir(&self, spec: &ExperimentSpec) -> PathBuf {
        self.root.join(Self::key(spec))
    }

    /// Load the cached artifact for `spec`, or `None` on a miss. An entry
    /// whose metadata disagrees with the expected kernel version or spec
    /// hash (a corrupt or hand-edited directory) is treated as a miss.
    pub fn load(&self, spec: &ExperimentSpec) -> Option<CachedArtifact> {
        let dir = self.entry_dir(spec);
        let meta: Value = serde_json::from_str(&fs::read_to_string(dir.join("meta.json")).ok()?)
            .ok()?;
        if meta.get("kernel_version").and_then(Value::as_str) != Some(KERNEL_VERSION)
            || meta.get("spec_hash").and_then(Value::as_str) != Some(spec.canonical_hash()).as_deref()
        {
            return None;
        }
        Some(CachedArtifact {
            stdout_plain: fs::read_to_string(dir.join("stdout.txt")).ok()?,
            stdout_markdown: fs::read_to_string(dir.join("stdout.md")).ok()?,
            artifact_json: fs::read_to_string(dir.join("artifact.json")).ok()?,
        })
    }

    /// Persist `artifact` as the entry for `spec`.
    ///
    /// The entry is staged in a temporary directory and published with one
    /// atomic rename. If another writer published the same key first, this
    /// store quietly yields to it — determinism guarantees the bytes match.
    pub fn store(&self, spec: &ExperimentSpec, artifact: &CachedArtifact) -> io::Result<()> {
        let dir = self.entry_dir(spec);
        if dir.exists() {
            return Ok(());
        }
        let key = Self::key(spec);
        let tmp = self.root.join(format!(
            ".tmp-{key}-{}",
            std::process::id()
        ));
        fs::create_dir_all(&tmp)?;
        let meta = json!({
            "kernel_version": KERNEL_VERSION,
            "spec_hash": spec.canonical_hash(),
            "artifact": spec.artifact.name(),
            "cache_key": key,
        });
        fs::write(
            tmp.join("meta.json"),
            serde_json::to_string_pretty(&meta).expect("meta serializes"),
        )?;
        fs::write(tmp.join("spec.json"), spec.canonical_string())?;
        fs::write(tmp.join("stdout.txt"), &artifact.stdout_plain)?;
        fs::write(tmp.join("stdout.md"), &artifact.stdout_markdown)?;
        fs::write(tmp.join("artifact.json"), &artifact.artifact_json)?;
        match fs::rename(&tmp, &dir) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Lost a publish race (or the target appeared concurrently):
                // the existing entry is byte-identical, keep it.
                let _ = fs::remove_dir_all(&tmp);
                if dir.exists() {
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfc-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_artifact() -> CachedArtifact {
        CachedArtifact {
            stdout_plain: "# banner\ntable body\n".to_string(),
            stdout_markdown: "# banner\n| table |\n".to_string(),
            artifact_json: "{\n  \"artifact\": \"table1\"\n}".to_string(),
        }
    }

    #[test]
    fn store_then_load_round_trips_bytes() {
        let root = temp_root("round-trip");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        assert_eq!(cache.load(&spec), None, "fresh cache must miss");
        let artifact = sample_artifact();
        cache.store(&spec, &artifact).unwrap();
        assert_eq!(cache.load(&spec), Some(artifact));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_depends_on_spec_and_kernel_version() {
        let a = ResultCache::key(&ExperimentSpec::table1(5, 1, 7));
        let b = ResultCache::key(&ExperimentSpec::table1(5, 1, 8));
        assert_ne!(a, b, "different specs must have different keys");
        assert_eq!(a.len(), 64);
        // The kernel version is part of the hashed material, so the key is
        // NOT the bare spec hash: bumping KERNEL_VERSION invalidates.
        assert_ne!(a, ExperimentSpec::table1(5, 1, 7).canonical_hash());
    }

    #[test]
    fn corrupt_meta_is_a_miss() {
        let root = temp_root("corrupt");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure6(5, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        let meta_path = cache.entry_dir(&spec).join("meta.json");
        fs::write(
            &meta_path,
            r#"{"kernel_version": "something-else/0", "spec_hash": "beef"}"#,
        )
        .unwrap();
        assert_eq!(cache.load(&spec), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn second_store_keeps_the_existing_entry() {
        let root = temp_root("second-store");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure7(5, 1, 7);
        let first = sample_artifact();
        cache.store(&spec, &first).unwrap();
        let mut second = sample_artifact();
        second.stdout_plain.push_str("tampered\n");
        cache.store(&spec, &second).unwrap();
        assert_eq!(
            cache.load(&spec),
            Some(first),
            "an existing entry must never be overwritten"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn distinct_specs_occupy_distinct_entries() {
        let root = temp_root("distinct");
        let cache = ResultCache::new(&root).unwrap();
        let t1 = ExperimentSpec::table1(5, 2, 7);
        let t2 = ExperimentSpec::table2(5, 2, 7);
        let mut art2 = sample_artifact();
        art2.artifact_json = "{\n  \"artifact\": \"table2\"\n}".to_string();
        cache.store(&t1, &sample_artifact()).unwrap();
        cache.store(&t2, &art2).unwrap();
        assert_eq!(cache.load(&t1), Some(sample_artifact()));
        assert_eq!(cache.load(&t2), Some(art2));
        let _ = fs::remove_dir_all(&root);
    }
}
