//! Content-addressed cache of rendered experiment artifacts.
//!
//! Regenerating a paper artifact is expensive (minutes of sweep cells) but
//! perfectly deterministic: the workspace guarantees byte-identical output
//! for a given [`ExperimentSpec`] at every `--jobs` value. That makes the
//! artifact a pure function of the spec and the kernel implementation — so
//! it can be cached by content address and served back without recomputing
//! a single sweep cell.
//!
//! ## Keying
//!
//! A cache entry's directory name is
//! `sha256(canonical_spec_json + "\n" + KERNEL_VERSION)`. Including
//! [`KERNEL_VERSION`] in the hashed material means a change to any metric
//! kernel or renderer is published by bumping one constant: every old entry
//! silently misses (the key changes), no scanning or invalidation pass
//! required. Old directories are inert garbage, safe to delete at leisure.
//!
//! ## Layout
//!
//! ```text
//! <root>/<key>/
//!   meta.json     # kernel_version + spec_hash + artifact, for humans/tools
//!   spec.json     # the canonical spec serialization
//!   stdout.txt    # full plain-mode stdout, banner included
//!   stdout.md     # full markdown-mode stdout, banner included
//!   artifact.json # the machine-readable envelope (--json payload)
//! ```
//!
//! Writes go to a temporary sibling directory first and are published with a
//! single atomic `rename`, so readers never observe a half-written entry and
//! concurrent writers of the same spec race harmlessly (determinism makes
//! their payloads byte-identical).
//!
//! ## Self-healing
//!
//! A corrupt entry (unparseable or mismatched `meta.json`, a missing payload
//! file, a truncated `artifact.json`, a payload whose checksum disagrees
//! with `meta.json`) is not merely treated as a miss: [`ResultCache::load`]
//! **quarantines** it by moving the whole directory to
//! `<root>/.quarantine/<key>-<n>/`. Without that move the broken directory
//! would shadow every future [`ResultCache::store`] (which yields to an
//! existing entry), forcing the artifact to be recomputed on every request
//! forever. After quarantine the next store publishes a fresh entry and
//! subsequent loads hit. Quarantined directories are kept (not deleted) so
//! the corruption can be inspected; [`ResultCache::quarantined`] counts the
//! entries this handle has quarantined.

use crate::spec::ExperimentSpec;
use serde_json::{json, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version tag of the metric kernels and artifact renderers, hashed into
/// every cache key.
///
/// Bump this whenever a change alters any artifact byte stream — a metric
/// kernel fix, a rendering tweak, an envelope field. Stale entries then miss
/// automatically because their keys no longer match.
pub const KERNEL_VERSION: &str = "2013-icpp-sfc/1";

/// The cached byte streams of one rendered artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedArtifact {
    /// Full plain-mode stdout, banner line included.
    pub stdout_plain: String,
    /// Full markdown-mode stdout, banner line included.
    pub stdout_markdown: String,
    /// The pretty-printed machine-readable envelope (the `--json` payload).
    pub artifact_json: String,
}

/// A directory of content-addressed artifact entries.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
    /// Entries this handle has quarantined (shared across clones so a
    /// daemon's stats see every quarantine regardless of which worker
    /// thread hit the corruption).
    quarantined: Arc<AtomicU64>,
}

impl ResultCache {
    /// Open (and create, if needed) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultCache {
            root,
            quarantined: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The cache's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The content address of `spec` under the current [`KERNEL_VERSION`].
    pub fn key(spec: &ExperimentSpec) -> String {
        let material = format!("{}\n{}", spec.canonical_string(), KERNEL_VERSION);
        crate::sha256::sha256_hex(material.as_bytes())
    }

    /// Directory a `spec`'s entry lives in (whether or not it exists yet).
    pub fn entry_dir(&self, spec: &ExperimentSpec) -> PathBuf {
        self.root.join(Self::key(spec))
    }

    /// Load the cached artifact for `spec`, or `None` on a miss.
    ///
    /// A *corrupt* entry — unparseable or mismatched `meta.json`, a missing
    /// payload file, an `artifact.json` that no longer parses (truncation),
    /// or a payload whose checksum disagrees with `meta.json` — is
    /// quarantined to `<root>/.quarantine/<key>-<n>/` and reported as a
    /// miss, so the next [`store`](ResultCache::store) can publish a clean
    /// replacement instead of being shadowed forever.
    pub fn load(&self, spec: &ExperimentSpec) -> Option<CachedArtifact> {
        let dir = self.entry_dir(spec);
        if !dir.exists() {
            return None;
        }
        match self.load_entry(&dir, spec) {
            Ok(artifact) => Some(artifact),
            Err(reason) => {
                self.quarantine(&dir, &Self::key(spec), &reason);
                None
            }
        }
    }

    /// Read and validate one entry directory, describing what is wrong with
    /// it on failure.
    fn load_entry(&self, dir: &Path, spec: &ExperimentSpec) -> Result<CachedArtifact, String> {
        let meta_text = fs::read_to_string(dir.join("meta.json"))
            .map_err(|e| format!("meta.json unreadable: {e}"))?;
        let meta: Value =
            serde_json::from_str(&meta_text).map_err(|e| format!("meta.json unparseable: {e}"))?;
        if meta.get("kernel_version").and_then(Value::as_str) != Some(KERNEL_VERSION) {
            return Err("meta.json kernel_version mismatch".to_string());
        }
        if meta.get("spec_hash").and_then(Value::as_str)
            != Some(spec.canonical_hash()).as_deref()
        {
            return Err("meta.json spec_hash mismatch".to_string());
        }
        let read = |name: &str| -> Result<String, String> {
            let text = fs::read_to_string(dir.join(name))
                .map_err(|e| format!("{name} unreadable: {e}"))?;
            // Entries written since checksums were introduced carry the
            // payload hashes in meta.json; verify when present (older
            // entries without them stay loadable).
            if let Some(expected) = meta
                .get("payload_sha256")
                .and_then(|c| c.get(name))
                .and_then(Value::as_str)
            {
                let actual = crate::sha256::sha256_hex(text.as_bytes());
                if actual != expected {
                    return Err(format!("{name} checksum mismatch (truncated or edited)"));
                }
            }
            Ok(text)
        };
        let artifact_json = read("artifact.json")?;
        // Even without a checksum, the envelope must at least still be
        // valid JSON — a truncated file is not.
        serde_json::from_str::<Value>(&artifact_json)
            .map_err(|e| format!("artifact.json unparseable (truncated?): {e}"))?;
        Ok(CachedArtifact {
            stdout_plain: read("stdout.txt")?,
            stdout_markdown: read("stdout.md")?,
            artifact_json,
        })
    }

    /// Move a corrupt entry out of the way, into
    /// `<root>/.quarantine/<key>-<n>/` (first free `n`). Best-effort: a
    /// concurrent quarantine of the same entry may win the rename, which is
    /// fine — the goal is only that the entry no longer shadows stores.
    fn quarantine(&self, dir: &Path, key: &str, reason: &str) {
        let qroot = self.root.join(".quarantine");
        if let Err(e) = fs::create_dir_all(&qroot) {
            eprintln!("# cache: cannot create quarantine dir: {e}");
            let _ = fs::remove_dir_all(dir);
            self.quarantined.fetch_add(1, Ordering::SeqCst);
            return;
        }
        for n in 0u32.. {
            let target = qroot.join(format!("{key}-{n}"));
            if target.exists() {
                continue;
            }
            match fs::rename(dir, &target) {
                Ok(()) => {
                    eprintln!(
                        "# cache: quarantined corrupt entry {key} -> {}: {reason}",
                        target.display()
                    );
                    self.quarantined.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                Err(_) if !dir.exists() => {
                    // Another handle quarantined (or deleted) it first.
                    return;
                }
                Err(_) if target.exists() => {
                    // Lost the race for this slot number; try the next.
                    continue;
                }
                Err(e) => {
                    eprintln!(
                        "# cache: cannot quarantine {key} ({reason}); removing instead: {e}"
                    );
                    let _ = fs::remove_dir_all(dir);
                    self.quarantined.fetch_add(1, Ordering::SeqCst);
                    return;
                }
            }
        }
    }

    /// Entries this handle (and its clones) have quarantined.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::SeqCst)
    }

    /// Persist `artifact` as the entry for `spec`.
    ///
    /// The entry is staged in a temporary directory and published with one
    /// atomic rename. If another writer published the same key first, this
    /// store quietly yields to it — determinism guarantees the bytes match.
    pub fn store(&self, spec: &ExperimentSpec, artifact: &CachedArtifact) -> io::Result<()> {
        let dir = self.entry_dir(spec);
        if dir.exists() {
            return Ok(());
        }
        let key = Self::key(spec);
        let tmp = self.root.join(format!(
            ".tmp-{key}-{}",
            std::process::id()
        ));
        fs::create_dir_all(&tmp)?;
        let checksums = json!({
            "stdout.txt": crate::sha256::sha256_hex(artifact.stdout_plain.as_bytes()),
            "stdout.md": crate::sha256::sha256_hex(artifact.stdout_markdown.as_bytes()),
            "artifact.json": crate::sha256::sha256_hex(artifact.artifact_json.as_bytes()),
        });
        let meta = json!({
            "kernel_version": KERNEL_VERSION,
            "spec_hash": spec.canonical_hash(),
            "artifact": spec.artifact.name(),
            "cache_key": key,
            "payload_sha256": checksums,
        });
        fs::write(
            tmp.join("meta.json"),
            serde_json::to_string_pretty(&meta).expect("meta serializes"),
        )?;
        fs::write(tmp.join("spec.json"), spec.canonical_string())?;
        fs::write(tmp.join("stdout.txt"), &artifact.stdout_plain)?;
        fs::write(tmp.join("stdout.md"), &artifact.stdout_markdown)?;
        fs::write(tmp.join("artifact.json"), &artifact.artifact_json)?;
        match fs::rename(&tmp, &dir) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Lost a publish race (or the target appeared concurrently):
                // the existing entry is byte-identical, keep it.
                let _ = fs::remove_dir_all(&tmp);
                if dir.exists() {
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sfc-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_artifact() -> CachedArtifact {
        CachedArtifact {
            stdout_plain: "# banner\ntable body\n".to_string(),
            stdout_markdown: "# banner\n| table |\n".to_string(),
            artifact_json: "{\n  \"artifact\": \"table1\"\n}".to_string(),
        }
    }

    #[test]
    fn store_then_load_round_trips_bytes() {
        let root = temp_root("round-trip");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        assert_eq!(cache.load(&spec), None, "fresh cache must miss");
        let artifact = sample_artifact();
        cache.store(&spec, &artifact).unwrap();
        assert_eq!(cache.load(&spec), Some(artifact));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_depends_on_spec_and_kernel_version() {
        let a = ResultCache::key(&ExperimentSpec::table1(5, 1, 7));
        let b = ResultCache::key(&ExperimentSpec::table1(5, 1, 8));
        assert_ne!(a, b, "different specs must have different keys");
        assert_eq!(a.len(), 64);
        // The kernel version is part of the hashed material, so the key is
        // NOT the bare spec hash: bumping KERNEL_VERSION invalidates.
        assert_ne!(a, ExperimentSpec::table1(5, 1, 7).canonical_hash());
    }

    #[test]
    fn corrupt_meta_is_a_miss_and_quarantines() {
        let root = temp_root("corrupt");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure6(5, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        let meta_path = cache.entry_dir(&spec).join("meta.json");
        fs::write(
            &meta_path,
            r#"{"kernel_version": "something-else/0", "spec_hash": "beef"}"#,
        )
        .unwrap();
        assert_eq!(cache.load(&spec), None);
        assert_eq!(cache.quarantined(), 1);
        let key = ResultCache::key(&spec);
        let qdir = root.join(".quarantine").join(format!("{key}-0"));
        assert!(qdir.is_dir(), "corrupt entry must move to quarantine");
        assert!(!cache.entry_dir(&spec).exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_artifact_is_quarantined_and_recomputed_once() {
        let root = temp_root("truncated");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(5, 1, 7);
        let artifact = sample_artifact();
        cache.store(&spec, &artifact).unwrap();

        // Truncate the envelope mid-document, as a crashed writer (or a
        // full disk) would leave it.
        let path = cache.entry_dir(&spec).join("artifact.json");
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();

        // First load detects the corruption: miss + quarantine, so the
        // caller recomputes...
        assert_eq!(cache.load(&spec), None);
        assert_eq!(cache.quarantined(), 1);
        // ...and the re-store is NOT shadowed by the broken directory.
        cache.store(&spec, &artifact).unwrap();
        // The repaired entry hits from now on: recomputed once, not forever.
        assert_eq!(cache.load(&spec), Some(artifact));
        assert_eq!(cache.quarantined(), 1, "a repaired entry must not re-quarantine");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn checksum_mismatch_is_quarantined() {
        let root = temp_root("checksum");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(6, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        // Tamper with a payload that still *reads* fine — only the
        // checksum catches it.
        let path = cache.entry_dir(&spec).join("stdout.txt");
        fs::write(&path, "# banner\nDIFFERENT body\n").unwrap();
        assert_eq!(cache.load(&spec), None);
        assert_eq!(cache.quarantined(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn legacy_entry_without_checksums_still_loads() {
        let root = temp_root("legacy");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::table1(7, 1, 7);
        let artifact = sample_artifact();
        cache.store(&spec, &artifact).unwrap();
        // Strip the checksum block, as an entry written before this field
        // existed would look.
        let meta_path = cache.entry_dir(&spec).join("meta.json");
        let meta: Value = serde_json::from_str(&fs::read_to_string(&meta_path).unwrap()).unwrap();
        let legacy = json!({
            "kernel_version": meta.get("kernel_version").unwrap().clone(),
            "spec_hash": meta.get("spec_hash").unwrap().clone(),
        });
        fs::write(&meta_path, serde_json::to_string_pretty(&legacy).unwrap()).unwrap();
        assert_eq!(cache.load(&spec), Some(artifact));
        assert_eq!(cache.quarantined(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn repeated_corruption_fills_successive_quarantine_slots() {
        let root = temp_root("slots");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure7(6, 1, 7);
        let key = ResultCache::key(&spec);
        for n in 0..2u32 {
            cache.store(&spec, &sample_artifact()).unwrap();
            fs::write(cache.entry_dir(&spec).join("artifact.json"), "{trunc").unwrap();
            assert_eq!(cache.load(&spec), None);
            let qdir = root.join(".quarantine").join(format!("{key}-{n}"));
            assert!(qdir.is_dir(), "quarantine slot {n} must exist");
        }
        assert_eq!(cache.quarantined(), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_payload_file_is_quarantined() {
        let root = temp_root("missing-file");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure6(6, 1, 7);
        cache.store(&spec, &sample_artifact()).unwrap();
        fs::remove_file(cache.entry_dir(&spec).join("stdout.md")).unwrap();
        assert_eq!(cache.load(&spec), None);
        assert_eq!(cache.quarantined(), 1);
        // After quarantine the entry can be rebuilt.
        cache.store(&spec, &sample_artifact()).unwrap();
        assert_eq!(cache.load(&spec), Some(sample_artifact()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn second_store_keeps_the_existing_entry() {
        let root = temp_root("second-store");
        let cache = ResultCache::new(&root).unwrap();
        let spec = ExperimentSpec::figure7(5, 1, 7);
        let first = sample_artifact();
        cache.store(&spec, &first).unwrap();
        let mut second = sample_artifact();
        second.stdout_plain.push_str("tampered\n");
        cache.store(&spec, &second).unwrap();
        assert_eq!(
            cache.load(&spec),
            Some(first),
            "an existing entry must never be overwritten"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn distinct_specs_occupy_distinct_entries() {
        let root = temp_root("distinct");
        let cache = ResultCache::new(&root).unwrap();
        let t1 = ExperimentSpec::table1(5, 2, 7);
        let t2 = ExperimentSpec::table2(5, 2, 7);
        let mut art2 = sample_artifact();
        art2.artifact_json = "{\n  \"artifact\": \"table2\"\n}".to_string();
        cache.store(&t1, &sample_artifact()).unwrap();
        cache.store(&t2, &art2).unwrap();
        assert_eq!(cache.load(&t1), Some(sample_artifact()));
        assert_eq!(cache.load(&t2), Some(art2));
        let _ = fs::remove_dir_all(&root);
    }
}
