//! ACD for generic communication patterns — Section VII of the paper.
//!
//! "By abstracting different primitives of communications models, the ACD
//! for most common types of parallel communication such as all-to-all and
//! broadcast can be computed in advance for particular applications." This
//! module provides those primitives: a [`CommPattern`] is any finite
//! multiset of rank pairs, and [`pattern_acd`] evaluates its ACD on a
//! [`Machine`]. Constructors cover the archetypes the paper names —
//! point-to-point lists, binomial-tree broadcast, all-to-all, parallel
//! prefix, nearest-neighbor halo — so an algorithm designer can compose the
//! expected traffic of an application and compare curve/topology choices
//! before writing a line of MPI.

use crate::machine::Machine;
use rayon::prelude::*;

/// A communication pattern: a list of directed `(source, destination)` rank
/// pairs, each one message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommPattern {
    /// The messages.
    pub pairs: Vec<(u32, u32)>,
}

impl CommPattern {
    /// An explicit point-to-point list.
    pub fn point_to_point(pairs: Vec<(u32, u32)>) -> Self {
        CommPattern { pairs }
    }

    /// Binomial-tree broadcast from `root` over ranks `0 .. p`: the pattern
    /// of `MPI_Bcast` and of the paper's "log-tree" collective. Round `k`
    /// has every informed rank forward to the rank `2^k` away (in the
    /// rotated space where `root` is 0).
    pub fn broadcast_tree(p: u32, root: u32) -> Self {
        assert!(root < p);
        let mut pairs = Vec::new();
        let mut informed = 1u64;
        while informed < p as u64 {
            for i in 0..informed {
                let dst = i + informed;
                if dst < p as u64 {
                    pairs.push((
                        ((i as u32) + root) % p,
                        ((dst as u32) + root) % p,
                    ));
                }
            }
            informed *= 2;
        }
        CommPattern { pairs }
    }

    /// Reduction to `root`: the broadcast tree with every edge reversed.
    pub fn reduce_tree(p: u32, root: u32) -> Self {
        let mut b = Self::broadcast_tree(p, root);
        for pair in &mut b.pairs {
            *pair = (pair.1, pair.0);
        }
        b
    }

    /// All-to-all personalized exchange over ranks `0 .. p`: every ordered
    /// pair of distinct ranks exchanges one message (`MPI_Alltoall`).
    pub fn all_to_all(p: u32) -> Self {
        let mut pairs = Vec::with_capacity((p as usize) * (p as usize - 1));
        for a in 0..p {
            for b in 0..p {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        CommPattern { pairs }
    }

    /// Parallel prefix (Hillis–Steele scan): in round `k`, rank `i` sends to
    /// rank `i + 2^k` for all `i + 2^k < p`.
    pub fn parallel_prefix(p: u32) -> Self {
        let mut pairs = Vec::new();
        let mut stride = 1u32;
        while stride < p {
            for i in 0..p - stride {
                pairs.push((i, i + stride));
            }
            stride *= 2;
        }
        CommPattern { pairs }
    }

    /// Rank-space halo exchange: every rank sends to ranks within `width`
    /// of it in rank order (the pattern of a 1-D domain decomposition).
    pub fn halo(p: u32, width: u32) -> Self {
        assert!(width >= 1);
        let mut pairs = Vec::new();
        for i in 0..p {
            for d in 1..=width {
                if i + d < p {
                    pairs.push((i, i + d));
                    pairs.push((i + d, i));
                }
            }
        }
        CommPattern { pairs }
    }

    /// Ring shift: rank `i` sends to `(i + 1) mod p` (the pattern of
    /// `MPI_Sendrecv` pipelines / systolic algorithms).
    pub fn ring_shift(p: u32) -> Self {
        CommPattern {
            pairs: (0..p).map(|i| (i, (i + 1) % p)).collect(),
        }
    }

    /// Concatenate two patterns (phases of one algorithm).
    pub fn then(mut self, other: CommPattern) -> Self {
        self.pairs.extend(other.pairs);
        self
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the pattern has no messages.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Outcome of evaluating a pattern on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternAcd {
    /// Total hop distance.
    pub total_distance: u64,
    /// Number of messages.
    pub num_comms: u64,
    /// Largest single-message distance.
    pub max_distance: u64,
}

impl PatternAcd {
    /// The Average Communicated Distance of the pattern.
    pub fn acd(&self) -> f64 {
        if self.num_comms == 0 {
            0.0
        } else {
            self.total_distance as f64 / self.num_comms as f64
        }
    }
}

/// Evaluate a pattern's ACD on a machine.
pub fn pattern_acd(pattern: &CommPattern, machine: &Machine) -> PatternAcd {
    let (total, max) = pattern
        .pairs
        .par_iter()
        .map(|&(a, b)| {
            let d = machine.distance(a, b);
            (d, d)
        })
        .reduce(|| (0, 0), |x, y| (x.0 + y.0, x.1.max(y.1)));
    PatternAcd {
        total_distance: total,
        num_comms: pattern.pairs.len() as u64,
        max_distance: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_curves::CurveKind;
    use sfc_topology::TopologyKind;

    #[test]
    fn broadcast_tree_message_count() {
        // A binomial broadcast over p ranks needs exactly p - 1 messages.
        for p in [1u32, 2, 3, 8, 13, 64] {
            let b = CommPattern::broadcast_tree(p, 0);
            assert_eq!(b.len() as u32, p - 1, "p={p}");
            // Every rank except the root is reached exactly once.
            let mut reached = vec![false; p as usize];
            reached[0] = true;
            for (src, dst) in b.pairs {
                assert!(reached[src as usize], "rank {src} sent before informed");
                assert!(!reached[dst as usize], "rank {dst} informed twice");
                reached[dst as usize] = true;
            }
            assert!(reached.iter().all(|&r| r));
        }
    }

    #[test]
    fn broadcast_respects_root_rotation() {
        let b = CommPattern::broadcast_tree(8, 5);
        assert_eq!(b.pairs[0].0, 5);
        let mut reached: Vec<u32> = b.pairs.iter().map(|&(_, d)| d).collect();
        reached.sort_unstable();
        assert_eq!(reached, vec![0, 1, 2, 3, 4, 6, 7]);
    }

    #[test]
    fn reduce_is_reversed_broadcast() {
        let b = CommPattern::broadcast_tree(16, 0);
        let r = CommPattern::reduce_tree(16, 0);
        for (x, y) in b.pairs.iter().zip(&r.pairs) {
            assert_eq!((x.1, x.0), *y);
        }
    }

    #[test]
    fn all_to_all_count() {
        let p = 10u32;
        assert_eq!(CommPattern::all_to_all(p).len() as u32, p * (p - 1));
    }

    #[test]
    fn parallel_prefix_count() {
        // Hillis–Steele over p=8: rounds of 7 + 6 + 4 sends = 17.
        assert_eq!(CommPattern::parallel_prefix(8).len(), 17);
    }

    #[test]
    fn halo_is_symmetric() {
        let h = CommPattern::halo(16, 2);
        for &(a, b) in &h.pairs {
            assert!(h.pairs.contains(&(b, a)));
        }
    }

    #[test]
    fn pattern_acd_on_machines() {
        let machine = Machine::grid(TopologyKind::Torus, 64, CurveKind::Hilbert);
        // Halo in rank space maps to physical proximity under Hilbert
        // ranks: width-1 halo has ACD exactly 1 (unit steps).
        let halo = CommPattern::halo(64, 1);
        let res = pattern_acd(&halo, &machine);
        assert_eq!(res.acd(), 1.0);
        assert_eq!(res.max_distance, 1);

        // All-to-all ACD equals the mean pairwise distance of the whole
        // torus, independent of the rank map (it is a complete pattern).
        let a2a = pattern_acd(&CommPattern::all_to_all(64), &machine);
        let row = Machine::grid(TopologyKind::Torus, 64, CurveKind::RowMajor);
        let a2a_row = pattern_acd(&CommPattern::all_to_all(64), &row);
        assert!((a2a.acd() - a2a_row.acd()).abs() < 1e-12);
    }

    #[test]
    fn curve_choice_matters_per_pattern() {
        // The paper's Section VII pitch in miniature: which processor-order
        // SFC wins depends on the *pattern*. Local (halo) traffic favors the
        // proximity-preserving Hilbert placement; strided traffic (parallel
        // prefix doubles its stride each round) favors row-major, whose rank
        // space is an affine image of the grid. Neither placement dominates
        // universally — exactly why the paper argues for computing the ACD
        // of the application's own pattern before choosing.
        let hilbert = Machine::grid(TopologyKind::Mesh, 256, CurveKind::Hilbert);
        let rowmajor = Machine::grid(TopologyKind::Mesh, 256, CurveKind::RowMajor);

        let halo = CommPattern::halo(256, 4);
        let h = pattern_acd(&halo, &hilbert).acd();
        let r = pattern_acd(&halo, &rowmajor).acd();
        assert!(h < r, "Hilbert halo ACD {h} should beat row-major {r}");

        let prefix = CommPattern::parallel_prefix(256);
        let hp = pattern_acd(&prefix, &hilbert).acd();
        let rp = pattern_acd(&prefix, &rowmajor).acd();
        assert!(rp < hp, "row-major prefix ACD {rp} should beat Hilbert {hp}");
    }

    #[test]
    fn composition_concatenates() {
        let c = CommPattern::ring_shift(4).then(CommPattern::broadcast_tree(4, 0));
        assert_eq!(c.len(), 4 + 3);
    }

    #[test]
    fn empty_pattern_is_zero() {
        let machine = Machine::new(TopologyKind::Hypercube, 16, CurveKind::Hilbert);
        let res = pattern_acd(&CommPattern::default(), &machine);
        assert_eq!(res.acd(), 0.0);
        assert!(CommPattern::default().is_empty());
    }

    #[test]
    fn broadcast_on_hypercube_is_dimension_steps() {
        // With identity placement, the binomial tree maps onto the
        // hypercube's dimensions: every message is exactly one hop.
        let machine = Machine::new(TopologyKind::Hypercube, 64, CurveKind::Hilbert);
        let b = CommPattern::broadcast_tree(64, 0);
        let res = pattern_acd(&b, &machine);
        assert_eq!(res.acd(), 1.0);
    }
}
