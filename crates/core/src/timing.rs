//! Per-phase timing for sweep cells.
//!
//! Every perf PR needs a measured trajectory, so the sweep runner records
//! how long each *computed* cell took and how that wall time splits across
//! the kernels inside it. Cell closures mark their hot sections with
//! [`phase`]:
//!
//! ```
//! use sfc_core::timing;
//! let total: u64 = timing::phase("nfi", || (0..100u64).sum());
//! assert_eq!(total, 4950);
//! ```
//!
//! Outside a recording cell, [`phase`] is a transparent wrapper (the code
//! above ran no recorder). Inside the runner, each cell attempt starts a
//! thread-local recorder; the phases observed during the attempt are
//! attached to the cell's [`CellTiming`] in the sweep summary. A cell runs
//! entirely on one worker thread, so a thread-local recorder needs no
//! synchronization and adds two thread-local accesses per phase — noise
//! against kernels that scan millions of pairs.
//!
//! Wall times are inherently non-deterministic, so timings live only in the
//! sweep summary (and the opt-in `--timing` envelope of the bench
//! binaries), never in the byte-identical `--json` artifacts, and cells
//! replayed from a journal carry no timing.

use std::cell::RefCell;
use std::time::Instant;

/// Wall-clock timing of one computed sweep cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellTiming {
    /// Total wall milliseconds of the cell's closure (the successful
    /// attempt only).
    pub wall_ms: f64,
    /// Accumulated milliseconds per named kernel phase, in first-use order.
    /// Phases cover only the instrumented sections, so they sum to at most
    /// `wall_ms`.
    pub phases: Vec<(String, f64)>,
}

impl CellTiming {
    /// Milliseconds attributed to `name`, if that phase ran.
    pub fn phase_ms(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ms)| ms)
    }
}

thread_local! {
    /// Phase accumulator of the cell currently recording on this thread;
    /// `None` outside the runner.
    static RECORDER: RefCell<Option<Vec<(String, f64)>>> = const { RefCell::new(None) };
}

/// Run `f`, attributing its wall time to phase `name` of the recording
/// cell, if any. Repeated phases accumulate; outside a recording cell this
/// is just `f()`.
pub fn phase<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let recording = RECORDER.with(|r| r.borrow().is_some());
    if !recording {
        return f();
    }
    let start = Instant::now();
    let out = f();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    RECORDER.with(|r| {
        if let Some(phases) = r.borrow_mut().as_mut() {
            match phases.iter_mut().find(|(n, _)| n == name) {
                Some((_, acc)) => *acc += ms,
                None => phases.push((name.to_string(), ms)),
            }
        }
    });
    out
}

/// A fixed-bucket latency histogram with power-of-two microsecond buckets.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` µs (bucket 0 also
/// absorbs sub-microsecond observations, the last bucket absorbs everything
/// above its lower bound). The layout is fixed so two histograms — or the
/// same histogram across daemon restarts — are always mergeable and
/// comparable without bucket-boundary negotiation; `sfc-serve` reports one
/// per request kind in its `stats` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; Self::BUCKETS],
    total: u64,
    sum_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; Self::BUCKETS],
            total: 0,
            sum_micros: 0,
        }
    }
}

impl LatencyHistogram {
    /// Number of buckets: `2^31` µs is ~36 minutes, far beyond any request
    /// this daemon answers, so the top bucket is a pure overflow guard.
    pub const BUCKETS: usize = 32;

    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `micros` µs.
    pub fn record_micros(&mut self, micros: u64) {
        let idx = (63 - micros.max(1).leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
    }

    /// Record one observed duration.
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_micros(elapsed.as_micros().try_into().unwrap_or(u64::MAX));
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded observations in µs (saturating), the
    /// `_sum` companion of the Prometheus histogram exposition.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The non-empty buckets as `(exclusive upper bound in µs, count)`
    /// pairs, in ascending bound order. The top bucket's bound is reported
    /// as `u64::MAX` since it absorbs every overflow.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = if i + 1 >= 64 || i == Self::BUCKETS - 1 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                (bound, c)
            })
            .collect()
    }
}

/// Begin recording phases on this thread (runner-internal; called before
/// each cell attempt). Any previous recording on the thread is discarded.
pub(crate) fn start_recording() {
    RECORDER.with(|r| *r.borrow_mut() = Some(Vec::new()));
}

/// Stop recording on this thread and return the phases observed since
/// [`start_recording`].
pub(crate) fn take_recording() -> Vec<(String, f64)> {
    RECORDER.with(|r| r.borrow_mut().take()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_is_transparent_without_a_recorder() {
        assert_eq!(phase("nfi", || 41 + 1), 42);
        // Nothing was recorded.
        assert!(take_recording().is_empty());
    }

    #[test]
    fn recorder_accumulates_repeated_phases_in_first_use_order() {
        start_recording();
        phase("sample", || std::thread::sleep(std::time::Duration::from_millis(2)));
        phase("nfi", || std::thread::sleep(std::time::Duration::from_millis(1)));
        phase("sample", || std::thread::sleep(std::time::Duration::from_millis(2)));
        let phases = take_recording();
        let names: Vec<&str> = phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["sample", "nfi"]);
        assert!(phases[0].1 >= 4.0, "accumulated sample time {}", phases[0].1);
        assert!(phases[1].1 >= 1.0);
        // The recorder is consumed.
        assert!(take_recording().is_empty());
    }

    #[test]
    fn start_recording_discards_stale_phases() {
        start_recording();
        phase("stale", || ());
        start_recording();
        phase("fresh", || ());
        let phases = take_recording();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "fresh");
    }

    #[test]
    fn histogram_buckets_are_powers_of_two_micros() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        h.record_micros(0); // sub-µs lands in bucket 0 ([1, 2))
        h.record_micros(1);
        h.record_micros(3); // [2, 4)
        h.record_micros(4); // [4, 8)
        h.record_micros(7);
        h.record_micros(u64::MAX); // overflow guard bucket
        assert_eq!(h.count(), 6);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(2, 2), (4, 1), (8, 2), (u64::MAX, 1)]
        );
    }

    #[test]
    fn histogram_records_durations() {
        let mut h = LatencyHistogram::new();
        h.record(std::time::Duration::from_micros(100)); // [64, 128)
        assert_eq!(h.nonzero_buckets(), vec![(128, 1)]);
    }

    #[test]
    fn cell_timing_lookup() {
        let t = CellTiming {
            wall_ms: 10.0,
            phases: vec![("nfi".into(), 6.0), ("ffi".into(), 3.0)],
        };
        assert_eq!(t.phase_ms("nfi"), Some(6.0));
        assert_eq!(t.phase_ms("sample"), None);
    }
}
