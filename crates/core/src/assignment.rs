//! Particle ordering and distribution — steps 1–2 and 4 of the paper's
//! algorithm (Section IV).
//!
//! An [`Assignment`] captures the result of ordering the input particles by
//! a particle-order SFC, partitioning the ordered sequence into `p`
//! consecutive chunks of `⌈n/p⌉`, and handing chunk `i` to processor rank
//! `i`. It also indexes the occupied cells for O(1) "which rank owns cell
//! `(x, y)`?" queries, which both interaction models issue in their inner
//! loops.

use sfc_curves::{CurveKind, Point2};
use sfc_particles::cellmap::{pack_cell, CellMap};
use sfc_particles::GridIndex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of assignments that built the dense [`GridIndex`]
/// fast path (see [`dense_grid_builds`]).
static DENSE_GRID_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of assignments that stayed on the sparse `CellMap`
/// probe path (see [`cellmap_fallbacks`]).
static CELLMAP_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// How many assignments built the dense occupancy index since process
/// start. Together with [`cellmap_fallbacks`] this feeds the `sfc_bench`
/// observability gauges and the `--timing` envelope.
pub fn dense_grid_builds() -> u64 {
    DENSE_GRID_BUILDS.load(Ordering::Relaxed)
}

/// How many assignments used the `CellMap` probe path instead of the dense
/// index — grids above the [`sfc_particles::MAX_GRID_CELLS`] cap or
/// `--no-dense-grid` ablation runs.
pub fn cellmap_fallbacks() -> u64 {
    CELLMAP_FALLBACKS.load(Ordering::Relaxed)
}

/// Particles ordered by an SFC and distributed to processor ranks.
#[derive(Debug, Clone)]
pub struct Assignment {
    grid_order: u32,
    curve: CurveKind,
    num_ranks: u64,
    chunk: usize,
    /// Particles sorted by their particle-order SFC index.
    particles: Vec<Point2>,
    /// Rank of occupied cell, keyed by packed cell coordinates. Always
    /// present: the fallback when the dense index is over-cap or ablated.
    cell_rank: CellMap,
    /// Dense occupancy fast path: one indexed load per cell query, whole
    /// rows for segment scans. `None` above the cell cap (or when ablated);
    /// both paths answer identically.
    grid: Option<GridIndex>,
}

impl Assignment {
    /// Order `particles` (distinct cells on a `2^grid_order`-sided grid) by
    /// `curve` and distribute them to `num_ranks` processors in consecutive
    /// chunks of `⌈n/p⌉`.
    pub fn new(
        particles: &[Point2],
        grid_order: u32,
        curve: CurveKind,
        num_ranks: u64,
    ) -> Self {
        Self::with_dense_grid(particles, grid_order, curve, num_ranks, true)
    }

    /// [`Assignment::new`] with explicit control over the dense occupancy
    /// index: `dense = false` skips building it entirely (the
    /// `--no-dense-grid` ablation), leaving every lookup on the `CellMap`
    /// probe path. Results are bit-identical either way.
    pub fn with_dense_grid(
        particles: &[Point2],
        grid_order: u32,
        curve: CurveKind,
        num_ranks: u64,
        dense: bool,
    ) -> Self {
        assert!(num_ranks >= 1, "at least one processor required");
        assert!(!particles.is_empty(), "at least one particle required");
        let side = 1u64 << grid_order;
        let mut sorted: Vec<(u64, Point2)> = particles
            .iter()
            .map(|&p| {
                assert!(p.in_grid(side), "{p} outside grid of order {grid_order}");
                (curve.index_of(grid_order, p), p)
            })
            .collect();
        sorted.sort_unstable_by_key(|&(idx, _)| idx);
        let n = sorted.len();
        let chunk = n.div_ceil(num_ranks as usize);
        let mut cell_rank = CellMap::with_capacity(n);
        // `GridIndex::new` is the cap gate: over-cap grids get `None` and
        // silently keep the probe path.
        let mut grid = if dense { GridIndex::new(grid_order) } else { None };
        let mut ordered = Vec::with_capacity(n);
        for (i, &(_, p)) in sorted.iter().enumerate() {
            let rank = (i / chunk) as u32;
            let prev = cell_rank.insert_first(pack_cell(p.x, p.y), rank);
            assert!(prev.is_none(), "duplicate particle cell {p}");
            if let Some(g) = &mut grid {
                g.insert(p.x, p.y, rank);
            }
            ordered.push(p);
        }
        if grid.is_some() {
            DENSE_GRID_BUILDS.fetch_add(1, Ordering::Relaxed);
        } else {
            CELLMAP_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        }
        Assignment {
            grid_order,
            curve,
            num_ranks,
            chunk,
            particles: ordered,
            cell_rank,
            grid,
        }
    }

    /// Drop the dense occupancy index, forcing every cell query onto the
    /// `CellMap` probe path (ablation/verification parity with
    /// [`Machine::without_oracle`](crate::Machine::without_oracle)).
    pub fn without_dense_grid(mut self) -> Self {
        self.grid = None;
        self
    }

    /// True if this assignment carries the dense occupancy fast path.
    pub fn has_dense_grid(&self) -> bool {
        self.grid.is_some()
    }

    /// Bytes held by the dense occupancy table, or 0 on the fallback path —
    /// the memory-envelope number the `MAX_GRID_CELLS` cap bounds.
    pub fn dense_grid_bytes(&self) -> usize {
        self.grid.as_ref().map_or(0, GridIndex::table_bytes)
    }

    /// Grid order `k` of the spatial resolution.
    pub fn grid_order(&self) -> u32 {
        self.grid_order
    }

    /// The particle-order curve used.
    pub fn curve(&self) -> CurveKind {
        self.curve
    }

    /// Number of processor ranks the particles are distributed over.
    pub fn num_ranks(&self) -> u64 {
        self.num_ranks
    }

    /// Number of ranks that actually hold at least one particle
    /// (`⌈n / ⌈n/p⌉⌉`; can be less than `num_ranks`).
    pub fn ranks_used(&self) -> u64 {
        self.particles.len().div_ceil(self.chunk) as u64
    }

    /// Chunk size `⌈n/p⌉`.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// The particles in particle-order SFC order.
    pub fn particles(&self) -> &[Point2] {
        &self.particles
    }

    /// Rank of the `i`-th particle in SFC order.
    #[inline]
    pub fn rank_of_index(&self, i: usize) -> u32 {
        debug_assert!(i < self.particles.len());
        (i / self.chunk) as u32
    }

    /// Rank owning the particle in cell `(x, y)`, or `None` if the cell is
    /// empty. One indexed load on the dense fast path, a hash probe on the
    /// fallback.
    #[inline]
    pub fn rank_of_cell(&self, x: u32, y: u32) -> Option<u32> {
        match &self.grid {
            Some(g) => g.rank_of(x, y),
            None => self.cell_rank.get(pack_cell(x, y)),
        }
    }

    /// True if cell `(x, y)` holds a particle.
    #[inline]
    pub fn is_occupied(&self, x: u32, y: u32) -> bool {
        match &self.grid {
            Some(g) => g.is_occupied(x, y),
            None => self.cell_rank.contains(pack_cell(x, y)),
        }
    }

    /// The dense rank row at height `y` (`row[x]` is the owner of cell
    /// `(x, y)` or [`GridIndex::EMPTY`]), or `None` on the fallback path.
    /// Kernels use this to turn `O(r²)` per-cell probes into per-`dy`
    /// contiguous row-segment scans.
    #[inline]
    pub fn rank_row(&self, y: u32) -> Option<&[u32]> {
        self.grid.as_ref().map(|g| g.rank_row(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(u32, u32)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    #[test]
    fn particles_are_sorted_by_curve_index() {
        let particles = pts(&[(3, 3), (0, 0), (1, 2), (2, 0)]);
        let asg = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
        let indices: Vec<u64> = asg
            .particles()
            .iter()
            .map(|&p| CurveKind::Hilbert.index_of(2, p))
            .collect();
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chunking_matches_ceiling_division() {
        let particles = pts(&[(0, 0), (1, 0), (2, 0), (3, 0), (0, 1)]);
        let asg = Assignment::new(&particles, 2, CurveKind::RowMajor, 2);
        // n=5, p=2 -> chunk 3: ranks 0,0,0,1,1.
        assert_eq!(asg.chunk_size(), 3);
        assert_eq!(asg.rank_of_index(0), 0);
        assert_eq!(asg.rank_of_index(2), 0);
        assert_eq!(asg.rank_of_index(3), 1);
        assert_eq!(asg.ranks_used(), 2);
    }

    #[test]
    fn more_ranks_than_particles() {
        let particles = pts(&[(0, 0), (3, 3)]);
        let asg = Assignment::new(&particles, 2, CurveKind::ZCurve, 16);
        assert_eq!(asg.chunk_size(), 1);
        assert_eq!(asg.ranks_used(), 2);
        assert_eq!(asg.rank_of_cell(0, 0), Some(0));
        assert_eq!(asg.rank_of_cell(3, 3), Some(1));
    }

    #[test]
    fn cell_lookup_agrees_with_index_ranks() {
        let particles = pts(&[(0, 0), (1, 0), (0, 1), (1, 1), (2, 2), (3, 2)]);
        let asg = Assignment::new(&particles, 2, CurveKind::Gray, 3);
        for (i, p) in asg.particles().iter().enumerate() {
            assert_eq!(asg.rank_of_cell(p.x, p.y), Some(asg.rank_of_index(i)));
        }
        assert_eq!(asg.rank_of_cell(3, 3), None);
        assert!(!asg.is_occupied(3, 3));
        assert!(asg.is_occupied(2, 2));
    }

    #[test]
    fn curve_changes_the_distribution() {
        // The same particles split differently under Hilbert vs row-major.
        let particles = pts(&[(0, 0), (0, 1), (3, 0), (3, 1)]);
        let hil = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
        let row = Assignment::new(&particles, 2, CurveKind::RowMajor, 2);
        // Hilbert: (0,0),(0,1) first (indices 0,1); row-major: (0,0),(3,0).
        assert_eq!(hil.rank_of_cell(0, 1), Some(0));
        assert_eq!(row.rank_of_cell(0, 1), Some(1));
    }

    #[test]
    fn small_assignments_carry_a_dense_grid_and_it_can_be_ablated() {
        let particles = pts(&[(0, 0), (1, 0), (3, 3)]);
        let asg = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
        assert!(asg.has_dense_grid());
        assert_eq!(asg.dense_grid_bytes(), 4 * 4 * 4);
        let row = asg.rank_row(0).unwrap();
        assert_eq!(row.len(), 4);
        assert!(row[0] != u32::MAX && row[1] != u32::MAX);
        assert_eq!(row[2], u32::MAX);

        let ablated = asg.clone().without_dense_grid();
        assert!(!ablated.has_dense_grid());
        assert_eq!(ablated.dense_grid_bytes(), 0);
        assert!(ablated.rank_row(0).is_none());
        for x in 0..4 {
            for y in 0..4 {
                assert_eq!(asg.rank_of_cell(x, y), ablated.rank_of_cell(x, y));
                assert_eq!(asg.is_occupied(x, y), ablated.is_occupied(x, y));
            }
        }
    }

    #[test]
    fn dense_and_fallback_constructors_agree() {
        let particles = pts(&[(0, 0), (5, 2), (7, 7), (3, 4), (1, 6)]);
        let dense = Assignment::new(&particles, 3, CurveKind::ZCurve, 4);
        let sparse = Assignment::with_dense_grid(&particles, 3, CurveKind::ZCurve, 4, false);
        assert!(dense.has_dense_grid() && !sparse.has_dense_grid());
        assert_eq!(dense.particles(), sparse.particles());
        for x in 0..8 {
            for y in 0..8 {
                assert_eq!(dense.rank_of_cell(x, y), sparse.rank_of_cell(x, y));
            }
        }
    }

    #[test]
    fn above_the_cell_cap_the_fallback_is_automatic_and_identical() {
        // Order 13 is one past the 1 << 24 cell cap: the dense table would
        // be 256 MiB, so the assignment silently keeps the CellMap.
        let particles = pts(&[(0, 0), (8191, 8191), (4096, 17)]);
        let asg = Assignment::new(&particles, 13, CurveKind::Hilbert, 3);
        assert!(!asg.has_dense_grid());
        assert!(asg.rank_row(0).is_none());
        for &p in &particles {
            assert!(asg.is_occupied(p.x, p.y));
        }
        assert_eq!(asg.rank_of_cell(123, 456), None);
        // Just below is order 12, which builds the table.
        let small = Assignment::new(&pts(&[(0, 0)]), 12, CurveKind::Hilbert, 1);
        assert!(small.has_dense_grid());
        assert_eq!(small.dense_grid_bytes(), 64 << 20);
    }

    #[test]
    fn build_counters_track_dense_and_fallback_paths() {
        let particles = pts(&[(0, 0), (1, 1)]);
        let b0 = dense_grid_builds();
        let f0 = cellmap_fallbacks();
        let _dense = Assignment::new(&particles, 2, CurveKind::Hilbert, 1);
        let _ablated = Assignment::with_dense_grid(&particles, 2, CurveKind::Hilbert, 1, false);
        // Counters are process-wide and tests run concurrently, so assert
        // monotone growth rather than exact values.
        assert!(dense_grid_builds() > b0);
        assert!(cellmap_fallbacks() > f0);
    }

    #[test]
    #[should_panic(expected = "duplicate particle cell")]
    fn duplicate_cells_rejected() {
        let particles = pts(&[(1, 1), (1, 1)]);
        let _ = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn out_of_grid_rejected() {
        let particles = pts(&[(4, 0)]);
        let _ = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
    }
}
