//! Particle ordering and distribution — steps 1–2 and 4 of the paper's
//! algorithm (Section IV).
//!
//! An [`Assignment`] captures the result of ordering the input particles by
//! a particle-order SFC, partitioning the ordered sequence into `p`
//! consecutive chunks of `⌈n/p⌉`, and handing chunk `i` to processor rank
//! `i`. It also indexes the occupied cells for O(1) "which rank owns cell
//! `(x, y)`?" queries, which both interaction models issue in their inner
//! loops.

use sfc_curves::{CurveKind, Point2};
use sfc_particles::cellmap::{pack_cell, CellMap};

/// Particles ordered by an SFC and distributed to processor ranks.
#[derive(Debug, Clone)]
pub struct Assignment {
    grid_order: u32,
    curve: CurveKind,
    num_ranks: u64,
    chunk: usize,
    /// Particles sorted by their particle-order SFC index.
    particles: Vec<Point2>,
    /// Rank of occupied cell, keyed by packed cell coordinates.
    cell_rank: CellMap,
}

impl Assignment {
    /// Order `particles` (distinct cells on a `2^grid_order`-sided grid) by
    /// `curve` and distribute them to `num_ranks` processors in consecutive
    /// chunks of `⌈n/p⌉`.
    pub fn new(
        particles: &[Point2],
        grid_order: u32,
        curve: CurveKind,
        num_ranks: u64,
    ) -> Self {
        assert!(num_ranks >= 1, "at least one processor required");
        assert!(!particles.is_empty(), "at least one particle required");
        let side = 1u64 << grid_order;
        let mut sorted: Vec<(u64, Point2)> = particles
            .iter()
            .map(|&p| {
                assert!(p.in_grid(side), "{p} outside grid of order {grid_order}");
                (curve.index_of(grid_order, p), p)
            })
            .collect();
        sorted.sort_unstable_by_key(|&(idx, _)| idx);
        let n = sorted.len();
        let chunk = n.div_ceil(num_ranks as usize);
        let mut cell_rank = CellMap::with_capacity(n);
        let mut ordered = Vec::with_capacity(n);
        for (i, &(_, p)) in sorted.iter().enumerate() {
            let rank = (i / chunk) as u32;
            let prev = cell_rank.insert_first(pack_cell(p.x, p.y), rank);
            assert!(prev.is_none(), "duplicate particle cell {p}");
            ordered.push(p);
        }
        Assignment {
            grid_order,
            curve,
            num_ranks,
            chunk,
            particles: ordered,
            cell_rank,
        }
    }

    /// Grid order `k` of the spatial resolution.
    pub fn grid_order(&self) -> u32 {
        self.grid_order
    }

    /// The particle-order curve used.
    pub fn curve(&self) -> CurveKind {
        self.curve
    }

    /// Number of processor ranks the particles are distributed over.
    pub fn num_ranks(&self) -> u64 {
        self.num_ranks
    }

    /// Number of ranks that actually hold at least one particle
    /// (`⌈n / ⌈n/p⌉⌉`; can be less than `num_ranks`).
    pub fn ranks_used(&self) -> u64 {
        self.particles.len().div_ceil(self.chunk) as u64
    }

    /// Chunk size `⌈n/p⌉`.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// The particles in particle-order SFC order.
    pub fn particles(&self) -> &[Point2] {
        &self.particles
    }

    /// Rank of the `i`-th particle in SFC order.
    #[inline]
    pub fn rank_of_index(&self, i: usize) -> u32 {
        debug_assert!(i < self.particles.len());
        (i / self.chunk) as u32
    }

    /// Rank owning the particle in cell `(x, y)`, or `None` if the cell is
    /// empty.
    #[inline]
    pub fn rank_of_cell(&self, x: u32, y: u32) -> Option<u32> {
        self.cell_rank.get(pack_cell(x, y))
    }

    /// True if cell `(x, y)` holds a particle.
    #[inline]
    pub fn is_occupied(&self, x: u32, y: u32) -> bool {
        self.cell_rank.contains(pack_cell(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(u32, u32)]) -> Vec<Point2> {
        coords.iter().map(|&(x, y)| Point2::new(x, y)).collect()
    }

    #[test]
    fn particles_are_sorted_by_curve_index() {
        let particles = pts(&[(3, 3), (0, 0), (1, 2), (2, 0)]);
        let asg = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
        let indices: Vec<u64> = asg
            .particles()
            .iter()
            .map(|&p| CurveKind::Hilbert.index_of(2, p))
            .collect();
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chunking_matches_ceiling_division() {
        let particles = pts(&[(0, 0), (1, 0), (2, 0), (3, 0), (0, 1)]);
        let asg = Assignment::new(&particles, 2, CurveKind::RowMajor, 2);
        // n=5, p=2 -> chunk 3: ranks 0,0,0,1,1.
        assert_eq!(asg.chunk_size(), 3);
        assert_eq!(asg.rank_of_index(0), 0);
        assert_eq!(asg.rank_of_index(2), 0);
        assert_eq!(asg.rank_of_index(3), 1);
        assert_eq!(asg.ranks_used(), 2);
    }

    #[test]
    fn more_ranks_than_particles() {
        let particles = pts(&[(0, 0), (3, 3)]);
        let asg = Assignment::new(&particles, 2, CurveKind::ZCurve, 16);
        assert_eq!(asg.chunk_size(), 1);
        assert_eq!(asg.ranks_used(), 2);
        assert_eq!(asg.rank_of_cell(0, 0), Some(0));
        assert_eq!(asg.rank_of_cell(3, 3), Some(1));
    }

    #[test]
    fn cell_lookup_agrees_with_index_ranks() {
        let particles = pts(&[(0, 0), (1, 0), (0, 1), (1, 1), (2, 2), (3, 2)]);
        let asg = Assignment::new(&particles, 2, CurveKind::Gray, 3);
        for (i, p) in asg.particles().iter().enumerate() {
            assert_eq!(asg.rank_of_cell(p.x, p.y), Some(asg.rank_of_index(i)));
        }
        assert_eq!(asg.rank_of_cell(3, 3), None);
        assert!(!asg.is_occupied(3, 3));
        assert!(asg.is_occupied(2, 2));
    }

    #[test]
    fn curve_changes_the_distribution() {
        // The same particles split differently under Hilbert vs row-major.
        let particles = pts(&[(0, 0), (0, 1), (3, 0), (3, 1)]);
        let hil = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
        let row = Assignment::new(&particles, 2, CurveKind::RowMajor, 2);
        // Hilbert: (0,0),(0,1) first (indices 0,1); row-major: (0,0),(3,0).
        assert_eq!(hil.rank_of_cell(0, 1), Some(0));
        assert_eq!(row.rank_of_cell(0, 1), Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate particle cell")]
    fn duplicate_cells_rejected() {
        let particles = pts(&[(1, 1), (1, 1)]);
        let _ = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn out_of_grid_rejected() {
        let particles = pts(&[(4, 0)]);
        let _ = Assignment::new(&particles, 2, CurveKind::Hilbert, 2);
    }
}
