//! Plain-text table rendering for the regeneration binaries.
//!
//! The `sfc-bench` binaries print each of the paper's tables and figure data
//! series as aligned text (and optionally pipe-delimited Markdown). Keeping
//! the renderer here lets the integration tests assert on table structure
//! without duplicating formatting logic.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of already-formatted cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Append a row with a string label followed by numeric cells formatted
    /// to three decimals (the paper's precision).
    pub fn push_numeric_row(&mut self, label: &str, values: &[f64]) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.push_row(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.header));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as a Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            " --- |".repeat(self.header.len())
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Curve", "ACD"]);
        t.push_numeric_row("Hilbert", &[4.008]);
        t.push_numeric_row("Row Major", &[70.353]);
        let text = t.render();
        assert!(text.contains("Demo"));
        assert!(text.contains("Hilbert"));
        assert!(text.contains("4.008"));
        assert!(text.contains("70.353"));
        // Columns align: both numeric cells end at the same offset.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn markdown_has_header_separator() {
        let mut t = Table::new("", &["A", "B"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("| A | B |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("", &["A", "B"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn numeric_rows_use_three_decimals() {
        let mut t = Table::new("", &["L", "V"]);
        t.push_numeric_row("x", &[1.0 / 3.0]);
        assert!(t.render().contains("0.333"));
        assert_eq!(t.num_rows(), 1);
    }
}
