//! Unified observability: a metrics registry and a structured trace sink.
//!
//! The paper's whole contribution is *measurement*, and the serving stack
//! deserves the same discipline it applies to ACD sweeps. Before this
//! module, runtime counters lived as ad-hoc struct fields hand-serialized
//! into three divergent JSON shapes; now every counter, gauge and latency
//! histogram registers in one process-local [`MetricsRegistry`] that both
//! the JSON telemetry and the Prometheus text page render from — one
//! substrate, one wire schema.
//!
//! ## Metrics
//!
//! A registry holds *families* (one metric name + help text + kind), each
//! with one or more label-distinguished *series*:
//!
//! ```
//! use sfc_core::obs::MetricsRegistry;
//! let registry = MetricsRegistry::new();
//! let hits = registry.counter("demo_hits_total", "Requests served from cache.");
//! hits.inc();
//! let nfi = registry.counter_labeled(
//!     "demo_phase_us_total",
//!     "Kernel microseconds by phase.",
//!     &[("phase", "nfi")],
//! );
//! nfi.add(1500);
//! let page = registry.render_prometheus();
//! assert!(page.contains("demo_hits_total 1"));
//! assert!(page.contains("demo_phase_us_total{phase=\"nfi\"} 1500"));
//! ```
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! the registered storage, so the registry entry *is* the counter — there is
//! no copy to drift out of sync. Registration is idempotent: asking for an
//! already-registered `(name, labels)` series returns a handle to the same
//! storage. Derived gauges ([`MetricsRegistry::derived_gauge`]) compute
//! their value at render time from a closure, which is how ratios like a
//! cache hit rate stay consistent with the counters they divide.
//!
//! ## Tracing
//!
//! A [`TraceSink`] appends one JSON object per line to a trace file: spans
//! and events with microsecond timestamps monotonic from the sink's
//! creation, each stamped with the `request_id` of the work it belongs to.
//! A sink built with [`TraceSink::disabled`] makes every record a no-op, so
//! instrumentation can stay in place unconditionally. Trace files are
//! wall-clock facts about one run — like the `--timing` envelope, they are
//! never part of a byte-identical artifact.

use crate::timing::LatencyHistogram;
use serde_json::{Map, ToJson, Value};
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonically increasing counter. Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A standalone counter not (yet) attached to any registry.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::SeqCst);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::SeqCst);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

/// A gauge: a value that can move in both directions (bytes resident,
/// queue depth, 0/1 flags). Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A standalone gauge not (yet) attached to any registry.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the current value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::SeqCst);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

/// A registered latency histogram (power-of-two µs buckets, see
/// [`LatencyHistogram`]). Cloning shares the underlying storage.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<Mutex<LatencyHistogram>>,
}

impl Histogram {
    /// Record one observed duration.
    pub fn record(&self, elapsed: Duration) {
        self.lock().record(elapsed);
    }

    /// Record one observation of `micros` µs.
    pub fn record_micros(&self, micros: u64) {
        self.lock().record_micros(micros);
    }

    /// A copy of the current histogram state.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LatencyHistogram> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Latency distribution.
    Histogram,
}

impl MetricKind {
    fn prometheus_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum SeriesValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// Computed at render time (ratios like hit rate stay consistent with
    /// the counters they divide).
    Derived(Arc<dyn Fn() -> f64 + Send + Sync>),
}

struct Series {
    labels: Vec<(String, String)>,
    value: SeriesValue,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// The sampled value of one series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter or gauge value.
    Uint(u64),
    /// Derived-gauge value.
    Float(f64),
    /// Histogram state (boxed: a histogram is 32 buckets wide, far larger
    /// than the scalar variants).
    Histo(Box<LatencyHistogram>),
}

/// One series of a [`FamilySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// The series' label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// A point-in-time copy of one metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// The family's series, in registration order.
    pub series: Vec<SeriesSnapshot>,
}

impl SeriesSnapshot {
    /// The value of label `key`, if the series carries it.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A process-local registry of named metrics; see the module docs.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("families", &self.lock().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Family>> {
        self.families
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Register (or fetch) an unlabeled counter. Counter names should end
    /// in `_total` per the Prometheus convention.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_labeled(name, help, &[])
    }

    /// Register (or fetch) a labeled counter series.
    pub fn counter_labeled(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels, || {
            SeriesValue::Counter(Counter::new())
        }) {
            SeriesValue::Counter(c) => c,
            _ => unreachable!("series kind is checked on registration"),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, &[], || {
            SeriesValue::Gauge(Gauge::new())
        }) {
            SeriesValue::Gauge(g) => g,
            _ => unreachable!("series kind is checked on registration"),
        }
    }

    /// Register a gauge whose value is computed at render time. Unlike the
    /// handle-returning registrations this one is *not* idempotent-by-need:
    /// registering the same name twice keeps the first closure.
    pub fn derived_gauge(
        &self,
        name: &str,
        help: &str,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        let f: Arc<dyn Fn() -> f64 + Send + Sync> = Arc::new(f);
        self.series(name, help, MetricKind::Gauge, &[], move || {
            SeriesValue::Derived(Arc::clone(&f))
        });
    }

    /// Register (or fetch) a labeled latency histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            SeriesValue::Histogram(Histogram::default())
        }) {
            SeriesValue::Histogram(h) => h,
            _ => unreachable!("series kind is checked on registration"),
        }
    }

    /// Find-or-create one series. Panics on a kind conflict — reusing one
    /// name for two metric kinds is a programming error that must not
    /// silently corrupt the exposition.
    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> SeriesValue,
    ) -> SeriesValue {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.lock();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric `{name}` registered as {:?} and {kind:?}",
                    f.kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            return clone_value(&existing.value);
        }
        let value = make();
        let handle = clone_value(&value);
        family.series.push(Series { labels, value });
        handle
    }

    /// Point-in-time copy of every family, in registration order.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        self.lock().iter().map(snapshot_family).collect()
    }

    /// Point-in-time copy of the family named `name`.
    pub fn family_snapshot(&self, name: &str) -> Option<FamilySnapshot> {
        self.lock()
            .iter()
            .find(|f| f.name == name)
            .map(snapshot_family)
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP` and `# TYPE` lines per family, one
    /// sample line per series (histograms expand into cumulative `_bucket`
    /// lines plus `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for family in self.snapshot() {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.prometheus_name());
            for series in &family.series {
                let labels = render_labels(&series.labels);
                match &series.value {
                    SampleValue::Uint(v) => {
                        let _ = writeln!(out, "{}{labels} {v}", family.name);
                    }
                    SampleValue::Float(v) => {
                        let _ = writeln!(out, "{}{labels} {v}", family.name);
                    }
                    SampleValue::Histo(h) => {
                        let mut cumulative = 0u64;
                        for (bound, count) in h.nonzero_buckets() {
                            cumulative += count;
                            if bound == u64::MAX {
                                continue; // folded into +Inf below
                            }
                            let le = render_labels_with(&series.labels, "le", &bound.to_string());
                            let _ = writeln!(out, "{}_bucket{le} {cumulative}", family.name);
                        }
                        let inf = render_labels_with(&series.labels, "le", "+Inf");
                        let _ = writeln!(out, "{}_bucket{inf} {}", family.name, h.count());
                        let _ = writeln!(out, "{}_sum{labels} {}", family.name, h.sum_micros());
                        let _ = writeln!(out, "{}_count{labels} {}", family.name, h.count());
                    }
                }
            }
        }
        out
    }
}

fn clone_value(value: &SeriesValue) -> SeriesValue {
    match value {
        SeriesValue::Counter(c) => SeriesValue::Counter(c.clone()),
        SeriesValue::Gauge(g) => SeriesValue::Gauge(g.clone()),
        SeriesValue::Histogram(h) => SeriesValue::Histogram(h.clone()),
        SeriesValue::Derived(f) => SeriesValue::Derived(Arc::clone(f)),
    }
}

fn snapshot_family(family: &Family) -> FamilySnapshot {
    FamilySnapshot {
        name: family.name.clone(),
        help: family.help.clone(),
        kind: family.kind,
        series: family
            .series
            .iter()
            .map(|s| SeriesSnapshot {
                labels: s.labels.clone(),
                value: match &s.value {
                    SeriesValue::Counter(c) => SampleValue::Uint(c.get()),
                    SeriesValue::Gauge(g) => SampleValue::Uint(g.get()),
                    SeriesValue::Histogram(h) => SampleValue::Histo(Box::new(h.snapshot())),
                    SeriesValue::Derived(f) => SampleValue::Float(f()),
                },
            })
            .collect(),
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_labels_with(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((key.to_string(), value.to_string()));
    render_labels(&all)
}

/// A JSONL trace sink: one JSON object per record, timestamps in
/// microseconds monotonic from the sink's creation. See the module docs.
#[derive(Debug)]
pub struct TraceSink {
    inner: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    epoch: Instant,
}

impl TraceSink {
    /// A sink whose records all vanish (zero-cost instrumentation default).
    pub fn disabled() -> TraceSink {
        TraceSink {
            inner: None,
            epoch: Instant::now(),
        }
    }

    /// Open (create or truncate) a trace file at `path`.
    pub fn to_path(path: &str) -> std::io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink {
            inner: Some(Mutex::new(std::io::BufWriter::new(file))),
            epoch: Instant::now(),
        })
    }

    /// Whether records actually go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one span: a named unit of work attributed to `request_id`,
    /// with its duration and any extra fields. Writes (and flushes) one
    /// JSON line; a disabled sink does nothing.
    pub fn span(
        &self,
        name: &str,
        request_id: &str,
        duration: Duration,
        fields: &[(&str, Value)],
    ) {
        self.write_record("span", name, request_id, Some(duration), fields);
    }

    /// Record one instantaneous event attributed to `request_id`.
    pub fn event(&self, name: &str, request_id: &str, fields: &[(&str, Value)]) {
        self.write_record("event", name, request_id, None, fields);
    }

    fn write_record(
        &self,
        kind: &str,
        name: &str,
        request_id: &str,
        duration: Option<Duration>,
        fields: &[(&str, Value)],
    ) {
        let Some(inner) = &self.inner else { return };
        let mut doc = Map::new();
        doc.insert(
            "ts_us",
            (u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)).to_json(),
        );
        doc.insert("kind", kind.to_json());
        doc.insert("name", name.to_json());
        doc.insert("request_id", request_id.to_json());
        if let Some(d) = duration {
            doc.insert(
                "dur_us",
                (u64::try_from(d.as_micros()).unwrap_or(u64::MAX)).to_json(),
            );
        }
        for (k, v) in fields {
            doc.insert(*k, v.clone());
        }
        let line = match serde_json::to_string(&Value::Object(doc)) {
            Ok(l) => l,
            Err(_) => return,
        };
        let mut out = inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Trace loss is tolerable; trace-induced crashes are not.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_storage_across_clones_and_reregistration() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x_total", "help");
        let b = registry.counter("x_total", "other help is ignored");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct_within_one_family() {
        let registry = MetricsRegistry::new();
        let nfi = registry.counter_labeled("phase_us_total", "h", &[("phase", "nfi")]);
        let ffi = registry.counter_labeled("phase_us_total", "h", &[("phase", "ffi")]);
        nfi.add(10);
        ffi.add(20);
        let fam = registry.family_snapshot("phase_us_total").unwrap();
        assert_eq!(fam.series.len(), 2);
        assert_eq!(fam.series[0].label("phase"), Some("nfi"));
        assert_eq!(fam.series[0].value, SampleValue::Uint(10));
        assert_eq!(fam.series[1].value, SampleValue::Uint(20));
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("x_total", "h");
        let _ = registry.gauge("x_total", "h");
    }

    #[test]
    fn derived_gauge_renders_the_closure_value() {
        let registry = MetricsRegistry::new();
        let hits = registry.counter("hits_total", "h");
        let runs = registry.counter("runs_total", "h");
        let (h, r) = (hits.clone(), runs.clone());
        registry.derived_gauge("hit_rate", "hits / runs", move || {
            let runs = r.get();
            if runs == 0 {
                0.0
            } else {
                h.get() as f64 / runs as f64
            }
        });
        hits.inc();
        runs.add(2);
        let page = registry.render_prometheus();
        assert!(page.contains("hit_rate 0.5"), "{page}");
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_escaped_labels() {
        let registry = MetricsRegistry::new();
        registry
            .counter_labeled("req_total", "Requests by \"op\".", &[("op", "a\"b")])
            .inc();
        registry.gauge("depth", "Queue depth.").set(7);
        let page = registry.render_prometheus();
        assert!(page.contains("# HELP req_total Requests by \"op\".\n"));
        assert!(page.contains("# TYPE req_total counter\n"));
        assert!(page.contains("req_total{op=\"a\\\"b\"} 1\n"), "{page}");
        assert!(page.contains("# TYPE depth gauge\n"));
        assert!(page.contains("depth 7\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_and_count() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_us", "Latency.", &[("op", "run")]);
        h.record_micros(3); // [2, 4)
        h.record_micros(3);
        h.record_micros(100); // [64, 128)
        let page = registry.render_prometheus();
        assert!(page.contains("# TYPE lat_us histogram\n"));
        assert!(page.contains("lat_us_bucket{op=\"run\",le=\"4\"} 2\n"), "{page}");
        assert!(page.contains("lat_us_bucket{op=\"run\",le=\"128\"} 3\n"), "{page}");
        assert!(page.contains("lat_us_bucket{op=\"run\",le=\"+Inf\"} 3\n"), "{page}");
        assert!(page.contains("lat_us_sum{op=\"run\"} 106\n"), "{page}");
        assert!(page.contains("lat_us_count{op=\"run\"} 3\n"), "{page}");
    }

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.span("x", "r-1", Duration::from_millis(1), &[]);
        sink.event("y", "r-1", &[]);
    }

    #[test]
    fn sink_writes_one_json_line_per_record() {
        let path = std::env::temp_dir().join(format!("sfc-obs-trace-{}.jsonl", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        let sink = TraceSink::to_path(&path_str).unwrap();
        assert!(sink.is_enabled());
        sink.span(
            "cell",
            "r-42",
            Duration::from_micros(1500),
            &[("cell", "uniform/t0".to_json())],
        );
        sink.event("hit", "r-42", &[("tier", "memory".to_json())]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let span: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(span.get("kind"), Some(&"span".to_json()));
        assert_eq!(span.get("name"), Some(&"cell".to_json()));
        assert_eq!(span.get("request_id"), Some(&"r-42".to_json()));
        assert_eq!(span.get("dur_us"), Some(&1500u64.to_json()));
        assert_eq!(span.get("cell"), Some(&"uniform/t0".to_json()));
        assert!(span.get("ts_us").and_then(Value::as_u64).is_some());
        let event: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(event.get("kind"), Some(&"event".to_json()));
        assert!(event.get("dur_us").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_reflects_live_values() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c_total", "h");
        let before = registry.snapshot();
        c.add(5);
        let after = registry.snapshot();
        assert_eq!(before[0].series[0].value, SampleValue::Uint(0));
        assert_eq!(after[0].series[0].value, SampleValue::Uint(5));
    }
}
