//! Dynamic topology construction for experiment sweeps.

use crate::{Bus, Hypercube, Mesh2d, QuadtreeNet, Ring, Topology, Torus2d};

/// Identifies one of the supported topologies; used by experiment configs
/// that sweep the network dimension of the paper's parameter space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TopologyKind {
    /// Linear array ([`Bus`]).
    Bus,
    /// Ring ([`Ring`]).
    Ring,
    /// 2-D mesh ([`Mesh2d`]).
    Mesh,
    /// 2-D torus ([`Torus2d`]).
    Torus,
    /// Quadtree interconnect ([`QuadtreeNet`]).
    Quadtree,
    /// Binary hypercube ([`Hypercube`]).
    Hypercube,
    /// 3-D mesh extension ([`crate::Mesh3d`]).
    Mesh3d,
    /// 3-D torus extension ([`crate::Torus3d`]).
    Torus3d,
}

impl TopologyKind {
    /// The six topologies studied in the paper (Section II-B).
    pub const PAPER: [TopologyKind; 6] = [
        TopologyKind::Bus,
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::Quadtree,
        TopologyKind::Hypercube,
    ];

    /// The four topologies plotted in Figure 6 (bus and ring are measured
    /// but off the chart's scale).
    pub const FIGURE6: [TopologyKind; 4] = [
        TopologyKind::Mesh,
        TopologyKind::Torus,
        TopologyKind::Quadtree,
        TopologyKind::Hypercube,
    ];

    /// Build the topology with exactly `nodes` processors.
    ///
    /// `nodes` must be a power of four so that every topology in a sweep can
    /// host the same processor count (square grids need a square count, the
    /// quadtree a power of four, the hypercube a power of two). The paper's
    /// processor counts (e.g. 65,536 = 4^8) all satisfy this. The 3-D
    /// variants are not part of sweeps — construct them explicitly via
    /// `Mesh3d::new` / `Torus3d::new`; `build` panics for them.
    pub fn build(self, nodes: u64) -> Box<dyn Topology> {
        assert!(
            nodes.is_power_of_two() && nodes.trailing_zeros().is_multiple_of(2),
            "topology sweeps require a power-of-four processor count, got {nodes}"
        );
        let grid_order = nodes.trailing_zeros() / 2;
        match self {
            TopologyKind::Bus => Box::new(Bus::new(nodes)),
            TopologyKind::Ring => Box::new(Ring::new(nodes)),
            TopologyKind::Mesh => Box::new(Mesh2d::square(grid_order)),
            TopologyKind::Torus => Box::new(Torus2d::square(grid_order)),
            TopologyKind::Quadtree => Box::new(QuadtreeNet::with_nodes(nodes)),
            TopologyKind::Hypercube => Box::new(Hypercube::with_nodes(nodes)),
            TopologyKind::Mesh3d | TopologyKind::Torus3d => {
                panic!("3-D topologies are built via Mesh3d/Torus3d::new, not sweeps")
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Bus => "Bus",
            TopologyKind::Ring => "Ring",
            TopologyKind::Mesh => "Mesh",
            TopologyKind::Torus => "Torus",
            TopologyKind::Quadtree => "Quadtree",
            TopologyKind::Hypercube => "Hypercube",
            TopologyKind::Mesh3d => "Mesh3D",
            TopologyKind::Torus3d => "Torus3D",
        }
    }

    /// Parse a topology name as used on bench binaries' command lines.
    pub fn parse(s: &str) -> Option<TopologyKind> {
        match s.to_ascii_lowercase().as_str() {
            "bus" => Some(TopologyKind::Bus),
            "ring" => Some(TopologyKind::Ring),
            "mesh" | "grid" => Some(TopologyKind::Mesh),
            "torus" => Some(TopologyKind::Torus),
            "quadtree" | "tree" => Some(TopologyKind::Quadtree),
            "hypercube" | "cube" => Some(TopologyKind::Hypercube),
            "mesh3d" => Some(TopologyKind::Mesh3d),
            "torus3d" => Some(TopologyKind::Torus3d),
            _ => None,
        }
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn build_produces_requested_node_counts() {
        for kind in TopologyKind::PAPER {
            let topo = kind.build(256);
            assert_eq!(topo.num_nodes(), 256, "{kind}");
            assert_eq!(topo.kind(), kind);
        }
    }

    #[test]
    fn paper_diameters_at_65536_nodes() {
        // Sanity-check the relative connectivity the paper's Figure 6
        // reflects: hypercube < quadtree < torus < mesh << ring < bus.
        let d = |k: TopologyKind| k.build(65536).diameter();
        assert_eq!(d(TopologyKind::Hypercube), 16);
        assert_eq!(d(TopologyKind::Quadtree), 16);
        assert_eq!(d(TopologyKind::Torus), 256);
        assert_eq!(d(TopologyKind::Mesh), 510);
        assert_eq!(d(TopologyKind::Ring), 32768);
        assert_eq!(d(TopologyKind::Bus), 65535);
    }

    #[test]
    #[should_panic(expected = "power-of-four")]
    fn non_square_count_rejected() {
        let _ = TopologyKind::Mesh.build(32);
    }

    #[test]
    fn parse_round_trips() {
        for kind in TopologyKind::PAPER {
            assert_eq!(TopologyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(TopologyKind::parse("unknown"), None);
    }

    #[test]
    fn grid_side_only_on_grids() {
        assert_eq!(TopologyKind::Mesh.build(64).grid_side(), Some(8));
        assert_eq!(TopologyKind::Torus.build(64).grid_side(), Some(8));
        assert_eq!(TopologyKind::Bus.build(64).grid_side(), None);
        assert_eq!(TopologyKind::Hypercube.build(64).grid_side(), None);
        assert_eq!(TopologyKind::Quadtree.build(64).grid_side(), None);
    }
}
