//! Bus (linear array) topology.
//!
//! The paper's "bus" is the simplest network it studies: processors arranged
//! in a line, "each processor may only communicate with two direct
//! neighbors" (Section II-B). Messages between processors `a` and `b`
//! therefore traverse `|a - b|` hops.

use crate::{NodeId, Topology, TopologyKind};

/// A linear array of `p` processors; node `i` links to `i - 1` and `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bus {
    nodes: u64,
}

impl Bus {
    /// Create a bus with `nodes` processors (at least 1).
    pub fn new(nodes: u64) -> Self {
        assert!(nodes >= 1, "a bus needs at least one processor");
        Bus { nodes }
    }

    /// The processors directly linked to `a`.
    pub fn neighbors(&self, a: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(2);
        if a > 0 {
            out.push(a - 1);
        }
        if a + 1 < self.nodes {
            out.push(a + 1);
        }
        out
    }
}

impl Topology for Bus {
    fn num_nodes(&self) -> u64 {
        self.nodes
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        debug_assert!(a < self.nodes && b < self.nodes);
        a.abs_diff(b)
    }

    fn diameter(&self) -> u64 {
        self.nodes - 1
    }

    fn name(&self) -> &'static str {
        "Bus"
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Bus
    }

    fn num_links(&self) -> u64 {
        2 * (self.nodes - 1)
    }

    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        for (b, slot) in row.iter_mut().enumerate() {
            *slot = from.abs_diff(b as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::check_against_bfs;

    #[test]
    fn distances() {
        let bus = Bus::new(10);
        assert_eq!(bus.distance(0, 9), 9);
        assert_eq!(bus.distance(9, 0), 9);
        assert_eq!(bus.distance(4, 4), 0);
        assert_eq!(bus.diameter(), 9);
    }

    #[test]
    fn endpoints_have_one_neighbor() {
        let bus = Bus::new(5);
        assert_eq!(bus.neighbors(0), vec![1]);
        assert_eq!(bus.neighbors(4), vec![3]);
        assert_eq!(bus.neighbors(2), vec![1, 3]);
    }

    #[test]
    fn single_node_bus() {
        let bus = Bus::new(1);
        assert_eq!(bus.distance(0, 0), 0);
        assert_eq!(bus.diameter(), 0);
        assert!(bus.neighbors(0).is_empty());
    }

    #[test]
    fn matches_bfs() {
        let bus = Bus::new(17);
        check_against_bfs(&bus, |a| bus.neighbors(a));
    }

    #[test]
    fn num_links_equals_neighbor_degree_sum() {
        for p in [1u64, 2, 5, 16] {
            let bus = Bus::new(p);
            let degree_sum: u64 = (0..p).map(|n| bus.neighbors(n).len() as u64).sum();
            assert_eq!(bus.num_links(), degree_sum, "bus of {p}");
        }
    }
}
