//! 3-D mesh and torus topologies.
//!
//! Extensions beyond the paper's 2-D networks, supporting the future-work
//! direction of mapping onto 3-D interconnects (Section VIII, item iii).
//! Node id `z * sx * sy + y * sx + x` sits at position `(x, y, z)`.

use crate::{NodeId, Topology, TopologyKind};

/// A 3-D mesh of `sx × sy × sz` processors with orthogonal links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh3d {
    sx: u64,
    sy: u64,
    sz: u64,
}

/// A 3-D torus: [`Mesh3d`] plus wrap-around links in all three dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus3d {
    sx: u64,
    sy: u64,
    sz: u64,
}

macro_rules! grid3_common {
    ($name:ident) => {
        impl $name {
            /// Create an `sx × sy × sz` network.
            pub fn new(sx: u64, sy: u64, sz: u64) -> Self {
                assert!(sx >= 1 && sy >= 1 && sz >= 1, "dimensions must be positive");
                assert!(
                    sx.checked_mul(sy).and_then(|v| v.checked_mul(sz)).is_some(),
                    "network size overflows u64"
                );
                $name { sx, sy, sz }
            }

            /// Create a cubic network with side `2^order`.
            pub fn cube(order: u32) -> Self {
                let side = 1u64 << order;
                $name::new(side, side, side)
            }

            /// Grid position of a node.
            #[inline]
            pub fn position(&self, node: NodeId) -> (u64, u64, u64) {
                let plane = self.sx * self.sy;
                (node % self.sx, (node % plane) / self.sx, node / plane)
            }

            /// Node id at a grid position.
            #[inline]
            pub fn node_at(&self, x: u64, y: u64, z: u64) -> NodeId {
                debug_assert!(x < self.sx && y < self.sy && z < self.sz);
                z * self.sx * self.sy + y * self.sx + x
            }
        }
    };
}

grid3_common!(Mesh3d);
grid3_common!(Torus3d);

impl Mesh3d {
    /// The processors directly linked to `a`.
    pub fn neighbors(&self, a: NodeId) -> Vec<NodeId> {
        let (x, y, z) = self.position(a);
        let mut out = Vec::with_capacity(6);
        if x > 0 {
            out.push(self.node_at(x - 1, y, z));
        }
        if x + 1 < self.sx {
            out.push(self.node_at(x + 1, y, z));
        }
        if y > 0 {
            out.push(self.node_at(x, y - 1, z));
        }
        if y + 1 < self.sy {
            out.push(self.node_at(x, y + 1, z));
        }
        if z > 0 {
            out.push(self.node_at(x, y, z - 1));
        }
        if z + 1 < self.sz {
            out.push(self.node_at(x, y, z + 1));
        }
        out
    }
}

impl Torus3d {
    /// The processors directly linked to `a` (deduplicated for degenerate
    /// side lengths).
    pub fn neighbors(&self, a: NodeId) -> Vec<NodeId> {
        let (x, y, z) = self.position(a);
        let mut out = vec![
            self.node_at((x + self.sx - 1) % self.sx, y, z),
            self.node_at((x + 1) % self.sx, y, z),
            self.node_at(x, (y + self.sy - 1) % self.sy, z),
            self.node_at(x, (y + 1) % self.sy, z),
            self.node_at(x, y, (z + self.sz - 1) % self.sz),
            self.node_at(x, y, (z + 1) % self.sz),
        ];
        out.sort_unstable();
        out.dedup();
        out.retain(|&n| n != a);
        out
    }
}

impl Topology for Mesh3d {
    fn num_nodes(&self) -> u64 {
        self.sx * self.sy * self.sz
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay, az) = self.position(a);
        let (bx, by, bz) = self.position(b);
        ax.abs_diff(bx) + ay.abs_diff(by) + az.abs_diff(bz)
    }

    fn diameter(&self) -> u64 {
        (self.sx - 1) + (self.sy - 1) + (self.sz - 1)
    }

    fn name(&self) -> &'static str {
        "Mesh3D"
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Mesh3d
    }

    fn num_links(&self) -> u64 {
        2 * (self.sy * self.sz * (self.sx - 1)
            + self.sx * self.sz * (self.sy - 1)
            + self.sx * self.sy * (self.sz - 1))
    }
}

impl Topology for Torus3d {
    fn num_nodes(&self) -> u64 {
        self.sx * self.sy * self.sz
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay, az) = self.position(a);
        let (bx, by, bz) = self.position(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        let dz = az.abs_diff(bz);
        dx.min(self.sx - dx) + dy.min(self.sy - dy) + dz.min(self.sz - dz)
    }

    fn diameter(&self) -> u64 {
        self.sx / 2 + self.sy / 2 + self.sz / 2
    }

    fn name(&self) -> &'static str {
        "Torus3D"
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Torus3d
    }

    fn num_links(&self) -> u64 {
        2 * (self.sy * self.sz * crate::ring_undirected_edges(self.sx)
            + self.sx * self.sz * crate::ring_undirected_edges(self.sy)
            + self.sx * self.sy * crate::ring_undirected_edges(self.sz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::check_against_bfs;

    #[test]
    fn mesh3d_distance() {
        let mesh = Mesh3d::new(4, 4, 4);
        assert_eq!(
            mesh.distance(mesh.node_at(0, 0, 0), mesh.node_at(3, 3, 3)),
            9
        );
        assert_eq!(mesh.diameter(), 9);
    }

    #[test]
    fn torus3d_wraps() {
        let torus = Torus3d::new(4, 4, 4);
        assert_eq!(
            torus.distance(torus.node_at(0, 0, 0), torus.node_at(3, 3, 3)),
            3
        );
        assert_eq!(torus.diameter(), 6);
    }

    #[test]
    fn position_round_trip() {
        let mesh = Mesh3d::new(3, 4, 5);
        for n in 0..mesh.num_nodes() {
            let (x, y, z) = mesh.position(n);
            assert_eq!(mesh.node_at(x, y, z), n);
        }
    }

    #[test]
    fn mesh3d_matches_bfs() {
        let mesh = Mesh3d::new(3, 3, 3);
        check_against_bfs(&mesh, |a| mesh.neighbors(a));
    }

    #[test]
    fn torus3d_matches_bfs() {
        let torus = Torus3d::new(3, 4, 2);
        check_against_bfs(&torus, |a| torus.neighbors(a));
    }

    #[test]
    fn num_links_equals_neighbor_degree_sum() {
        for (sx, sy, sz) in [(1u64, 1u64, 1u64), (2, 2, 2), (3, 4, 2), (4, 4, 4)] {
            let mesh = Mesh3d::new(sx, sy, sz);
            let sum: u64 = (0..mesh.num_nodes()).map(|n| mesh.neighbors(n).len() as u64).sum();
            assert_eq!(mesh.num_links(), sum, "mesh {sx}x{sy}x{sz}");
            let torus = Torus3d::new(sx, sy, sz);
            let sum: u64 = (0..torus.num_nodes()).map(|n| torus.neighbors(n).len() as u64).sum();
            assert_eq!(torus.num_links(), sum, "torus {sx}x{sy}x{sz}");
        }
    }
}
