//! Hypercube topology.
//!
//! The classical binary `d`-cube: `2^d` processors, node `a` links to every
//! node differing from it in exactly one address bit. The hop distance is
//! the Hamming distance of the node ids. The paper includes the hypercube
//! as the best-connected comparison point for the near-field interaction
//! experiments (Figure 6), with the caveat that its contention behavior is
//! not modeled.

use crate::{NodeId, Topology, TopologyKind};

/// A binary hypercube with `2^dim` processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Create a hypercube of the given dimension (`0 ..= 63`).
    pub fn new(dim: u32) -> Self {
        assert!(dim <= 63, "hypercube dimension must be <= 63, got {dim}");
        Hypercube { dim }
    }

    /// Create the smallest hypercube with at least `nodes` processors;
    /// panics unless `nodes` is a power of two (the paper always uses exact
    /// powers).
    pub fn with_nodes(nodes: u64) -> Self {
        assert!(
            nodes.is_power_of_two(),
            "hypercube node count must be a power of two, got {nodes}"
        );
        Hypercube::new(nodes.trailing_zeros())
    }

    /// The dimension `d`.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The processors directly linked to `a` (one per address bit).
    pub fn neighbors(&self, a: NodeId) -> Vec<NodeId> {
        (0..self.dim).map(|bit| a ^ (1u64 << bit)).collect()
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> u64 {
        1u64 << self.dim
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        debug_assert!(a < self.num_nodes() && b < self.num_nodes());
        (a ^ b).count_ones() as u64
    }

    fn diameter(&self) -> u64 {
        self.dim as u64
    }

    fn name(&self) -> &'static str {
        "Hypercube"
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Hypercube
    }

    fn num_links(&self) -> u64 {
        // Every node has `dim` neighbors; each directed link counted once.
        self.num_nodes() * self.dim as u64
    }

    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        for (b, slot) in row.iter_mut().enumerate() {
            *slot = (from ^ b as u64).count_ones() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::check_against_bfs;

    #[test]
    fn distance_is_hamming() {
        let cube = Hypercube::new(4);
        assert_eq!(cube.distance(0b0000, 0b1111), 4);
        assert_eq!(cube.distance(0b1010, 0b1001), 2);
        assert_eq!(cube.distance(7, 7), 0);
        assert_eq!(cube.diameter(), 4);
    }

    #[test]
    fn with_nodes_matches_dimension() {
        assert_eq!(Hypercube::with_nodes(65536).dim(), 16);
        assert_eq!(Hypercube::with_nodes(1).dim(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Hypercube::with_nodes(100);
    }

    #[test]
    fn every_node_has_dim_neighbors() {
        let cube = Hypercube::new(5);
        for n in 0..cube.num_nodes() {
            let nb = cube.neighbors(n);
            assert_eq!(nb.len(), 5);
            for m in nb {
                assert_eq!(cube.distance(n, m), 1);
            }
        }
    }

    #[test]
    fn matches_bfs() {
        let cube = Hypercube::new(6);
        check_against_bfs(&cube, |a| cube.neighbors(a));
    }

    #[test]
    fn num_links_equals_neighbor_degree_sum() {
        for dim in [0u32, 1, 3, 5] {
            let cube = Hypercube::new(dim);
            let degree_sum: u64 = (0..cube.num_nodes())
                .map(|n| cube.neighbors(n).len() as u64)
                .sum();
            assert_eq!(cube.num_links(), degree_sum, "dim {dim}");
        }
    }

    #[test]
    fn zero_dim_cube_is_single_node() {
        let cube = Hypercube::new(0);
        assert_eq!(cube.num_nodes(), 1);
        assert_eq!(cube.distance(0, 0), 0);
        assert!(cube.neighbors(0).is_empty());
    }
}
