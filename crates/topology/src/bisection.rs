//! Bisection widths.
//!
//! The bisection width — the minimum number of links that must be cut to
//! split the processors into two equal halves — is the classic complement to
//! the hop-distance view the ACD takes: it bounds the throughput of
//! all-to-all-style traffic regardless of placement. The closed forms below
//! hold for the power-of-two sizes all the workspace's sweeps use, and the
//! tests cross-check them against brute-force minimum balanced cuts on small
//! instances.
//!
//! | topology | bisection width |
//! |---|---|
//! | bus (p ≥ 2) | 1 |
//! | ring (p ≥ 3) | 2 |
//! | sx × sy mesh (even sides) | min(sx, sy) |
//! | sx × sy torus (even sides ≥ 4) | 2 · min(sx, sy) |
//! | d-cube | 2^(d−1) |
//! | quadtree (leaves + switches) | 2 |

use crate::Topology;

/// Closed-form bisection width of a topology built by
/// [`crate::TopologyKind::build`] (power-of-four processor counts). Returns
/// 0 for single-node networks.
pub fn bisection_width(topo: &dyn Topology) -> u64 {
    let p = topo.num_nodes();
    if p <= 1 {
        return 0;
    }
    match topo.kind() {
        crate::TopologyKind::Bus => 1,
        crate::TopologyKind::Ring => 2,
        crate::TopologyKind::Mesh => {
            
            (p as f64).sqrt() as u64
        }
        crate::TopologyKind::Torus => {
            let side = (p as f64).sqrt() as u64;
            if side <= 2 {
                // Wrap links coincide with direct links: the 2x2 torus is a
                // 4-cycle.
                side
            } else {
                2 * side
            }
        }
        crate::TopologyKind::Hypercube => p / 2,
        crate::TopologyKind::Quadtree => 2,
        crate::TopologyKind::Mesh3d | crate::TopologyKind::Torus3d => {
            unimplemented!("3-D bisection widths are provided by the concrete types")
        }
    }
}

/// Brute-force minimum balanced cut over an explicit edge list; exponential,
/// for test-sized graphs only (`p ≤ 16`).
pub fn brute_force_bisection(p: u64, edges: &[(u64, u64)]) -> u64 {
    assert!(p <= 16 && p.is_multiple_of(2), "brute force limited to small even p");
    let half = (p / 2) as u32;
    let mut best = u64::MAX;
    // Fix node 0 in the left half to halve the search space.
    for mask in 0u32..(1 << (p - 1)) {
        let set = (mask << 1) | 1;
        if set.count_ones() != half {
            continue;
        }
        let mut cut = 0u64;
        for &(a, b) in edges {
            let ia = (set >> a) & 1;
            let ib = (set >> b) & 1;
            if ia != ib {
                cut += 1;
            }
        }
        best = best.min(cut);
    }
    best
}

/// Undirected edge list of a topology with an explicit `neighbors` closure.
pub fn edge_list<F>(p: u64, mut neighbors: F) -> Vec<(u64, u64)>
where
    F: FnMut(u64) -> Vec<u64>,
{
    let mut edges = Vec::new();
    for a in 0..p {
        for b in neighbors(a) {
            if a < b {
                edges.push((a, b));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bus, Hypercube, Mesh2d, QuadtreeNet, Ring, Torus2d};

    #[test]
    fn bus_and_ring() {
        let bus = Bus::new(8);
        assert_eq!(bisection_width(&bus), 1);
        assert_eq!(
            brute_force_bisection(8, &edge_list(8, |a| bus.neighbors(a))),
            1
        );
        let ring = Ring::new(8);
        assert_eq!(bisection_width(&ring), 2);
        assert_eq!(
            brute_force_bisection(8, &edge_list(8, |a| ring.neighbors(a))),
            2
        );
    }

    #[test]
    fn square_mesh() {
        let mesh = Mesh2d::new(4, 4);
        assert_eq!(bisection_width(&mesh), 4);
        assert_eq!(
            brute_force_bisection(16, &edge_list(16, |a| mesh.neighbors(a))),
            4
        );
    }

    #[test]
    fn square_torus() {
        let torus = Torus2d::new(4, 4);
        assert_eq!(bisection_width(&torus), 8);
        assert_eq!(
            brute_force_bisection(16, &edge_list(16, |a| torus.neighbors(a))),
            8
        );
        // Degenerate 2x2 torus is a 4-cycle.
        let tiny = Torus2d::new(2, 2);
        assert_eq!(bisection_width(&tiny), 2);
        assert_eq!(
            brute_force_bisection(4, &edge_list(4, |a| tiny.neighbors(a))),
            2
        );
    }

    #[test]
    fn hypercube() {
        let cube = Hypercube::new(4);
        assert_eq!(bisection_width(&cube), 8);
        let small = Hypercube::new(3);
        assert_eq!(bisection_width(&small), 4);
        assert_eq!(
            brute_force_bisection(8, &edge_list(8, |a| small.neighbors(a))),
            4
        );
    }

    #[test]
    fn quadtree_cuts_at_the_root() {
        let net = QuadtreeNet::new(3);
        assert_eq!(bisection_width(&net), 2);
    }

    #[test]
    fn single_node_networks() {
        assert_eq!(bisection_width(&Bus::new(1)), 0);
        assert_eq!(bisection_width(&Hypercube::new(0)), 0);
    }

    #[test]
    fn ordering_matches_connectivity_intuition() {
        // At 65,536 processors: bus < ring < mesh < torus < hypercube — the
        // inverse of their Figure 6 ACD rankings, as theory predicts.
        let p = 65_536u64;
        let widths: Vec<u64> = [
            crate::TopologyKind::Bus,
            crate::TopologyKind::Ring,
            crate::TopologyKind::Mesh,
            crate::TopologyKind::Torus,
            crate::TopologyKind::Hypercube,
        ]
        .iter()
        .map(|k| bisection_width(k.build(p).as_ref()))
        .collect();
        assert_eq!(widths, vec![1, 2, 256, 512, 32_768]);
        assert!(widths.windows(2).all(|w| w[0] < w[1]));
    }
}
