//! 2-D mesh and torus topologies.
//!
//! "The bulk of our experiments focused on mesh/grid and torus topologies
//! which are more common on HPC architectures" (Section II-B). Processors
//! are arranged on an `sx × sy` grid; node id `y * sx + x` sits at grid
//! position `(x, y)`. The mesh links orthogonal neighbors; the torus adds
//! wrap-around links in both dimensions.
//!
//! These are the two topologies to which processor-order SFCs apply
//! ([`Topology::grid_side`] returns `Some` here), mirroring step 3 of the
//! paper's algorithm: "Order the processors with the specified
//! processor-order SFC (applies only to mesh and torus topologies)".

use crate::{NodeId, Topology, TopologyKind};

/// Position decomposition shared by mesh and torus.
#[inline]
fn coords(node: NodeId, sx: u64) -> (u64, u64) {
    (node % sx, node / sx)
}

/// A 2-D mesh of `sx × sy` processors with orthogonal links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2d {
    sx: u64,
    sy: u64,
}

impl Mesh2d {
    /// Create an `sx × sy` mesh.
    pub fn new(sx: u64, sy: u64) -> Self {
        assert!(sx >= 1 && sy >= 1, "mesh dimensions must be positive");
        assert!(
            sx.checked_mul(sy).is_some(),
            "mesh size overflows u64"
        );
        Mesh2d { sx, sy }
    }

    /// Create a square mesh with side `2^order`, the configuration the paper
    /// pairs with processor-order SFCs.
    pub fn square(order: u32) -> Self {
        let side = 1u64 << order;
        Mesh2d::new(side, side)
    }

    /// Grid position of a node.
    #[inline]
    pub fn position(&self, node: NodeId) -> (u64, u64) {
        coords(node, self.sx)
    }

    /// Node id at a grid position.
    #[inline]
    pub fn node_at(&self, x: u64, y: u64) -> NodeId {
        debug_assert!(x < self.sx && y < self.sy);
        y * self.sx + x
    }

    /// The processors directly linked to `a`.
    pub fn neighbors(&self, a: NodeId) -> Vec<NodeId> {
        let (x, y) = self.position(a);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(self.node_at(x - 1, y));
        }
        if x + 1 < self.sx {
            out.push(self.node_at(x + 1, y));
        }
        if y > 0 {
            out.push(self.node_at(x, y - 1));
        }
        if y + 1 < self.sy {
            out.push(self.node_at(x, y + 1));
        }
        out
    }
}

impl Topology for Mesh2d {
    fn num_nodes(&self) -> u64 {
        self.sx * self.sy
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        debug_assert!(a < self.num_nodes() && b < self.num_nodes());
        let (ax, ay) = self.position(a);
        let (bx, by) = self.position(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    fn diameter(&self) -> u64 {
        (self.sx - 1) + (self.sy - 1)
    }

    fn name(&self) -> &'static str {
        "Mesh"
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Mesh
    }

    fn num_links(&self) -> u64 {
        // Each row has sx-1 undirected edges, each column sy-1.
        2 * (self.sy * (self.sx - 1) + self.sx * (self.sy - 1))
    }

    fn grid_side(&self) -> Option<u64> {
        (self.sx == self.sy).then_some(self.sx)
    }

    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        // Hoist `from`'s decomposition and walk the grid row-major, tracking
        // (x, y) incrementally instead of dividing per node.
        let (fx, fy) = self.position(from);
        let (mut x, mut y) = (0u64, 0u64);
        for slot in row.iter_mut() {
            *slot = fx.abs_diff(x) + fy.abs_diff(y);
            x += 1;
            if x == self.sx {
                x = 0;
                y += 1;
            }
        }
    }
}

/// A 2-D torus: a mesh with wrap-around links in both dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus2d {
    sx: u64,
    sy: u64,
}

impl Torus2d {
    /// Create an `sx × sy` torus.
    pub fn new(sx: u64, sy: u64) -> Self {
        assert!(sx >= 1 && sy >= 1, "torus dimensions must be positive");
        assert!(sx.checked_mul(sy).is_some(), "torus size overflows u64");
        Torus2d { sx, sy }
    }

    /// Create a square torus with side `2^order`.
    pub fn square(order: u32) -> Self {
        let side = 1u64 << order;
        Torus2d::new(side, side)
    }

    /// Grid position of a node.
    #[inline]
    pub fn position(&self, node: NodeId) -> (u64, u64) {
        coords(node, self.sx)
    }

    /// Node id at a grid position.
    #[inline]
    pub fn node_at(&self, x: u64, y: u64) -> NodeId {
        debug_assert!(x < self.sx && y < self.sy);
        y * self.sx + x
    }

    /// The processors directly linked to `a` (deduplicated for degenerate
    /// side lengths of 1 or 2).
    pub fn neighbors(&self, a: NodeId) -> Vec<NodeId> {
        let (x, y) = self.position(a);
        let mut out = vec![
            self.node_at((x + self.sx - 1) % self.sx, y),
            self.node_at((x + 1) % self.sx, y),
            self.node_at(x, (y + self.sy - 1) % self.sy),
            self.node_at(x, (y + 1) % self.sy),
        ];
        out.sort_unstable();
        out.dedup();
        out.retain(|&n| n != a);
        out
    }
}

impl Topology for Torus2d {
    fn num_nodes(&self) -> u64 {
        self.sx * self.sy
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        debug_assert!(a < self.num_nodes() && b < self.num_nodes());
        let (ax, ay) = self.position(a);
        let (bx, by) = self.position(b);
        let dx = ax.abs_diff(bx);
        let dy = ay.abs_diff(by);
        dx.min(self.sx - dx) + dy.min(self.sy - dy)
    }

    fn diameter(&self) -> u64 {
        self.sx / 2 + self.sy / 2
    }

    fn name(&self) -> &'static str {
        "Torus"
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Torus
    }

    fn num_links(&self) -> u64 {
        2 * (self.sy * crate::ring_undirected_edges(self.sx)
            + self.sx * crate::ring_undirected_edges(self.sy))
    }

    fn grid_side(&self) -> Option<u64> {
        (self.sx == self.sy).then_some(self.sx)
    }

    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        let (fx, fy) = self.position(from);
        let (mut x, mut y) = (0u64, 0u64);
        for slot in row.iter_mut() {
            let dx = fx.abs_diff(x);
            let dy = fy.abs_diff(y);
            *slot = dx.min(self.sx - dx) + dy.min(self.sy - dy);
            x += 1;
            if x == self.sx {
                x = 0;
                y += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::check_against_bfs;

    #[test]
    fn mesh_distance_is_manhattan() {
        let mesh = Mesh2d::new(8, 8);
        assert_eq!(mesh.distance(mesh.node_at(0, 0), mesh.node_at(7, 7)), 14);
        assert_eq!(mesh.distance(mesh.node_at(3, 4), mesh.node_at(3, 4)), 0);
        assert_eq!(mesh.diameter(), 14);
    }

    #[test]
    fn torus_uses_wraparound() {
        let torus = Torus2d::new(8, 8);
        assert_eq!(torus.distance(torus.node_at(0, 0), torus.node_at(7, 7)), 2);
        assert_eq!(torus.distance(torus.node_at(0, 0), torus.node_at(4, 4)), 8);
        assert_eq!(torus.diameter(), 8);
    }

    #[test]
    fn torus_never_exceeds_mesh_distance() {
        let mesh = Mesh2d::new(6, 5);
        let torus = Torus2d::new(6, 5);
        for a in 0..30 {
            for b in 0..30 {
                assert!(torus.distance(a, b) <= mesh.distance(a, b));
            }
        }
    }

    #[test]
    fn rectangular_grids_report_no_square_side() {
        assert_eq!(Mesh2d::new(4, 8).grid_side(), None);
        assert_eq!(Mesh2d::new(8, 8).grid_side(), Some(8));
        assert_eq!(Torus2d::square(3).grid_side(), Some(8));
    }

    #[test]
    fn corner_node_has_two_neighbors() {
        let mesh = Mesh2d::new(4, 4);
        assert_eq!(mesh.neighbors(0).len(), 2);
        assert_eq!(mesh.neighbors(5).len(), 4);
    }

    #[test]
    fn torus_all_nodes_have_four_neighbors() {
        let torus = Torus2d::new(4, 4);
        for n in 0..16 {
            assert_eq!(torus.neighbors(n).len(), 4);
        }
    }

    #[test]
    fn mesh_matches_bfs() {
        let mesh = Mesh2d::new(5, 7);
        check_against_bfs(&mesh, |a| mesh.neighbors(a));
    }

    #[test]
    fn torus_matches_bfs() {
        for (sx, sy) in [(4u64, 4u64), (5, 3), (2, 6), (1, 5)] {
            let torus = Torus2d::new(sx, sy);
            check_against_bfs(&torus, |a| torus.neighbors(a));
        }
    }

    #[test]
    fn num_links_equals_neighbor_degree_sum() {
        for (sx, sy) in [(1u64, 1u64), (1, 4), (2, 2), (4, 4), (5, 3)] {
            let mesh = Mesh2d::new(sx, sy);
            let sum: u64 = (0..mesh.num_nodes()).map(|n| mesh.neighbors(n).len() as u64).sum();
            assert_eq!(mesh.num_links(), sum, "mesh {sx}x{sy}");
            let torus = Torus2d::new(sx, sy);
            let sum: u64 = (0..torus.num_nodes()).map(|n| torus.neighbors(n).len() as u64).sum();
            assert_eq!(torus.num_links(), sum, "torus {sx}x{sy}");
        }
    }

    #[test]
    fn degenerate_torus_sides() {
        let torus = Torus2d::new(2, 2);
        // Side-2 wraparound coincides with the direct link; no double edges.
        assert_eq!(torus.neighbors(0), vec![1, 2]);
        assert_eq!(torus.distance(0, 3), 2);
    }
}
