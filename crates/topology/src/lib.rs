//! # sfc-topology
//!
//! Interconnection network topologies and processor rank assignment, as used
//! by the Average Communicated Distance (ACD) model of *DeFord &
//! Kalyanaraman (ICPP 2013)*.
//!
//! The paper evaluates six topologies (Section II-B): **bus** (linear
//! array), **ring**, 2-D **mesh**, 2-D **torus**, **quadtree**, and
//! **hypercube**. The communication distance between two processors is the
//! number of hops on the shortest path through the interconnect, computed
//! here in closed form for every topology (and cross-validated against BFS
//! on the explicit link graph in the test suite).
//!
//! ## Nodes vs. ranks
//!
//! Each topology has `p` *processors* addressed by **physical node ids**
//! `0 .. p`. For the mesh and torus the node id encodes the grid position
//! (row-major). An application, however, addresses processors by **rank**
//! `0 .. p`; the mapping from rank to physical node is the *processor-order
//! SFC* of the paper. [`RankedNetwork`] couples a topology with such a map;
//! for topologies other than mesh/torus the paper uses the identity mapping
//! (their node numbering is already canonical).
//!
//! ```
//! use sfc_topology::{Torus2d, RankedNetwork, Topology};
//! use sfc_curves::CurveKind;
//!
//! // A 16×16 torus whose ranks follow the Hilbert curve.
//! let net = RankedNetwork::with_sfc_ranks(Torus2d::square(4), CurveKind::Hilbert);
//! assert_eq!(net.num_ranks(), 256);
//! // Consecutive ranks sit on adjacent nodes (Hilbert takes unit steps):
//! assert_eq!(net.rank_distance(41, 42), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod bisection;
pub mod bus;
pub mod hypercube;
pub mod kind;
pub mod mesh;
pub mod mesh3d;
pub mod quadtree_net;
pub mod rankmap;
pub mod ring;

pub use bisection::bisection_width;
pub use bus::Bus;
pub use hypercube::Hypercube;
pub use kind::TopologyKind;
pub use mesh::{Mesh2d, Torus2d};
pub use mesh3d::{Mesh3d, Torus3d};
pub use quadtree_net::QuadtreeNet;
pub use rankmap::{IdentityMap, RankMap, RankedNetwork, SfcRankMap};
pub use ring::Ring;

/// A physical node of an interconnect.
pub type NodeId = u64;

/// An interconnection network with shortest-path hop distances.
///
/// Implementations must guarantee the metric axioms: `distance(a, a) == 0`,
/// symmetry, and the triangle inequality — the test suite checks all three
/// against BFS on the explicit link graph.
pub trait Topology: Send + Sync {
    /// Number of processors in the network.
    fn num_nodes(&self) -> u64;

    /// Shortest-path distance in hops between the processors `a` and `b`.
    ///
    /// For indirect topologies (the quadtree), hops through internal
    /// switches are counted.
    fn distance(&self, a: NodeId, b: NodeId) -> u64;

    /// The largest distance between any pair of processors.
    fn diameter(&self) -> u64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The kind tag for this topology.
    fn kind(&self) -> TopologyKind;

    /// Total number of *directed* links in the network: every physical
    /// channel counted once per direction, matching how
    /// [`bfs`](crate::bfs) and the link-load model treat `(from, to)`
    /// pairs. Load statistics normalize by this, so an idle link counts
    /// toward the mean — a workload concentrating traffic on 2 of 1000
    /// links must report a large imbalance, not a perfect one.
    ///
    /// For indirect topologies (the quadtree), switch-to-switch links are
    /// counted too, consistent with [`Topology::distance`] counting hops
    /// through switches.
    fn num_links(&self) -> u64;

    /// Side length of the processor grid if this topology *is* a 2-D grid
    /// (mesh/torus); `None` otherwise. Processor-order SFCs apply only to
    /// grid topologies (Section IV, step 3 of the paper).
    fn grid_side(&self) -> Option<u64> {
        None
    }

    /// Fill `row[b] = distance(from, b)` for every node `b` in
    /// `0 .. row.len()` (callers pass a `num_nodes()`-sized slice).
    ///
    /// This is the bulk entry point used to build dense distance tables: one
    /// virtual call per *row* instead of one per *pair*, letting each
    /// topology hoist the invariants of `from` (its grid position, its
    /// Morton prefix, …) out of the scan. The default implementation just
    /// loops over [`Topology::distance`]; every concrete topology overrides
    /// it with the hoisted closed form, and the test suite checks the two
    /// agree element for element.
    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        for (b, slot) in row.iter_mut().enumerate() {
            *slot = self.distance(from, b as NodeId);
        }
    }
}

/// Directed links contributed by the wrap-around rings of a torus: a ring
/// of side `s` has `s` undirected edges, except the degenerate sides where
/// the wrap coincides with the direct link (`s == 2`) or does not exist
/// (`s <= 1`).
pub(crate) fn ring_undirected_edges(s: u64) -> u64 {
    match s {
        0 | 1 => 0,
        2 => 1,
        s => s,
    }
}

/// Blanket impl so `&T` works wherever `T: Topology` does.
impl<T: Topology + ?Sized> Topology for &T {
    fn num_nodes(&self) -> u64 {
        (**self).num_nodes()
    }
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        (**self).distance(a, b)
    }
    fn diameter(&self) -> u64 {
        (**self).diameter()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn kind(&self) -> TopologyKind {
        (**self).kind()
    }
    fn num_links(&self) -> u64 {
        (**self).num_links()
    }
    fn grid_side(&self) -> Option<u64> {
        (**self).grid_side()
    }
    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        (**self).fill_distance_row(from, row)
    }
}

impl Topology for Box<dyn Topology> {
    fn num_nodes(&self) -> u64 {
        (**self).num_nodes()
    }
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        (**self).distance(a, b)
    }
    fn diameter(&self) -> u64 {
        (**self).diameter()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn kind(&self) -> TopologyKind {
        (**self).kind()
    }
    fn num_links(&self) -> u64 {
        (**self).num_links()
    }
    fn grid_side(&self) -> Option<u64> {
        (**self).grid_side()
    }
    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        (**self).fill_distance_row(from, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_passthrough() {
        let boxed: Box<dyn Topology> = Box::new(Ring::new(8));
        assert_eq!(boxed.num_nodes(), 8);
        assert_eq!(boxed.distance(0, 5), 3);
        assert_eq!(boxed.diameter(), 4);
        assert_eq!(boxed.kind(), TopologyKind::Ring);
        assert_eq!(boxed.num_links(), 16);
        assert_eq!(boxed.grid_side(), None);
        let by_ref: &dyn Topology = &*boxed;
        assert_eq!(by_ref.distance(1, 2), 1);
    }

    #[test]
    fn fill_distance_row_forwards_through_trait_objects() {
        let boxed: Box<dyn Topology> = Box::new(Ring::new(8));
        let mut row = vec![0u64; 8];
        boxed.fill_distance_row(3, &mut row);
        for b in 0..8u64 {
            assert_eq!(row[b as usize], boxed.distance(3, b), "node {b}");
        }
        let by_ref: &dyn Topology = &*boxed;
        let mut row2 = vec![0u64; 8];
        by_ref.fill_distance_row(3, &mut row2);
        assert_eq!(row, row2);
    }

    #[test]
    fn fill_distance_row_overrides_match_pairwise_distance() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Bus::new(17)),
            Box::new(Ring::new(13)),
            Box::new(Mesh2d::new(5, 7)),
            Box::new(Torus2d::new(6, 5)),
            Box::new(QuadtreeNet::new(3)),
            Box::new(Hypercube::new(5)),
        ];
        for topo in &topos {
            let n = topo.num_nodes() as usize;
            let mut row = vec![u64::MAX; n];
            for from in 0..n as u64 {
                topo.fill_distance_row(from, &mut row);
                for b in 0..n as u64 {
                    assert_eq!(
                        row[b as usize],
                        topo.distance(from, b),
                        "{} row {from} node {b}",
                        topo.name()
                    );
                }
            }
        }
    }
}
