//! Breadth-first-search utilities for validating closed-form distances.
//!
//! Every topology in this crate computes hop distances in closed form. These
//! helpers compute the same distances by BFS over the explicit link graph so
//! the test suites can cross-validate the arithmetic, and so ablation
//! benches can quantify what the closed forms buy.

use crate::{NodeId, Topology};
use std::collections::VecDeque;

/// Single-source shortest hop counts over an adjacency closure.
///
/// Returns a vector of length `num_nodes` where entry `i` is the hop count
/// from `source` to node `i`, or `u64::MAX` if unreachable.
pub fn bfs_distances<F>(num_nodes: u64, source: NodeId, mut neighbors: F) -> Vec<u64>
where
    F: FnMut(NodeId) -> Vec<NodeId>,
{
    assert!(source < num_nodes);
    let mut dist = vec![u64::MAX; num_nodes as usize];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(node) = queue.pop_front() {
        let d = dist[node as usize];
        for nb in neighbors(node) {
            debug_assert!(nb < num_nodes, "neighbor {nb} out of range");
            if dist[nb as usize] == u64::MAX {
                dist[nb as usize] = d + 1;
                queue.push_back(nb);
            }
        }
    }
    dist
}

/// Assert that a topology's closed-form `distance` matches BFS over the link
/// graph given by `neighbors`, for every source node. Intended for tests on
/// small networks.
pub fn check_against_bfs<T, F>(topo: &T, mut neighbors: F)
where
    T: Topology,
    F: FnMut(NodeId) -> Vec<NodeId>,
{
    let n = topo.num_nodes();
    assert!(n <= 4096, "check_against_bfs is for small test networks");
    let mut max_seen = 0u64;
    for src in 0..n {
        let dist = bfs_distances(n, src, &mut neighbors);
        for (dst, &d) in dist.iter().enumerate() {
            assert_ne!(d, u64::MAX, "{}: node {dst} unreachable from {src}", topo.name());
            assert_eq!(
                topo.distance(src, dst as u64),
                d,
                "{}: distance({src}, {dst})",
                topo.name()
            );
            max_seen = max_seen.max(d);
        }
    }
    assert_eq!(
        topo.diameter(),
        max_seen,
        "{}: diameter mismatch",
        topo.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path_graph() {
        // 0 - 1 - 2 - 3
        let dist = bfs_distances(4, 0, |n| {
            let mut v = Vec::new();
            if n > 0 {
                v.push(n - 1);
            }
            if n < 3 {
                v.push(n + 1);
            }
            v
        });
        assert_eq!(dist, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        // Two disconnected nodes.
        let dist = bfs_distances(2, 0, |_| Vec::new());
        assert_eq!(dist, vec![0, u64::MAX]);
    }

    #[test]
    fn bfs_handles_cycles() {
        // Triangle: all pairwise distance 1.
        let dist = bfs_distances(3, 1, |n| vec![(n + 1) % 3, (n + 2) % 3]);
        assert_eq!(dist, vec![1, 0, 1]);
    }
}
