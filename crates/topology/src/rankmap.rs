//! Processor rank assignment — the paper's *processor-order SFCs*.
//!
//! Applications address processors by rank `0 .. p`; the interconnect
//! addresses them by physical node id. The paper's second use-case for SFCs
//! (Section I) is choosing this rank→node map: on a mesh or torus, rank `r`
//! is placed at the grid position the chosen SFC visits `r`-th. On the other
//! topologies the identity map is used — their canonical numbering already
//! reflects the network structure.

use crate::{NodeId, Topology};
use sfc_curves::{CurveKind, Point2};

/// A bijection between application ranks and physical nodes.
pub trait RankMap: Send + Sync {
    /// Physical node hosting the given rank.
    fn node_of(&self, rank: u64) -> NodeId;

    /// Rank hosted on the given physical node.
    fn rank_of(&self, node: NodeId) -> u64;

    /// Number of ranks (equals the node count of the paired topology).
    fn len(&self) -> u64;

    /// True when there are no ranks (never for valid networks).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The identity rank map: rank `r` lives on node `r`.
#[derive(Debug, Clone, Copy)]
pub struct IdentityMap {
    len: u64,
}

impl IdentityMap {
    /// Identity map over `len` ranks.
    pub fn new(len: u64) -> Self {
        IdentityMap { len }
    }
}

impl RankMap for IdentityMap {
    #[inline]
    fn node_of(&self, rank: u64) -> NodeId {
        debug_assert!(rank < self.len);
        rank
    }

    #[inline]
    fn rank_of(&self, node: NodeId) -> u64 {
        debug_assert!(node < self.len);
        node
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// A rank map that lays ranks along a space-filling curve over a square
/// power-of-two processor grid: rank `r` is placed at the `r`-th point of
/// the curve, and the physical node id is the row-major encoding of that
/// grid position.
#[derive(Debug, Clone, Copy)]
pub struct SfcRankMap {
    curve: CurveKind,
    /// Grid order: the processor grid is `2^order × 2^order`.
    order: u32,
}

impl SfcRankMap {
    /// Create a map for a `2^order`-sided processor grid following `curve`.
    pub fn new(curve: CurveKind, order: u32) -> Self {
        SfcRankMap { curve, order }
    }

    /// Create a map for a grid topology with `side × side` nodes. Panics if
    /// `side` is not a power of two (the paper always uses powers of two).
    pub fn for_side(curve: CurveKind, side: u64) -> Self {
        assert!(
            side.is_power_of_two(),
            "SFC rank maps require a power-of-two grid side, got {side}"
        );
        SfcRankMap::new(curve, side.trailing_zeros())
    }

    /// The curve kind used by this map.
    pub fn curve(&self) -> CurveKind {
        self.curve
    }

    /// The grid position assigned to `rank`.
    #[inline]
    pub fn position_of(&self, rank: u64) -> Point2 {
        self.curve.point_of(self.order, rank)
    }
}

impl RankMap for SfcRankMap {
    #[inline]
    fn node_of(&self, rank: u64) -> NodeId {
        let p = self.position_of(rank);
        ((p.y as u64) << self.order) | p.x as u64
    }

    #[inline]
    fn rank_of(&self, node: NodeId) -> u64 {
        let mask = (1u64 << self.order) - 1;
        let p = Point2::new((node & mask) as u32, (node >> self.order) as u32);
        self.curve.index_of(self.order, p)
    }

    fn len(&self) -> u64 {
        1u64 << (2 * self.order)
    }
}

/// A topology paired with a rank map: the unit the ACD model measures
/// distances on. All distances are taken between *ranks*; the map translates
/// to physical nodes first.
pub struct RankedNetwork<T> {
    topology: T,
    map: Box<dyn RankMap>,
}

impl<T: Topology> RankedNetwork<T> {
    /// Pair a topology with the identity rank map.
    pub fn identity(topology: T) -> Self {
        let map = Box::new(IdentityMap::new(topology.num_nodes()));
        RankedNetwork { topology, map }
    }

    /// Pair a grid topology (square mesh/torus) with an SFC rank map.
    ///
    /// Panics if the topology is not a square power-of-two grid — mirroring
    /// the paper, where processor-order SFCs apply only to mesh and torus.
    pub fn with_sfc_ranks(topology: T, curve: CurveKind) -> Self {
        let side = topology
            .grid_side()
            .unwrap_or_else(|| panic!("{} does not support SFC rank maps", topology.name()));
        let map = Box::new(SfcRankMap::for_side(curve, side));
        RankedNetwork { topology, map }
    }

    /// Pair a topology with an explicit rank map.
    pub fn with_map(topology: T, map: Box<dyn RankMap>) -> Self {
        assert_eq!(
            topology.num_nodes(),
            map.len(),
            "rank map covers {} ranks but topology has {} nodes",
            map.len(),
            topology.num_nodes()
        );
        RankedNetwork { topology, map }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topology
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> u64 {
        self.topology.num_nodes()
    }

    /// Physical node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: u64) -> NodeId {
        self.map.node_of(rank)
    }

    /// Hop distance between the processors hosting two ranks.
    #[inline]
    pub fn rank_distance(&self, a: u64, b: u64) -> u64 {
        self.topology.distance(self.map.node_of(a), self.map.node_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bus, Mesh2d, Torus2d};

    #[test]
    fn identity_map_round_trip() {
        let m = IdentityMap::new(16);
        for r in 0..16 {
            assert_eq!(m.node_of(r), r);
            assert_eq!(m.rank_of(r), r);
        }
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
    }

    #[test]
    fn sfc_map_is_bijective() {
        for kind in CurveKind::ALL {
            let m = SfcRankMap::new(kind, 3);
            let mut seen = vec![false; m.len() as usize];
            for r in 0..m.len() {
                let node = m.node_of(r);
                assert_eq!(m.rank_of(node), r, "{kind}");
                assert!(!seen[node as usize]);
                seen[node as usize] = true;
            }
            assert!(seen.iter().all(|&v| v));
        }
    }

    #[test]
    fn hilbert_ranks_are_adjacent_on_mesh() {
        let net = RankedNetwork::with_sfc_ranks(Mesh2d::square(4), CurveKind::Hilbert);
        for r in 0..net.num_ranks() - 1 {
            assert_eq!(net.rank_distance(r, r + 1), 1);
        }
    }

    #[test]
    fn row_major_ranks_on_mesh() {
        let net = RankedNetwork::with_sfc_ranks(Mesh2d::square(2), CurveKind::RowMajor);
        // Rank 3 -> (3,0), rank 4 -> (0,1): 4 hops apart on a 4x4 mesh.
        assert_eq!(net.rank_distance(3, 4), 4);
    }

    #[test]
    fn torus_wraps_rank_distances() {
        let net = RankedNetwork::with_sfc_ranks(Torus2d::square(2), CurveKind::RowMajor);
        // Rank 0 -> (0,0), rank 3 -> (3,0): 1 hop via wraparound.
        assert_eq!(net.rank_distance(0, 3), 1);
    }

    #[test]
    #[should_panic(expected = "does not support SFC rank maps")]
    fn sfc_ranks_rejected_on_bus() {
        let _ = RankedNetwork::with_sfc_ranks(Bus::new(16), CurveKind::Hilbert);
    }

    #[test]
    fn identity_network_distance_passthrough() {
        let net = RankedNetwork::identity(Bus::new(8));
        assert_eq!(net.rank_distance(0, 7), 7);
        assert_eq!(net.node_of(3), 3);
    }

    #[test]
    #[should_panic(expected = "rank map covers")]
    fn mismatched_map_size_rejected() {
        let _ = RankedNetwork::with_map(Bus::new(8), Box::new(IdentityMap::new(4)));
    }
}
