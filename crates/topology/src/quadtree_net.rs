//! Quadtree (fat-tree-like) topology.
//!
//! "We also studied the quadtree topology, where each communication must
//! travel up and down the tree" (Section II-B). Processors occupy the
//! `4^levels` leaves of a complete quadtree; internal tree nodes are
//! switches. A message between two leaves climbs to their lowest common
//! ancestor and back down, so the hop count is `2 · (levels − lca_level)`.
//!
//! Leaves are numbered by the Morton code of their position in the
//! `2^levels × 2^levels` leaf grid, so that the subtree below any internal
//! node is one contiguous, power-of-four-aligned id range — the natural
//! numbering for a quadtree and the one that makes spatial quadrants of the
//! FMM model coincide with subtrees of the interconnect.

use crate::{NodeId, Topology, TopologyKind};

/// A complete quadtree interconnect with `4^levels` processor leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadtreeNet {
    levels: u32,
}

impl QuadtreeNet {
    /// Create a quadtree with the given number of levels below the root
    /// (`levels == 0` is a single processor).
    pub fn new(levels: u32) -> Self {
        assert!(levels <= 31, "quadtree levels must be <= 31, got {levels}");
        QuadtreeNet { levels }
    }

    /// Create the quadtree whose leaf count is exactly `nodes`; panics
    /// unless `nodes` is a power of four.
    pub fn with_nodes(nodes: u64) -> Self {
        assert!(
            nodes.is_power_of_two() && nodes.trailing_zeros().is_multiple_of(2),
            "quadtree leaf count must be a power of four, got {nodes}"
        );
        QuadtreeNet::new(nodes.trailing_zeros() / 2)
    }

    /// Number of levels below the root.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The tree level of the lowest common ancestor of leaves `a` and `b`
    /// (0 = root, `levels` = leaf level). Computed from the length of the
    /// common prefix of the leaves' base-4 Morton ids.
    pub fn lca_level(&self, a: NodeId, b: NodeId) -> u32 {
        if a == b {
            return self.levels;
        }
        let diff = a ^ b;
        // Highest differing base-4 digit position (0 = least significant).
        let top_bit = 63 - diff.leading_zeros();
        let digit = top_bit / 2;
        self.levels - 1 - digit
    }
}

impl Topology for QuadtreeNet {
    fn num_nodes(&self) -> u64 {
        1u64 << (2 * self.levels)
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        debug_assert!(a < self.num_nodes() && b < self.num_nodes());
        if a == b {
            return 0;
        }
        2 * (self.levels - self.lca_level(a, b)) as u64
    }

    fn diameter(&self) -> u64 {
        2 * self.levels as u64
    }

    fn name(&self) -> &'static str {
        "Quadtree"
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Quadtree
    }

    fn num_links(&self) -> u64 {
        // The full tree (switches + leaves) has (4^(levels+1) - 1) / 3
        // nodes and, being a tree, one undirected edge per non-root node.
        // Computed in u128: 4^(levels+1) overflows u64 at levels == 31,
        // though the final directed count still fits.
        let tree_nodes = ((1u128 << (2 * (self.levels + 1))) - 1) / 3;
        (2 * (tree_nodes - 1)) as u64
    }

    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        // Same LCA arithmetic as `distance`, with the per-pair branches
        // flattened: the hop count is `2 * ceil((top_bit + 1) / 2)` where
        // `top_bit` is the highest differing bit of the Morton ids.
        for (b, slot) in row.iter_mut().enumerate() {
            let diff = from ^ b as u64;
            *slot = if diff == 0 {
                0
            } else {
                let top_bit = 63 - diff.leading_zeros();
                2 * (top_bit / 2 + 1) as u64
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, VecDeque};

    /// Build the explicit tree graph (leaves + switches) and BFS leaf-to-leaf
    /// distances to validate the closed form.
    fn bfs_leaf_distance(levels: u32, a: u64, b: u64) -> u64 {
        // Node encoding: (level, id within level). Parent of (l, i) is
        // (l-1, i/4).
        let mut dist: HashMap<(u32, u64), u64> = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert((levels, a), 0);
        queue.push_back((levels, a));
        while let Some((l, i)) = queue.pop_front() {
            let d = dist[&(l, i)];
            if (l, i) == (levels, b) {
                return d;
            }
            let mut push = |node: (u32, u64)| {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(node) {
                    e.insert(d + 1);
                    queue.push_back(node);
                }
            };
            if l > 0 {
                push((l - 1, i / 4));
            }
            if l < levels {
                for c in 0..4 {
                    push((l + 1, i * 4 + c));
                }
            }
        }
        unreachable!("leaf {b} not reached from {a}")
    }

    #[test]
    fn closed_form_matches_tree_bfs() {
        let net = QuadtreeNet::new(3);
        for a in 0..net.num_nodes() {
            for b in (a..net.num_nodes()).step_by(7) {
                assert_eq!(
                    net.distance(a, b),
                    bfs_leaf_distance(3, a, b),
                    "leaves {a},{b}"
                );
            }
        }
    }

    #[test]
    fn siblings_are_two_hops_apart() {
        let net = QuadtreeNet::new(4);
        assert_eq!(net.distance(0, 1), 2);
        assert_eq!(net.distance(0, 3), 2);
        // First leaf of the second quadrant at the top level is maximally far.
        assert_eq!(net.distance(0, net.num_nodes() - 1), net.diameter());
    }

    #[test]
    fn lca_levels() {
        let net = QuadtreeNet::new(2); // 16 leaves
        assert_eq!(net.lca_level(0, 0), 2);
        assert_eq!(net.lca_level(0, 1), 1); // same top-level quadrant
        assert_eq!(net.lca_level(0, 4), 0); // different top-level quadrants
        assert_eq!(net.lca_level(5, 6), 1);
    }

    #[test]
    fn with_nodes_round_trip() {
        assert_eq!(QuadtreeNet::with_nodes(65536).levels(), 8);
        assert_eq!(QuadtreeNet::with_nodes(1).levels(), 0);
    }

    #[test]
    #[should_panic(expected = "power of four")]
    fn power_of_two_but_not_four_rejected() {
        let _ = QuadtreeNet::with_nodes(32);
    }

    #[test]
    fn num_links_counts_tree_edges_both_ways() {
        // levels=0: single processor, no links. levels=1: root + 4 leaves,
        // 4 undirected edges. levels=2: 21 tree nodes, 20 undirected edges.
        assert_eq!(QuadtreeNet::new(0).num_links(), 0);
        assert_eq!(QuadtreeNet::new(1).num_links(), 8);
        assert_eq!(QuadtreeNet::new(2).num_links(), 40);
        // Max depth computes without overflow.
        assert!(QuadtreeNet::new(31).num_links() > 0);
    }

    #[test]
    fn distances_are_even() {
        let net = QuadtreeNet::new(3);
        for a in (0..net.num_nodes()).step_by(5) {
            for b in (0..net.num_nodes()).step_by(3) {
                assert_eq!(net.distance(a, b) % 2, 0);
            }
        }
    }

    #[test]
    fn metric_axioms() {
        let net = QuadtreeNet::new(3);
        let n = net.num_nodes();
        for a in (0..n).step_by(9) {
            assert_eq!(net.distance(a, a), 0);
            for b in (0..n).step_by(11) {
                assert_eq!(net.distance(a, b), net.distance(b, a));
                for c in (0..n).step_by(17) {
                    assert!(net.distance(a, c) <= net.distance(a, b) + net.distance(b, c));
                }
            }
        }
    }
}
