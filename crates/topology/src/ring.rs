//! Ring topology.
//!
//! A bus whose endpoints are joined: processor `i` links to
//! `(i ± 1) mod p`, so the distance between two nodes is the shorter way
//! around the circle.

use crate::{NodeId, Topology, TopologyKind};

/// A ring of `p` processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    nodes: u64,
}

impl Ring {
    /// Create a ring with `nodes` processors (at least 1).
    pub fn new(nodes: u64) -> Self {
        assert!(nodes >= 1, "a ring needs at least one processor");
        Ring { nodes }
    }

    /// The processors directly linked to `a`.
    pub fn neighbors(&self, a: NodeId) -> Vec<NodeId> {
        if self.nodes == 1 {
            return Vec::new();
        }
        if self.nodes == 2 {
            return vec![1 - a];
        }
        vec![(a + self.nodes - 1) % self.nodes, (a + 1) % self.nodes]
    }
}

impl Topology for Ring {
    fn num_nodes(&self) -> u64 {
        self.nodes
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        debug_assert!(a < self.nodes && b < self.nodes);
        let d = a.abs_diff(b);
        d.min(self.nodes - d)
    }

    fn diameter(&self) -> u64 {
        self.nodes / 2
    }

    fn name(&self) -> &'static str {
        "Ring"
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Ring
    }

    fn num_links(&self) -> u64 {
        2 * crate::ring_undirected_edges(self.nodes)
    }

    fn fill_distance_row(&self, from: NodeId, row: &mut [u64]) {
        let n = self.nodes;
        for (b, slot) in row.iter_mut().enumerate() {
            let d = from.abs_diff(b as u64);
            *slot = d.min(n - d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::check_against_bfs;

    #[test]
    fn wrap_around_is_shorter() {
        let ring = Ring::new(10);
        assert_eq!(ring.distance(0, 9), 1);
        assert_eq!(ring.distance(0, 5), 5);
        assert_eq!(ring.distance(2, 8), 4);
        assert_eq!(ring.diameter(), 5);
    }

    #[test]
    fn odd_ring() {
        let ring = Ring::new(7);
        assert_eq!(ring.distance(0, 3), 3);
        assert_eq!(ring.distance(0, 4), 3);
        assert_eq!(ring.diameter(), 3);
    }

    #[test]
    fn matches_bfs() {
        for p in [2u64, 3, 8, 13] {
            let ring = Ring::new(p);
            check_against_bfs(&ring, |a| ring.neighbors(a));
        }
    }

    #[test]
    fn two_node_ring_has_single_link() {
        let ring = Ring::new(2);
        assert_eq!(ring.neighbors(0), vec![1]);
        assert_eq!(ring.distance(0, 1), 1);
    }

    #[test]
    fn num_links_equals_neighbor_degree_sum() {
        for p in [1u64, 2, 3, 10] {
            let ring = Ring::new(p);
            let degree_sum: u64 = (0..p).map(|n| ring.neighbors(n).len() as u64).sum();
            assert_eq!(ring.num_links(), degree_sum, "ring of {p}");
        }
    }
}
