//! Property-based tests: metric axioms and structure for every topology.

use proptest::prelude::*;
use sfc_curves::CurveKind;
use sfc_topology::{RankMap, SfcRankMap, Topology, TopologyKind};

fn build(kind_idx: usize, nodes: u64) -> Box<dyn Topology> {
    TopologyKind::PAPER[kind_idx % TopologyKind::PAPER.len()].build(nodes)
}

proptest! {
    /// distance(a, a) == 0 and symmetry, for all paper topologies.
    #[test]
    fn identity_and_symmetry(
        kind_idx in 0usize..6,
        raw_a in any::<u64>(),
        raw_b in any::<u64>(),
    ) {
        let topo = build(kind_idx, 1024);
        let a = raw_a % 1024;
        let b = raw_b % 1024;
        prop_assert_eq!(topo.distance(a, a), 0);
        prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));
    }

    /// The triangle inequality holds for random triples.
    #[test]
    fn triangle_inequality(
        kind_idx in 0usize..6,
        raw in any::<[u64; 3]>(),
    ) {
        let topo = build(kind_idx, 1024);
        let a = raw[0] % 1024;
        let b = raw[1] % 1024;
        let c = raw[2] % 1024;
        prop_assert!(topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c));
    }

    /// No distance exceeds the claimed diameter.
    #[test]
    fn diameter_is_an_upper_bound(
        kind_idx in 0usize..6,
        raw_a in any::<u64>(),
        raw_b in any::<u64>(),
    ) {
        let topo = build(kind_idx, 4096);
        let a = raw_a % 4096;
        let b = raw_b % 4096;
        prop_assert!(topo.distance(a, b) <= topo.diameter());
    }

    /// Distinct nodes are at positive distance (the networks are simple).
    #[test]
    fn positivity(kind_idx in 0usize..6, raw_a in any::<u64>(), raw_b in any::<u64>()) {
        let topo = build(kind_idx, 256);
        let a = raw_a % 256;
        let b = raw_b % 256;
        if a != b {
            prop_assert!(topo.distance(a, b) >= 1);
        }
    }

    /// SFC rank maps are bijections at arbitrary orders, and node ids stay
    /// in range.
    #[test]
    fn rank_maps_are_bijective(
        curve_idx in 0usize..CurveKind::ALL.len(),
        order in 1u32..=10,
        raw in any::<u64>(),
    ) {
        let map = SfcRankMap::new(CurveKind::ALL[curve_idx], order);
        let rank = raw % map.len();
        let node = map.node_of(rank);
        prop_assert!(node < map.len());
        prop_assert_eq!(map.rank_of(node), rank);
    }

    /// On a torus, curve-consecutive ranks under a unit-step curve (Hilbert,
    /// boustrophedon) are physically adjacent.
    #[test]
    fn unit_step_curves_give_adjacent_ranks(
        order in 1u32..=6,
        raw in any::<u64>(),
        curve_unit in 0usize..2,
    ) {
        let curve = [CurveKind::Hilbert, CurveKind::Boustrophedon][curve_unit];
        let nodes = 1u64 << (2 * order);
        let topo = TopologyKind::Torus.build(nodes);
        let map = SfcRankMap::new(curve, order);
        let rank = raw % (nodes - 1);
        let d = topo.distance(map.node_of(rank), map.node_of(rank + 1));
        prop_assert_eq!(d, 1);
    }

    /// Hypercube distance is exactly the Hamming distance of node ids.
    #[test]
    fn hypercube_distance_is_hamming(raw_a in any::<u64>(), raw_b in any::<u64>()) {
        let topo = TopologyKind::Hypercube.build(65_536);
        let a = raw_a % 65_536;
        let b = raw_b % 65_536;
        prop_assert_eq!(topo.distance(a, b), (a ^ b).count_ones() as u64);
    }

    /// Torus distance never exceeds mesh distance on the same grid.
    #[test]
    fn torus_bounded_by_mesh(raw_a in any::<u64>(), raw_b in any::<u64>()) {
        let mesh = TopologyKind::Mesh.build(4096);
        let torus = TopologyKind::Torus.build(4096);
        let a = raw_a % 4096;
        let b = raw_b % 4096;
        prop_assert!(torus.distance(a, b) <= mesh.distance(a, b));
    }

    /// Quadtree distances are even and bounded by twice the level count.
    #[test]
    fn quadtree_distance_structure(raw_a in any::<u64>(), raw_b in any::<u64>()) {
        let topo = TopologyKind::Quadtree.build(16_384); // 7 levels
        let a = raw_a % 16_384;
        let b = raw_b % 16_384;
        let d = topo.distance(a, b);
        prop_assert_eq!(d % 2, 0);
        prop_assert!(d <= 14);
    }
}
