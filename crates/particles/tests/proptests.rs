//! Property-based tests for input generation and the cell index.

use proptest::prelude::*;
use sfc_particles::cellmap::{pack_cell, unpack_cell, CellMap};
use sfc_particles::{sample, Distribution, DistributionKind, Workload};

proptest! {
    /// Samples always have the requested size, stay in-grid, and contain no
    /// duplicate cells — for every distribution, order and seed.
    #[test]
    fn samples_are_valid(
        dist_idx in 0usize..3,
        order in 3u32..=9,
        n_frac in 1u64..=30,
        seed in any::<u64>(),
    ) {
        let dist = DistributionKind::ALL[dist_idx].default_params();
        let side = 1u64 << order;
        let n = ((side * side) * n_frac / 100).max(1) as usize;
        let pts = sample(dist, order, n, seed);
        prop_assert_eq!(pts.len(), n);
        let mut keys: Vec<u64> = pts.iter().map(|p| pack_cell(p.x, p.y)).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate cells");
        prop_assert!(pts.iter().all(|p| (p.x as u64) < side && (p.y as u64) < side));
    }

    /// Sampling is a pure function of (distribution, order, n, seed).
    #[test]
    fn sampling_is_deterministic(order in 4u32..=8, seed in any::<u64>()) {
        let a = sample(Distribution::uniform(), order, 64, seed);
        let b = sample(Distribution::uniform(), order, 64, seed);
        prop_assert_eq!(a, b);
    }

    /// pack/unpack are inverse for all coordinates.
    #[test]
    fn pack_cell_round_trip(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(unpack_cell(pack_cell(x, y)), (x, y));
    }

    /// CellMap agrees with a reference HashMap under arbitrary insert_min
    /// workloads.
    #[test]
    fn cellmap_matches_reference(
        ops in prop::collection::vec((0u64..5000, any::<u32>()), 1..400),
    ) {
        let mut map = CellMap::with_capacity(ops.len());
        let mut reference = std::collections::HashMap::new();
        for &(key, value) in &ops {
            map.insert_min(key, value);
            let e = reference.entry(key).or_insert(value);
            *e = (*e).min(value);
        }
        prop_assert_eq!(map.len(), reference.len());
        for (k, v) in reference {
            prop_assert_eq!(map.get(k), Some(v));
        }
        // Keys never inserted are absent.
        prop_assert_eq!(map.get(6000), None);
    }

    /// Workload scaling preserves density within rounding.
    #[test]
    fn workload_scaling_density(scale in 0u32..4) {
        let w = Workload::figure6(1);
        let s = w.scaled_down(scale);
        prop_assert!((s.density() - w.density()).abs() < 1e-9);
        prop_assert_eq!(s.side(), w.side() >> scale);
    }

    /// The exponential distribution is skewed: the low-corner quadrant holds
    /// a clear majority of the mass for any seed.
    #[test]
    fn exponential_skew(seed in any::<u64>()) {
        let pts = sample(DistributionKind::Exponential.default_params(), 7, 500, seed);
        let low = pts.iter().filter(|p| p.x < 64 && p.y < 64).count();
        prop_assert!(low * 2 > pts.len(), "only {low} of {} in low quadrant", pts.len());
    }
}
