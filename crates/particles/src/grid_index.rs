//! Dense occupancy index over the full grid.
//!
//! The ACD kernels' innermost question — "which rank owns cell `(x, y)`?" —
//! is asked once per neighborhood cell per particle, tens of millions of
//! times per trial. The [`CellMap`](crate::CellMap) answers it with a
//! Fibonacci-hash probe (multiply, shift, compare, possible probe chain);
//! [`GridIndex`] answers it with **one indexed load** from a flat
//! `side × side` table of rank slots, and hands whole grid rows to kernels
//! so a radius-`r` neighborhood becomes a handful of contiguous row-segment
//! scans instead of `O(r²)` independent probes.
//!
//! Like the hop-distance oracle in `sfc-core`, the table is capped
//! ([`MAX_GRID_CELLS`]) and callers fall back to the `CellMap` silently
//! above the cap — both paths produce bit-identical results.

/// Cap on the dense table size, in cells. `1 << 24` cells is a
/// `4096 × 4096` grid (order 12) at 4 bytes per slot — 64 MiB, comfortably
/// resident alongside the distance oracle at the paper's full-size
/// workloads. One order further would cost 256 MiB per live assignment,
/// so larger grids silently keep the `CellMap` probe path instead.
pub const MAX_GRID_CELLS: u64 = 1 << 24;

/// A flat `side × side` occupancy table mapping every grid cell to the rank
/// owning its particle, or [`GridIndex::EMPTY`] for unoccupied cells.
#[derive(Clone)]
pub struct GridIndex {
    side: usize,
    len: usize,
    ranks: Box<[u32]>,
}

impl GridIndex {
    /// Slot value marking an unoccupied cell. Rank values must stay below
    /// this sentinel; real machines top out at far smaller rank counts.
    pub const EMPTY: u32 = u32::MAX;

    /// Allocate an all-empty index for a `2^grid_order`-sided grid, or
    /// `None` when the table would exceed [`MAX_GRID_CELLS`] — the caller
    /// keeps its sparse index in that case.
    pub fn new(grid_order: u32) -> Option<GridIndex> {
        let side = 1u64 << grid_order;
        if side.checked_mul(side).is_none_or(|cells| cells > MAX_GRID_CELLS) {
            return None;
        }
        let cells = (side * side) as usize;
        Some(GridIndex {
            side: side as usize,
            len: 0,
            ranks: vec![Self::EMPTY; cells].into_boxed_slice(),
        })
    }

    /// Record `rank` as the owner of cell `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid, if the cell is
    /// already occupied, or if `rank` is the reserved [`GridIndex::EMPTY`]
    /// sentinel.
    pub fn insert(&mut self, x: u32, y: u32, rank: u32) {
        assert_ne!(rank, Self::EMPTY, "u32::MAX is the reserved empty sentinel");
        assert!(
            (x as usize) < self.side && (y as usize) < self.side,
            "cell ({x}, {y}) outside {0}x{0} grid", self.side
        );
        let slot = &mut self.ranks[y as usize * self.side + x as usize];
        assert_eq!(*slot, Self::EMPTY, "cell ({x}, {y}) already occupied");
        *slot = rank;
        self.len += 1;
    }

    /// Rank owning cell `(x, y)`, or `None` when it is empty — one indexed
    /// load.
    #[inline]
    pub fn rank_of(&self, x: u32, y: u32) -> Option<u32> {
        let rank = self.ranks[y as usize * self.side + x as usize];
        (rank != Self::EMPTY).then_some(rank)
    }

    /// True if cell `(x, y)` holds a particle.
    #[inline]
    pub fn is_occupied(&self, x: u32, y: u32) -> bool {
        self.ranks[y as usize * self.side + x as usize] != Self::EMPTY
    }

    /// The full rank row at height `y`: `rank_row(y)[x]` is the owner of
    /// cell `(x, y)`, or [`GridIndex::EMPTY`]. Kernels scan clipped
    /// contiguous segments of these rows instead of probing per cell.
    #[inline]
    pub fn rank_row(&self, y: u32) -> &[u32] {
        let start = y as usize * self.side;
        &self.ranks[start..start + self.side]
    }

    /// Grid side length (`2^grid_order`).
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of occupied cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no cell is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes held by the dense table — the memory-envelope number the cap
    /// bounds (at most 4 × [`MAX_GRID_CELLS`] = 64 MiB).
    pub fn table_bytes(&self) -> usize {
        self.ranks.len() * std::mem::size_of::<u32>()
    }
}

impl std::fmt::Debug for GridIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridIndex")
            .field("side", &self.side)
            .field("occupied", &self.len)
            .field("table_bytes", &self.table_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut g = GridIndex::new(3).unwrap();
        assert!(g.is_empty());
        g.insert(1, 2, 7);
        g.insert(0, 0, 3);
        assert_eq!(g.rank_of(1, 2), Some(7));
        assert_eq!(g.rank_of(0, 0), Some(3));
        assert_eq!(g.rank_of(2, 2), None);
        assert!(g.is_occupied(1, 2));
        assert!(!g.is_occupied(7, 7));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn rank_rows_expose_the_sentinel() {
        let mut g = GridIndex::new(2).unwrap();
        g.insert(1, 1, 5);
        g.insert(3, 1, 0);
        let row = g.rank_row(1);
        assert_eq!(row, &[GridIndex::EMPTY, 5, GridIndex::EMPTY, 0]);
        assert!(g.rank_row(0).iter().all(|&r| r == GridIndex::EMPTY));
        assert_eq!(g.rank_row(3).len(), g.side());
    }

    #[test]
    fn cap_math_and_envelope() {
        // Order 12 is exactly the cap: 4096² = 1 << 24 cells, 64 MiB.
        let g = GridIndex::new(12).unwrap();
        assert_eq!(g.table_bytes(), 64 << 20);
        assert_eq!(g.table_bytes() as u64, 4 * MAX_GRID_CELLS);
        // Order 13 would be 256 MiB: refused, callers keep the CellMap.
        assert!(GridIndex::new(13).is_none());
        // Absurd orders must not overflow the size computation.
        assert!(GridIndex::new(31).is_none());
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn double_insert_rejected() {
        let mut g = GridIndex::new(2).unwrap();
        g.insert(1, 1, 0);
        g.insert(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "reserved empty sentinel")]
    fn sentinel_rank_rejected() {
        let mut g = GridIndex::new(2).unwrap();
        g.insert(0, 0, u32::MAX);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_rejected() {
        let mut g = GridIndex::new(2).unwrap();
        g.insert(4, 0, 1);
    }

    #[test]
    fn debug_is_a_summary_not_a_dump() {
        let g = GridIndex::new(5).unwrap();
        let dbg = format!("{g:?}");
        assert!(dbg.contains("side: 32"));
        assert!(dbg.contains("occupied: 0"));
        assert!(!dbg.contains("4294967295"), "{dbg}");
    }
}
