//! A flat open-addressing hash map for grid cells.
//!
//! The inner loops of the ACD model look up "is there a particle in cell
//! `(x, y)`, and which processor owns it?" tens of millions of times per
//! trial. A general-purpose `HashMap` pays for SipHash and bucket
//! indirection on every probe; [`CellMap`] instead uses Fibonacci hashing
//! over a power-of-two table of `(key, value)` pairs with linear probing —
//! one multiply and (usually) one cache line per hit.
//!
//! Keys are arbitrary `u64`s except the reserved sentinel `u64::MAX`;
//! callers pack cell coordinates as `(y << 32) | x` or use Morton codes.
//! The map is insert-only — exactly the lifecycle of a per-trial index —
//! which keeps probing correct without tombstones.

/// Reserved key marking an empty slot.
const EMPTY: u64 = u64::MAX;

/// Multiplicative (Fibonacci) hashing constant: `2^64 / φ` rounded to odd.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// An insert-only open-addressing map from `u64` keys to `u32` values.
#[derive(Debug, Clone)]
pub struct CellMap {
    keys: Vec<u64>,
    values: Vec<u32>,
    mask: usize,
    shift: u32,
    len: usize,
}

impl CellMap {
    /// Create a map that can hold at least `capacity` entries without
    /// exceeding ~50% load.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * 2).next_power_of_two();
        CellMap {
            keys: vec![EMPTY; slots],
            values: vec![0; slots],
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize & self.mask
    }

    /// Insert `key -> value`. Returns the previous value if the key was
    /// already present (and leaves the stored value unchanged in that case —
    /// the ACD model's "lowest rank owns the cell" convention inserts in
    /// rank order and keeps the first write).
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX` (reserved) or if the map would exceed
    /// ~90% load — callers size maps up front from the particle count.
    pub fn insert_first(&mut self, key: u64, value: u32) -> Option<u32> {
        assert_ne!(key, EMPTY, "u64::MAX is a reserved key");
        assert!(
            (self.len + 1) * 10 <= self.keys.len() * 9,
            "CellMap over capacity: size it from the particle count up front"
        );
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == EMPTY {
                self.keys[slot] = key;
                self.values[slot] = value;
                self.len += 1;
                return None;
            }
            if k == key {
                return Some(self.values[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Insert `key -> value`, keeping the *minimum* value on collision.
    /// Returns the value now stored for the key.
    pub fn insert_min(&mut self, key: u64, value: u32) -> u32 {
        assert_ne!(key, EMPTY, "u64::MAX is a reserved key");
        assert!(
            (self.len + 1) * 10 <= self.keys.len() * 9,
            "CellMap over capacity: size it from the particle count up front"
        );
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == EMPTY {
                self.keys[slot] = key;
                self.values[slot] = value;
                self.len += 1;
                return value;
            }
            if k == key {
                if value < self.values[slot] {
                    self.values[slot] = value;
                }
                return self.values[slot];
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Remove every entry, keeping the allocated table for reuse. A cleared
    /// map behaves exactly like a fresh `with_capacity` of the same size —
    /// this is the scratch API per-trial index builders use to stop
    /// reallocating a map per level per trial.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Clear the map and guarantee room for at least `capacity` entries at
    /// ~50% load, reallocating only when the existing table is too small.
    pub fn reset(&mut self, capacity: usize) {
        let needed = (capacity.max(4) * 2).next_power_of_two();
        if needed > self.keys.len() {
            *self = CellMap::with_capacity(capacity);
        } else {
            self.clear();
        }
    }

    /// Number of slots allocated (entry capacity is ~half this at the 50%
    /// sizing load factor).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return Some(self.values[slot]);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// True if `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.values)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
    }
}

/// Pack cell coordinates into a `CellMap` key.
#[inline]
pub fn pack_cell(x: u32, y: u32) -> u64 {
    ((y as u64) << 32) | x as u64
}

/// Unpack a `CellMap` key into cell coordinates.
#[inline]
pub fn unpack_cell(key: u64) -> (u32, u32) {
    (key as u32, (key >> 32) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = CellMap::with_capacity(8);
        assert!(m.is_empty());
        assert_eq!(m.insert_first(10, 1), None);
        assert_eq!(m.insert_first(20, 2), None);
        assert_eq!(m.get(10), Some(1));
        assert_eq!(m.get(20), Some(2));
        assert_eq!(m.get(30), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_first_keeps_original() {
        let mut m = CellMap::with_capacity(8);
        m.insert_first(5, 7);
        assert_eq!(m.insert_first(5, 9), Some(7));
        assert_eq!(m.get(5), Some(7));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn insert_min_keeps_minimum() {
        let mut m = CellMap::with_capacity(8);
        assert_eq!(m.insert_min(5, 7), 7);
        assert_eq!(m.insert_min(5, 3), 3);
        assert_eq!(m.insert_min(5, 9), 3);
        assert_eq!(m.get(5), Some(3));
    }

    #[test]
    fn survives_heavy_collisions() {
        // Keys in arithmetic progression stress linear probing.
        let n = 10_000u64;
        let mut m = CellMap::with_capacity(n as usize);
        for i in 0..n {
            m.insert_first(i * 64, i as u32);
        }
        for i in 0..n {
            assert_eq!(m.get(i * 64), Some(i as u32));
            assert_eq!(m.get(i * 64 + 1), None);
        }
        assert_eq!(m.len(), n as usize);
    }

    #[test]
    fn matches_std_hashmap_on_random_workload() {
        use std::collections::HashMap;
        let mut m = CellMap::with_capacity(2000);
        let mut reference = HashMap::new();
        // Deterministic pseudo-random keys.
        let mut state = 0x1234_5678_u64;
        for i in 0..2000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = state % 1500; // force some duplicates
            m.insert_min(key, i);
            let e = reference.entry(key).or_insert(i);
            *e = (*e).min(i);
        }
        for (k, v) in &reference {
            assert_eq!(m.get(*k), Some(*v));
        }
        assert_eq!(m.len(), reference.len());
        let mut collected: Vec<_> = m.iter().collect();
        collected.sort_unstable();
        let mut expected: Vec<_> = reference.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(collected, expected);
    }

    #[test]
    fn clear_empties_without_reallocating() {
        let mut m = CellMap::with_capacity(100);
        for i in 0..100 {
            m.insert_first(i, i as u32);
        }
        let slots = m.slots();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.slots(), slots);
        for i in 0..100u64 {
            assert_eq!(m.get(i), None);
        }
        // The cleared map is fully usable again.
        m.insert_min(7, 3);
        assert_eq!(m.get(7), Some(3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn reset_reuses_or_grows_as_needed() {
        let mut m = CellMap::with_capacity(100);
        for i in 0..100 {
            m.insert_first(i, 0);
        }
        let slots = m.slots();
        // Shrinking or same-size reset keeps the allocation.
        m.reset(50);
        assert_eq!(m.slots(), slots);
        assert!(m.is_empty());
        // A larger capacity grows the table.
        m.reset(10 * slots);
        assert!(m.slots() > slots);
        for i in 0..(10 * slots as u64) {
            m.insert_first(i, 1);
        }
        assert_eq!(m.len(), 10 * slots);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (x, y) in [(0u32, 0u32), (5, 9), (u32::MAX - 1, 7), (4095, 4095)] {
            assert_eq!(unpack_cell(pack_cell(x, y)), (x, y));
        }
    }

    #[test]
    #[should_panic(expected = "reserved key")]
    fn sentinel_key_rejected() {
        let mut m = CellMap::with_capacity(4);
        m.insert_first(u64::MAX, 0);
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn overload_rejected() {
        let mut m = CellMap::with_capacity(4);
        for i in 0..32 {
            m.insert_first(i, 0);
        }
    }
}
