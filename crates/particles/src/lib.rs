//! # sfc-particles
//!
//! Input generation for the SFC experiments: random particle placements on a
//! `2^k × 2^k` grid drawn from the three probability distributions the paper
//! studies (Section II-C) — **uniform**, **bivariate normal** (centrally
//! clustered), and **exponential** (skewed into one quadrant).
//!
//! Following the paper's FMM model (Section III), a cell at the finest
//! resolution holds at most one particle, so a sample of size `n` is a set
//! of `n` *distinct* grid cells. Samplers are deterministic given a seed.
//!
//! The crate also provides [`CellMap`], an open-addressing hash table keyed
//! by packed cell coordinates. The near-field ACD computation probes tens of
//! millions of cells per trial; `CellMap` turns each probe into one or two
//! cache lines with no hasher state, which is what makes paper-scale runs
//! (10⁶ particles, 81-cell neighborhoods) cheap on a laptop.
//!
//! ```
//! use sfc_particles::{Distribution, sample};
//!
//! let pts = sample(Distribution::uniform(), 8, 1000, 42);
//! assert_eq!(pts.len(), 1000);
//! // Distinct cells:
//! let mut dedup = pts.clone();
//! dedup.sort();
//! dedup.dedup();
//! assert_eq!(dedup.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cellmap;
pub mod distributions;
pub mod grid_index;
pub mod sampler;
pub mod sampler3d;
pub mod workload;

pub use cellmap::CellMap;
pub use distributions::{Distribution, DistributionKind};
pub use grid_index::{GridIndex, MAX_GRID_CELLS};
pub use sampler::{sample, sample_with, Sampler};
pub use workload::{Workload, WorkloadError};
