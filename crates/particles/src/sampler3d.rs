//! 3-D input sampling — the counterpart of [`crate::sampler`] for the 3-D
//! model extension (paper Section VIII, item ii).
//!
//! The same three distribution families over a `2^k`-sided cube: uniform,
//! centered trivariate normal (symmetric axes), and exponential skewed into
//! one octant. At most one particle per finest-resolution cell.

use crate::distributions::{Distribution, DistributionKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_curves::curve3d::Point3;
use std::collections::HashSet;

/// Draw `n` distinct cells of a `2^order`-sided cube from `dist`,
/// deterministically for a given `seed`. The distribution's shape parameter
/// has the same meaning as in 2-D (fraction of the cube side).
pub fn sample3d(dist: Distribution, order: u32, n: usize, seed: u64) -> Vec<Point3> {
    assert!((1..=20).contains(&order), "cube order out of range: {order}");
    let side = 1u64 << order;
    let cells = (side * side * side) as f64;
    assert!(
        (n as f64) <= cells * 0.9,
        "cannot place {n} distinct particles in a {side}^3 cube"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32, u32)> = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    let budget = (n as u64).saturating_mul(200).max(10_000);
    let mut attempts = 0u64;
    while out.len() < n {
        attempts += 1;
        assert!(
            attempts <= budget,
            "distribution too concentrated for {n} distinct cells"
        );
        let p = draw3(&dist, &mut rng, side);
        if seen.insert((p.x, p.y, p.z)) {
            out.push(p);
        }
    }
    out
}

/// One candidate cell, guaranteed in-cube.
fn draw3(dist: &Distribution, rng: &mut StdRng, side: u64) -> Point3 {
    match dist.kind {
        DistributionKind::Uniform => Point3::new(
            rng.gen_range(0..side) as u32,
            rng.gen_range(0..side) as u32,
            rng.gen_range(0..side) as u32,
        ),
        DistributionKind::Normal => {
            let center = side as f64 / 2.0;
            let sigma = dist.shape * side as f64;
            loop {
                let (gx, gy) = gaussian_pair(rng);
                let (gz, _) = gaussian_pair(rng);
                let x = center + sigma * gx;
                let y = center + sigma * gy;
                let z = center + sigma * gz;
                if [x, y, z].iter().all(|v| *v >= 0.0 && *v < side as f64) {
                    return Point3::new(x as u32, y as u32, z as u32);
                }
            }
        }
        DistributionKind::Exponential => {
            let scale = dist.shape * side as f64;
            loop {
                let x = exp_draw(rng, scale);
                let y = exp_draw(rng, scale);
                let z = exp_draw(rng, scale);
                if [x, y, z].iter().all(|v| *v < side as f64) {
                    return Point3::new(x as u32, y as u32, z as u32);
                }
            }
        }
    }
}

fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

fn exp_draw(rng: &mut StdRng, scale: f64) -> f64 {
    -scale * (1.0 - rng.gen::<f64>()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_distinct_and_in_cube() {
        for kind in DistributionKind::ALL {
            let pts = sample3d(kind.default_params(), 5, 800, 3);
            assert_eq!(pts.len(), 800, "{kind}");
            let mut dedup: Vec<_> = pts.iter().map(|p| (p.x, p.y, p.z)).collect();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 800, "{kind}");
            assert!(pts.iter().all(|p| p.x < 32 && p.y < 32 && p.z < 32));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sample3d(Distribution::uniform(), 6, 500, 9);
        let b = sample3d(Distribution::uniform(), 6, 500, 9);
        assert_eq!(a, b);
        let c = sample3d(Distribution::uniform(), 6, 500, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn exponential_skews_to_low_octant() {
        let pts = sample3d(DistributionKind::Exponential.default_params(), 6, 2000, 4);
        let low = pts.iter().filter(|p| p.x < 32 && p.y < 32 && p.z < 32).count();
        assert!(low as f64 > 0.85 * pts.len() as f64, "{low}");
    }

    #[test]
    fn normal_centers_in_cube() {
        let pts = sample3d(DistributionKind::Normal.default_params(), 6, 2000, 5);
        let mean_x: f64 = pts.iter().map(|p| p.x as f64).sum::<f64>() / pts.len() as f64;
        assert!((mean_x - 32.0).abs() < 2.0, "mean x {mean_x}");
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn overfull_cube_rejected() {
        let _ = sample3d(Distribution::uniform(), 1, 8, 0);
    }
}
