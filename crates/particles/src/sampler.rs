//! Sampling distinct particle cells.
//!
//! The ACD/FMM model assumes at most one particle per finest-resolution cell
//! (Section III of the paper), so a "problem instance" of size `n` is a set
//! of `n` distinct cells drawn from the chosen distribution. [`sample`]
//! draws with rejection of duplicates; the returned order is the draw order
//! (callers sort by an SFC afterwards, which is exactly step 1 of the
//! paper's algorithm).

use crate::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_curves::Point2;
use std::collections::HashSet;

/// Fraction of the grid that a sample may occupy before we refuse to
/// rejection-sample (beyond this, collision rates make rejection sampling
/// pathological and the experiment design is questionable anyway).
pub const MAX_FILL: f64 = 0.9;

/// Hard cap on rejected draws, as a multiple of `n`, before giving up. With
/// `MAX_FILL = 0.9` the expected number of draws is well below this for the
/// uniform distribution; concentrated distributions hit the cap only when
/// the requested `n` exceeds the distribution's effective support.
const MAX_ATTEMPT_FACTOR: u64 = 200;

/// Draw `n` distinct cells on a `2^order`-sided grid from `dist`,
/// deterministically for a given `seed`.
///
/// # Panics
///
/// Panics if `n` exceeds 90% of the grid, or if the distribution is too
/// concentrated to yield `n` distinct cells within a generous rejection
/// budget (e.g. a normal with a tiny sigma on a huge sample).
pub fn sample(dist: Distribution, order: u32, n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_with(dist, order, n, &mut rng)
}

/// Like [`sample`] but drawing from a caller-provided RNG, so multiple
/// samples can share one stream.
pub fn sample_with(dist: Distribution, order: u32, n: usize, rng: &mut StdRng) -> Vec<Point2> {
    assert!((1..=31).contains(&order), "grid order out of range: {order}");
    let side = 1u64 << order;
    let cells = (side * side) as f64;
    assert!(
        (n as f64) <= cells * MAX_FILL,
        "cannot place {n} distinct particles on a {side}x{side} grid \
         (limit is {:.0})",
        cells * MAX_FILL
    );

    let mut seen: HashSet<u64> = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    let budget = (n as u64).saturating_mul(MAX_ATTEMPT_FACTOR).max(10_000);
    let mut attempts = 0u64;
    while out.len() < n {
        attempts += 1;
        assert!(
            attempts <= budget,
            "distribution too concentrated: produced only {} of {n} distinct \
             cells after {attempts} draws",
            out.len()
        );
        let (x, y) = dist.draw(rng, side);
        let key = ((y as u64) << 32) | x as u64;
        if seen.insert(key) {
            out.push(Point2::new(x, y));
        }
    }
    out
}

/// A reusable sampler bundling distribution, grid order and base seed:
/// `trial(t)` yields the deterministic sample for trial number `t`.
/// Experiments average over independent trials (Section VI of the paper:
/// "averages over multiple independent trials for each set of parameters"),
/// and this type pins down how trial seeds are derived.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    /// Distribution to draw from.
    pub dist: Distribution,
    /// Grid order `k` (side `2^k`).
    pub order: u32,
    /// Number of particles per trial.
    pub n: usize,
    /// Base seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Sampler {
    /// Create a sampler.
    pub fn new(dist: Distribution, order: u32, n: usize, base_seed: u64) -> Self {
        Sampler {
            dist,
            order,
            n,
            base_seed,
        }
    }

    /// The deterministic sample for trial `t`.
    pub fn trial(&self, t: u64) -> Vec<Point2> {
        sample(self.dist, self.order, self.n, self.base_seed.wrapping_add(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::DistributionKind;

    #[test]
    fn samples_are_distinct_and_sized() {
        for kind in DistributionKind::ALL {
            let pts = sample(kind.default_params(), 6, 500, 11);
            assert_eq!(pts.len(), 500);
            let mut dedup: Vec<_> = pts.iter().map(|p| (p.x, p.y)).collect();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 500, "{kind}: duplicate cells");
            assert!(pts.iter().all(|p| p.x < 64 && p.y < 64));
        }
    }

    #[test]
    fn same_seed_same_sample() {
        let a = sample(Distribution::uniform(), 8, 1000, 99);
        let b = sample(Distribution::uniform(), 8, 1000, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = sample(Distribution::uniform(), 8, 1000, 1);
        let b = sample(Distribution::uniform(), 8, 1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn sampler_trials_are_independent_and_reproducible() {
        let s = Sampler::new(Distribution::uniform(), 7, 200, 1234);
        let t0 = s.trial(0);
        let t1 = s.trial(1);
        assert_ne!(t0, t1);
        assert_eq!(t0, s.trial(0));
    }

    #[test]
    fn can_fill_most_of_a_small_grid() {
        // 4x4 grid, 14 of 16 cells (below the 90% limit of 14.4).
        let pts = sample(Distribution::uniform(), 2, 14, 5);
        assert_eq!(pts.len(), 14);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn overfull_request_rejected() {
        let _ = sample(Distribution::uniform(), 2, 16, 5);
    }

    #[test]
    #[should_panic(expected = "too concentrated")]
    fn pathological_concentration_detected() {
        // A normal with sigma ~0.2 cells on a big grid cannot produce 10k
        // distinct cells.
        let _ = sample(Distribution::normal(1e-5), 10, 10_000, 5);
    }
}
