//! Workload descriptions: a named, reproducible problem instance.
//!
//! A [`Workload`] bundles everything that defines one experimental input —
//! grid order, particle count, distribution, seed — so experiment configs,
//! serialized results, and regeneration binaries all reference the same
//! description. The paper's three experiment families (Tables I/II, Figure
//! 6, Figure 7) are provided as constructors.

use crate::distributions::{Distribution, DistributionKind};
use crate::sampler::{Sampler, MAX_FILL};
use sfc_curves::Point2;

/// Ways a [`Workload`] description can be unsatisfiable. Construction stays
/// infallible (the plain-old-data struct is convenient to write down);
/// [`Workload::validate`] reports these before any sampling begins, so sweep
/// harnesses can record a structured error instead of panicking mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// The grid order is outside the supported `1..=31` range.
    GridOrderOutOfRange {
        /// The offending order.
        order: u32,
    },
    /// More particles were requested than distinct grid cells can hold
    /// (the sampler refuses beyond 90% fill; see [`crate::sampler`]).
    TooManyParticles {
        /// Requested particle count.
        n: usize,
        /// Largest admissible count for the grid.
        limit: u64,
        /// Grid side `2^order`.
        side: u64,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WorkloadError::GridOrderOutOfRange { order } => {
                write!(f, "grid order out of range: {order} (supported: 1..=31)")
            }
            WorkloadError::TooManyParticles { n, limit, side } => write!(
                f,
                "cannot place {n} distinct particles on a {side}x{side} grid \
                 (limit is {limit})"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A reproducible problem instance description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Grid order `k`: the spatial resolution is `2^k × 2^k`.
    pub grid_order: u32,
    /// Number of particles.
    pub n: usize,
    /// Input distribution.
    pub dist: Distribution,
    /// Base RNG seed (trial `t` adds `t`).
    pub seed: u64,
}

impl Workload {
    /// Construct an arbitrary workload.
    pub fn new(grid_order: u32, n: usize, dist: Distribution, seed: u64) -> Self {
        Workload {
            grid_order,
            n,
            dist,
            seed,
        }
    }

    /// The workload of the paper's Tables I and II: 250,000 particles on a
    /// 1024 × 1024 resolution (grid order 10).
    pub fn tables_1_2(kind: DistributionKind, seed: u64) -> Self {
        Workload::new(10, 250_000, kind.default_params(), seed)
    }

    /// The workload of the paper's Figure 6: 1,000,000 uniformly distributed
    /// particles on a 4096 × 4096 resolution (grid order 12).
    pub fn figure6(seed: u64) -> Self {
        Workload::new(12, 1_000_000, Distribution::uniform(), seed)
    }

    /// The workload of the paper's Figure 7: 1,000,000 uniformly distributed
    /// particles (processor count varies per data point, not per workload).
    pub fn figure7(seed: u64) -> Self {
        Workload::figure6(seed)
    }

    /// Scale the workload down by a power of two in both particle count and
    /// grid area, preserving density. `scale = 0` is the paper-size
    /// workload; each increment halves the grid side and quarters `n`.
    /// Used by the regeneration binaries' `--scale` flag for smoke runs.
    pub fn scaled_down(&self, scale: u32) -> Self {
        assert!(
            scale < self.grid_order,
            "scale {scale} would collapse a grid of order {}",
            self.grid_order
        );
        Workload {
            grid_order: self.grid_order - scale,
            n: (self.n >> (2 * scale)).max(1),
            dist: self.dist,
            seed: self.seed,
        }
    }

    /// Check that this workload can actually be sampled: the grid order is
    /// in range and the particle count fits under the sampler's fill limit.
    /// The sampler enforces the same constraints by panicking; validating up
    /// front lets harnesses reject a configuration before work starts.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if !(1..=31).contains(&self.grid_order) {
            return Err(WorkloadError::GridOrderOutOfRange {
                order: self.grid_order,
            });
        }
        let side = self.side();
        let limit = ((side * side) as f64 * MAX_FILL) as u64;
        if self.n as u64 > limit {
            return Err(WorkloadError::TooManyParticles {
                n: self.n,
                limit,
                side,
            });
        }
        Ok(())
    }

    /// Side of the grid, `2^grid_order`.
    pub fn side(&self) -> u64 {
        1u64 << self.grid_order
    }

    /// The sampler for this workload.
    pub fn sampler(&self) -> Sampler {
        Sampler::new(self.dist, self.grid_order, self.n, self.seed)
    }

    /// Generate the particle set for trial `t`.
    pub fn particles(&self, trial: u64) -> Vec<Point2> {
        self.sampler().trial(trial)
    }

    /// Particle density: fraction of grid cells occupied.
    pub fn density(&self) -> f64 {
        self.n as f64 / (self.side() * self.side()) as f64
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} n={} on {}x{} (seed {})",
            self.dist.kind,
            self.n,
            self.side(),
            self.side(),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_match_stated_parameters() {
        let t = Workload::tables_1_2(DistributionKind::Uniform, 0);
        assert_eq!(t.side(), 1024);
        assert_eq!(t.n, 250_000);

        let f6 = Workload::figure6(0);
        assert_eq!(f6.side(), 4096);
        assert_eq!(f6.n, 1_000_000);
        assert_eq!(f6.dist.kind, DistributionKind::Uniform);
    }

    #[test]
    fn scaling_preserves_density() {
        let w = Workload::figure6(0);
        let s = w.scaled_down(3);
        assert_eq!(s.side(), 512);
        assert!((s.density() - w.density()).abs() < 1e-9);
    }

    #[test]
    fn particles_are_reproducible() {
        let w = Workload::tables_1_2(DistributionKind::Exponential, 42).scaled_down(4);
        assert_eq!(w.particles(3), w.particles(3));
        assert_ne!(w.particles(3), w.particles(4));
        assert_eq!(w.particles(0).len(), w.n);
    }

    #[test]
    #[should_panic(expected = "would collapse")]
    fn excessive_scaling_rejected() {
        let _ = Workload::figure6(0).scaled_down(12);
    }

    #[test]
    fn display_is_informative() {
        let w = Workload::tables_1_2(DistributionKind::Normal, 7);
        let s = format!("{w}");
        assert!(s.contains("Normal") && s.contains("250000") && s.contains("1024"));
    }
}
