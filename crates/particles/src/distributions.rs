//! The paper's three input distributions.
//!
//! - **Uniform**: every cell of the spatial resolution is equally likely
//!   (Figure 2(a) of the paper).
//! - **Bivariate normal**: symmetric-axis Gaussian centered on the grid,
//!   modeling centrally clustered problems (Figure 2(b)).
//! - **Exponential**: both coordinates exponentially distributed, clustering
//!   the particles into the corner quadrant and modeling skewed inputs
//!   (Figure 2(c)).
//!
//! Sampling transforms are implemented from first principles on top of the
//! `rand` uniform source: Box–Muller for the Gaussian and inverse-CDF for
//! the exponential, so runs are reproducible across platforms without
//! depending on distribution crates.

use rand::Rng;

/// Tag identifying a distribution family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistributionKind {
    /// Uniform over all grid cells.
    Uniform,
    /// Bivariate normal, centered, symmetric axes.
    Normal,
    /// Exponential in both coordinates (skewed to the low corner).
    Exponential,
}

impl DistributionKind {
    /// The three distributions of the paper, in its reporting order.
    pub const ALL: [DistributionKind; 3] = [
        DistributionKind::Uniform,
        DistributionKind::Normal,
        DistributionKind::Exponential,
    ];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            DistributionKind::Uniform => "Uniform",
            DistributionKind::Normal => "Normal",
            DistributionKind::Exponential => "Exponential",
        }
    }

    /// Parse a distribution name from a command line.
    pub fn parse(s: &str) -> Option<DistributionKind> {
        match s.to_ascii_lowercase().as_str() {
            "uniform" | "u" => Some(DistributionKind::Uniform),
            "normal" | "gaussian" | "n" => Some(DistributionKind::Normal),
            "exponential" | "exp" | "e" => Some(DistributionKind::Exponential),
            _ => None,
        }
    }

    /// The distribution with its default shape parameters.
    pub fn default_params(self) -> Distribution {
        match self {
            DistributionKind::Uniform => Distribution::uniform(),
            DistributionKind::Normal => Distribution::normal(DEFAULT_SIGMA_FRACTION),
            DistributionKind::Exponential => Distribution::exponential(DEFAULT_EXP_SCALE_FRACTION),
        }
    }
}

impl std::fmt::Display for DistributionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default Gaussian standard deviation as a fraction of the grid side. A
/// sixth of the side keeps ~99.7% of the mass inside the grid while
/// concentrating particles around the center discontinuity of the recursive
/// curves — the effect Section VI-A of the paper discusses.
pub const DEFAULT_SIGMA_FRACTION: f64 = 1.0 / 6.0;

/// Default exponential scale (mean) as a fraction of the grid side. An
/// eighth of the side puts the bulk of the particles well inside the lowest
/// quadrant, matching the paper's Figure 2(c).
pub const DEFAULT_EXP_SCALE_FRACTION: f64 = 1.0 / 8.0;

/// A fully parameterized input distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// The family.
    pub kind: DistributionKind,
    /// Shape parameter as a fraction of the grid side: the standard
    /// deviation for `Normal`, the scale (mean) for `Exponential`; unused
    /// for `Uniform`.
    pub shape: f64,
}

impl Distribution {
    /// The uniform distribution.
    pub fn uniform() -> Self {
        Distribution {
            kind: DistributionKind::Uniform,
            shape: 0.0,
        }
    }

    /// A centered bivariate normal with `sigma = sigma_fraction * side`.
    pub fn normal(sigma_fraction: f64) -> Self {
        assert!(
            sigma_fraction > 0.0,
            "normal sigma fraction must be positive"
        );
        Distribution {
            kind: DistributionKind::Normal,
            shape: sigma_fraction,
        }
    }

    /// An exponential with `scale = scale_fraction * side` in each
    /// coordinate.
    pub fn exponential(scale_fraction: f64) -> Self {
        assert!(
            scale_fraction > 0.0,
            "exponential scale fraction must be positive"
        );
        Distribution {
            kind: DistributionKind::Exponential,
            shape: scale_fraction,
        }
    }

    /// Draw one candidate cell on a grid of the given side. The result is
    /// guaranteed in-grid (rejection sampling keeps the distribution shape
    /// undistorted at the boundary).
    pub fn draw<R: Rng>(&self, rng: &mut R, side: u64) -> (u32, u32) {
        match self.kind {
            DistributionKind::Uniform => {
                (rng.gen_range(0..side) as u32, rng.gen_range(0..side) as u32)
            }
            DistributionKind::Normal => {
                let center = side as f64 / 2.0;
                let sigma = self.shape * side as f64;
                loop {
                    let (gx, gy) = box_muller(rng);
                    let x = center + sigma * gx;
                    let y = center + sigma * gy;
                    if x >= 0.0 && y >= 0.0 && x < side as f64 && y < side as f64 {
                        return (x as u32, y as u32);
                    }
                }
            }
            DistributionKind::Exponential => {
                let scale = self.shape * side as f64;
                loop {
                    let x = exponential(rng, scale);
                    let y = exponential(rng, scale);
                    if x < side as f64 && y < side as f64 {
                        return (x as u32, y as u32);
                    }
                }
            }
        }
    }
}

/// One pair of independent standard normal variates via Box–Muller.
fn box_muller<R: Rng>(rng: &mut R) -> (f64, f64) {
    // Guard against log(0): sample u1 in the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// One exponential variate with the given scale (mean) via inverse CDF.
fn exponential<R: Rng>(rng: &mut R, scale: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -scale * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn uniform_covers_grid_evenly() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Distribution::uniform();
        let side = 16u64;
        let mut counts = vec![0u32; 256];
        for _ in 0..25_600 {
            let (x, y) = d.draw(&mut rng, side);
            counts[(y as usize) * 16 + x as usize] += 1;
        }
        // Expected 100 per cell; allow generous slack.
        assert!(counts.iter().all(|&c| c > 40 && c < 180));
    }

    #[test]
    fn normal_concentrates_at_center() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Distribution::normal(DEFAULT_SIGMA_FRACTION);
        let side = 256u64;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| d.draw(&mut rng, side).0 as f64)
            .collect();
        let (mean, var) = mean_and_var(&xs);
        assert!((mean - 128.0).abs() < 2.0, "mean {mean}");
        let sigma = (side as f64) / 6.0;
        assert!(
            (var.sqrt() - sigma).abs() < sigma * 0.1,
            "sd {} vs {sigma}",
            var.sqrt()
        );
    }

    #[test]
    fn exponential_clusters_in_low_corner() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Distribution::exponential(DEFAULT_EXP_SCALE_FRACTION);
        let side = 256u64;
        let mut in_low_quadrant = 0usize;
        let total = 20_000;
        for _ in 0..total {
            let (x, y) = d.draw(&mut rng, side);
            assert!((x as u64) < side && (y as u64) < side);
            if x < 128 && y < 128 {
                in_low_quadrant += 1;
            }
        }
        // P(exp < side/2 with mean side/8) = 1 - e^-4 ≈ 0.9817 per axis.
        let frac = in_low_quadrant as f64 / total as f64;
        assert!(frac > 0.93, "only {frac} in the low quadrant");
    }

    #[test]
    fn exponential_mean_matches_scale() {
        let mut rng = StdRng::seed_from_u64(4);
        let scale = 32.0;
        let xs: Vec<f64> = (0..50_000).map(|_| exponential(&mut rng, scale)).collect();
        let (mean, _) = mean_and_var(&xs);
        assert!((mean - scale).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn box_muller_is_standard_normal() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs = Vec::with_capacity(100_000);
        for _ in 0..50_000 {
            let (a, b) = box_muller(&mut rng);
            xs.push(a);
            xs.push(b);
        }
        let (mean, var) = mean_and_var(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in DistributionKind::ALL {
            assert_eq!(DistributionKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(DistributionKind::parse("bogus"), None);
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        for kind in DistributionKind::ALL {
            let d = kind.default_params();
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(d.draw(&mut a, 64), d.draw(&mut b, 64));
            }
        }
    }
}
