//! Compressed quadtrees.
//!
//! The paper's FMM model (Section III) represents the domain "as a
//! compressed quadtree …, where the cells with particles at the finest
//! resolution occupy leaf positions, and coarser cells are represented by
//! internal nodes" — the structure of Hariharan & Aluru's parallel FMM
//! codes. In a compressed quadtree, chains of single-child cells are
//! collapsed: every internal node has at least two non-empty children, so
//! the tree has at most `2n − 1` nodes for `n` points regardless of how
//! deep the spatial refinement goes.
//!
//! Construction is bottom-up over the Morton-sorted points (Sundar, Sampath
//! & Biros style): the tree is exactly the "Cartesian tree" of the Morton
//! codes under the lowest-common-ancestor-cell relation, built here by
//! recursive splitting in `O(n log n)`.

use crate::cell::Cell;
use sfc_curves::{morton, Point2};

/// A node of a [`CompressedQuadtree`].
#[derive(Debug, Clone)]
pub struct Node {
    /// The smallest cell containing all points of this subtree.
    pub cell: Cell,
    /// Index of the parent node; `None` for the root.
    pub parent: Option<usize>,
    /// Indices of the child nodes (2–4 for internal nodes, empty for
    /// leaves), ordered by Morton code.
    pub children: Vec<usize>,
    /// Range of this subtree's points in the tree's Morton-sorted point
    /// array.
    pub point_range: std::ops::Range<usize>,
}

impl Node {
    /// True if this node is a leaf (a single occupied finest-level cell).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of points under this node.
    pub fn num_points(&self) -> usize {
        self.point_range.len()
    }
}

/// A compressed quadtree over a set of distinct grid points.
#[derive(Debug, Clone)]
pub struct CompressedQuadtree {
    grid_order: u32,
    nodes: Vec<Node>,
    root: Option<usize>,
    /// Points sorted by Morton code.
    points: Vec<Point2>,
}

impl CompressedQuadtree {
    /// Build the tree for `points` on a `2^grid_order`-sided grid. Duplicate
    /// points are rejected (the model places at most one particle per cell).
    pub fn build(grid_order: u32, points: &[Point2]) -> Self {
        assert!((1..=31).contains(&grid_order));
        let side = 1u64 << grid_order;
        let mut pts: Vec<Point2> = points.to_vec();
        for p in &pts {
            assert!(p.in_grid(side), "{p} outside grid of order {grid_order}");
        }
        pts.sort_unstable_by_key(|p| morton::encode(p.x, p.y));
        for w in pts.windows(2) {
            assert_ne!(
                w[0], w[1],
                "duplicate point {}: one particle per cell",
                w[0]
            );
        }
        let mut tree = CompressedQuadtree {
            grid_order,
            nodes: Vec::with_capacity(pts.len().saturating_mul(2)),
            root: None,
            points: pts,
        };
        if !tree.points.is_empty() {
            let root = tree.build_range(0..tree.points.len(), None);
            tree.root = Some(root);
        }
        tree
    }

    /// Smallest cell containing both leaf codes.
    fn enclosing_cell(&self, lo_code: u64, hi_code: u64) -> Cell {
        let k = self.grid_order;
        if lo_code == hi_code {
            return Cell::from_code(k, lo_code);
        }
        let top_bit = 63 - (lo_code ^ hi_code).leading_zeros();
        let digit = top_bit / 2;
        let level = k - 1 - digit;
        Cell::from_code(k, lo_code).ancestor_at(level)
    }

    fn build_range(&mut self, range: std::ops::Range<usize>, parent: Option<usize>) -> usize {
        debug_assert!(!range.is_empty());
        let lo = morton::encode(self.points[range.start].x, self.points[range.start].y);
        let hi = morton::encode(
            self.points[range.end - 1].x,
            self.points[range.end - 1].y,
        );
        let cell = self.enclosing_cell(lo, hi);
        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            cell,
            parent,
            children: Vec::new(),
            point_range: range.clone(),
        });
        if lo == hi {
            // Single point: leaf.
            return node_idx;
        }
        // Partition the range into the four child quadrants of `cell` by
        // binary search on Morton code boundaries. Descendants of a cell at
        // level l occupy one contiguous code block of size 4^(k-l-1) per
        // child.
        let k = self.grid_order;
        let child_block = 1u64 << (2 * (k - cell.level - 1));
        let base = cell.code() << (2 * (k - cell.level));
        let mut children = Vec::with_capacity(4);
        let mut start = range.start;
        for q in 0..4u64 {
            let upper = base + (q + 1) * child_block;
            // Points are Morton-sorted; find the end of this quadrant.
            let end = start
                + self.points[start..range.end]
                    .partition_point(|p| morton::encode(p.x, p.y) < upper);
            if end > start {
                let child = self.build_range(start..end, Some(node_idx));
                children.push(child);
            }
            start = end;
        }
        debug_assert_eq!(start, range.end);
        debug_assert!(children.len() >= 2, "compression violated");
        self.nodes[node_idx].children = children;
        node_idx
    }

    /// Grid order of the domain.
    pub fn grid_order(&self) -> u32 {
        self.grid_order
    }

    /// All nodes, root first (preorder).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Index of the root node, if the tree is non-empty.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// The points, Morton-sorted.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Number of leaves (equals the number of points).
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// The leaf node containing `p`, if `p` is one of the tree's points.
    pub fn leaf_of(&self, p: Point2) -> Option<usize> {
        let code = morton::encode(p.x, p.y);
        let mut idx = self.root?;
        loop {
            let node = &self.nodes[idx];
            if node.is_leaf() {
                let only = self.points[node.point_range.start];
                return (only == p).then_some(idx);
            }
            let mut next = None;
            for &c in &node.children {
                let ccell = self.nodes[c].cell;
                let shift = 2 * (self.grid_order - ccell.level);
                if (code >> shift) == ccell.code() {
                    next = Some(c);
                    break;
                }
            }
            idx = next?;
        }
    }

    /// Depth of the tree in *compressed* edges (root = 0; empty tree = 0).
    pub fn depth(&self) -> usize {
        fn go(tree: &CompressedQuadtree, idx: usize) -> usize {
            let node = &tree.nodes[idx];
            node.children
                .iter()
                .map(|&c| 1 + go(tree, c))
                .max()
                .unwrap_or(0)
        }
        self.root.map_or(0, |r| go(self, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, order: u32, seed: u64) -> Vec<Point2> {
        let side = 1u32 << order;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::HashSet::new();
        while set.len() < n {
            set.insert((rng.gen_range(0..side), rng.gen_range(0..side)));
        }
        set.into_iter().map(|(x, y)| Point2::new(x, y)).collect()
    }

    fn check_invariants(tree: &CompressedQuadtree) {
        let n = tree.points().len();
        if n == 0 {
            assert!(tree.root().is_none());
            return;
        }
        assert!(tree.nodes().len() <= 2 * n);
        assert_eq!(tree.num_leaves(), n);
        for (idx, node) in tree.nodes().iter().enumerate() {
            if node.is_leaf() {
                assert_eq!(node.num_points(), 1);
                assert_eq!(node.cell.level, tree.grid_order());
            } else {
                // Compression: at least two children.
                assert!(node.children.len() >= 2, "single-child chain at {idx}");
                // Children partition the parent's point range.
                let mut covered = 0;
                for &c in &node.children {
                    let child = &tree.nodes()[c];
                    assert_eq!(child.parent, Some(idx));
                    assert!(node.cell.contains(child.cell));
                    assert!(child.cell.level > node.cell.level);
                    covered += child.num_points();
                }
                assert_eq!(covered, node.num_points());
            }
            // The node's cell is tight: it contains all its points...
            for p in &tree.points()[node.point_range.clone()] {
                assert!(node.cell.contains(Cell::leaf(tree.grid_order(), *p)));
            }
        }
        // ... and for internal nodes, no single child cell contains them all
        // (tightness ⇔ points span at least two quadrants of the cell).
        for node in tree.nodes() {
            if !node.is_leaf() {
                let pts = &tree.points()[node.point_range.clone()];
                for quad in node.cell.children() {
                    let all_inside = pts
                        .iter()
                        .all(|p| quad.contains(Cell::leaf(tree.grid_order(), *p)));
                    assert!(!all_inside, "cell {} not tight", node.cell);
                }
            }
        }
    }

    #[test]
    fn empty_tree() {
        let tree = CompressedQuadtree::build(4, &[]);
        assert!(tree.root().is_none());
        assert_eq!(tree.num_leaves(), 0);
        assert_eq!(tree.depth(), 0);
        check_invariants(&tree);
    }

    #[test]
    fn single_point_tree_is_one_leaf() {
        let tree = CompressedQuadtree::build(6, &[Point2::new(17, 42)]);
        assert_eq!(tree.nodes().len(), 1);
        assert!(tree.nodes()[0].is_leaf());
        assert_eq!(tree.nodes()[0].cell, Cell::new(6, 17, 42));
        check_invariants(&tree);
    }

    #[test]
    fn two_distant_points_share_root_only() {
        let tree = CompressedQuadtree::build(4, &[Point2::new(0, 0), Point2::new(15, 15)]);
        assert_eq!(tree.nodes().len(), 3);
        let root = &tree.nodes()[tree.root().unwrap()];
        assert_eq!(root.cell, Cell::ROOT);
        assert_eq!(root.children.len(), 2);
        check_invariants(&tree);
    }

    #[test]
    fn two_close_points_compress_the_chain() {
        // Adjacent cells deep in one quadrant: the root chain is compressed
        // to a single internal node at the deepest separating level.
        let tree = CompressedQuadtree::build(8, &[Point2::new(0, 0), Point2::new(1, 0)]);
        assert_eq!(tree.nodes().len(), 3);
        let root = &tree.nodes()[tree.root().unwrap()];
        // Smallest cell separating (0,0) and (1,0) is the level-7 cell (0,0).
        assert_eq!(root.cell, Cell::new(7, 0, 0));
        check_invariants(&tree);
    }

    #[test]
    fn random_trees_maintain_invariants() {
        for (n, order, seed) in [(10usize, 4u32, 1u64), (100, 6, 2), (1000, 8, 3), (500, 10, 4)] {
            let pts = random_points(n, order, seed);
            let tree = CompressedQuadtree::build(order, &pts);
            check_invariants(&tree);
        }
    }

    #[test]
    fn leaf_lookup_finds_every_point() {
        let pts = random_points(200, 7, 9);
        let tree = CompressedQuadtree::build(7, &pts);
        for p in &pts {
            let leaf = tree.leaf_of(*p).expect("point should have a leaf");
            assert!(tree.nodes()[leaf].is_leaf());
            assert_eq!(tree.points()[tree.nodes()[leaf].point_range.start], *p);
        }
        // A point not in the set:
        let absent = Point2::new(127, 127);
        if !pts.contains(&absent) {
            assert_eq!(tree.leaf_of(absent), None);
        }
    }

    #[test]
    fn full_grid_tree_is_the_complete_quadtree() {
        // Every cell of a 4x4 grid occupied: 16 leaves, 5 internal nodes.
        let mut pts = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                pts.push(Point2::new(x, y));
            }
        }
        let tree = CompressedQuadtree::build(2, &pts);
        assert_eq!(tree.nodes().len(), 21);
        assert_eq!(tree.depth(), 2);
        check_invariants(&tree);
    }

    #[test]
    #[should_panic(expected = "duplicate point")]
    fn duplicates_rejected() {
        let _ = CompressedQuadtree::build(4, &[Point2::new(1, 1), Point2::new(1, 1)]);
    }

    #[test]
    fn collinear_points_on_diagonal() {
        // Diagonal points exercise deep splits at every level.
        let pts: Vec<Point2> = (0..16).map(|i| Point2::new(i, i)).collect();
        let tree = CompressedQuadtree::build(4, &pts);
        check_invariants(&tree);
        assert_eq!(tree.num_leaves(), 16);
    }
}
