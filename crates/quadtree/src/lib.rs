//! # sfc-quadtree
//!
//! Spatial quadtree structure for the FMM communication model of *DeFord &
//! Kalyanaraman (ICPP 2013)*, Section III: the spatial domain is a
//! `2^k × 2^k` grid represented as a quadtree whose leaves are the occupied
//! finest-resolution cells.
//!
//! The crate provides:
//!
//! - [`Cell`]: a cell at an arbitrary resolution level, with parent/child
//!   navigation, same-level neighbor enumeration, and Morton codes;
//! - [`interaction::interaction_list`]: the FMM interaction list — "the
//!   children of the cell's parent's neighbors that share no common edges or
//!   corners with the original cell" — validated against the worked example
//!   in the paper's Figure 4;
//! - [`CompressedQuadtree`]: the compressed (no single-child chains)
//!   pointer-based quadtree of Hariharan & Aluru used by real FMM codes,
//!   built bottom-up from Morton-sorted points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod cell;
pub mod cell3d;
pub mod compressed;
pub mod interaction;

pub use balance::LinearQuadtree;
pub use cell::{regions_touch, Cell, NeighborList};
pub use compressed::CompressedQuadtree;
pub use interaction::{interaction_list, InteractionList};
