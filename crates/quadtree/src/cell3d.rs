//! Octree cells — the 3-D counterpart of [`crate::cell`].
//!
//! The paper's model generalizes verbatim: in 3-D the spatial domain is a
//! `2^k`-sided cube represented as an octree; a cell's near field is its
//! (up to) 26 edge/corner/face-sharing neighbors, and its interaction list
//! holds the children of its parent's neighbors that are not adjacent to it
//! (at most `6³ − 3³ = 189` cells).

use sfc_curves::curve3d::{morton3_decode, morton3_encode, Point3};

/// A cell of the spatial octree at a given resolution level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell3 {
    /// Resolution level: 0 is the root, `k` the finest.
    pub level: u32,
    /// Coordinates within the level's `2^level`-sided grid.
    pub x: u32,
    /// Second coordinate.
    pub y: u32,
    /// Third coordinate.
    pub z: u32,
}

/// Maximum interaction-list length in 3-D.
pub const MAX_INTERACTION_LIST_3D: usize = 189;

impl Cell3 {
    /// The root cell covering the whole domain.
    pub const ROOT: Cell3 = Cell3 {
        level: 0,
        x: 0,
        y: 0,
        z: 0,
    };

    /// Construct a cell, checking coordinates fit the level.
    pub fn new(level: u32, x: u32, y: u32, z: u32) -> Self {
        assert!(level <= 20, "level out of range: {level}");
        let side = 1u64 << level;
        assert!(
            (x as u64) < side && (y as u64) < side && (z as u64) < side,
            "cell ({x}, {y}, {z}) outside level-{level} grid"
        );
        Cell3 { level, x, y, z }
    }

    /// The finest-resolution cell of a grid point.
    pub fn leaf(grid_order: u32, p: Point3) -> Self {
        Cell3::new(grid_order, p.x, p.y, p.z)
    }

    /// Morton code of the cell within its level.
    #[inline]
    pub fn code(&self) -> u64 {
        morton3_encode(self.x, self.y, self.z)
    }

    /// Reconstruct a cell from its level and Morton code.
    #[inline]
    pub fn from_code(level: u32, code: u64) -> Self {
        let (x, y, z) = morton3_decode(code);
        Cell3 { level, x, y, z }
    }

    /// The parent cell; `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<Cell3> {
        if self.level == 0 {
            return None;
        }
        Some(Cell3 {
            level: self.level - 1,
            x: self.x >> 1,
            y: self.y >> 1,
            z: self.z >> 1,
        })
    }

    /// The eight children, in Morton order.
    pub fn children(&self) -> [Cell3; 8] {
        let level = self.level + 1;
        assert!(level <= 20);
        let (x, y, z) = (self.x << 1, self.y << 1, self.z << 1);
        std::array::from_fn(|i| Cell3 {
            level,
            x: x + (i as u32 & 1),
            y: y + ((i as u32 >> 1) & 1),
            z: z + ((i as u32 >> 2) & 1),
        })
    }

    /// Chebyshev distance to a same-level cell.
    #[inline]
    pub fn chebyshev(&self, other: Cell3) -> u64 {
        debug_assert_eq!(self.level, other.level);
        (self.x.abs_diff(other.x))
            .max(self.y.abs_diff(other.y))
            .max(self.z.abs_diff(other.z)) as u64
    }

    /// The same-level cells sharing a face, edge or corner — at most 26.
    pub fn neighbors(&self) -> Vec<Cell3> {
        let side = (1u64 << self.level) as i64;
        let mut out = Vec::with_capacity(26);
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let nx = self.x as i64 + dx;
                    let ny = self.y as i64 + dy;
                    let nz = self.z as i64 + dz;
                    if nx >= 0 && ny >= 0 && nz >= 0 && nx < side && ny < side && nz < side {
                        out.push(Cell3 {
                            level: self.level,
                            x: nx as u32,
                            y: ny as u32,
                            z: nz as u32,
                        });
                    }
                }
            }
        }
        out
    }

    /// The ancestor at a coarser (or equal) level.
    pub fn ancestor_at(&self, level: u32) -> Cell3 {
        assert!(level <= self.level);
        let shift = self.level - level;
        Cell3 {
            level,
            x: self.x >> shift,
            y: self.y >> shift,
            z: self.z >> shift,
        }
    }
}

impl std::fmt::Display for Cell3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}({}, {}, {})", self.level, self.x, self.y, self.z)
    }
}

/// The 3-D interaction list: children of the parent's neighbors (and of the
/// parent) that are not equal or adjacent to `cell`.
pub fn interaction_list_3d(cell: Cell3) -> Vec<Cell3> {
    let mut out = Vec::new();
    let parent = match cell.parent() {
        Some(p) => p,
        None => return out,
    };
    let mut push_children_of = |p: Cell3| {
        for child in p.children() {
            if child.chebyshev(cell) > 1 {
                out.push(child);
            }
        }
    };
    push_children_of(parent);
    for pn in parent.neighbors() {
        push_children_of(pn);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_round_trip() {
        let c = Cell3::new(4, 5, 9, 13);
        let kids = c.children();
        assert_eq!(kids.len(), 8);
        for child in kids {
            assert_eq!(child.parent(), Some(c));
        }
        assert_eq!(Cell3::ROOT.parent(), None);
    }

    #[test]
    fn children_are_distinct() {
        let kids = Cell3::new(2, 1, 2, 3).children();
        for (i, a) in kids.iter().enumerate() {
            for b in kids.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn code_round_trip() {
        let c = Cell3::new(7, 100, 50, 127);
        assert_eq!(Cell3::from_code(7, c.code()), c);
    }

    #[test]
    fn interior_cell_has_26_neighbors() {
        let c = Cell3::new(3, 4, 4, 4);
        assert_eq!(c.neighbors().len(), 26);
        let corner = Cell3::new(3, 0, 0, 0);
        assert_eq!(corner.neighbors().len(), 7);
    }

    #[test]
    fn interior_interaction_list_is_189() {
        let c = Cell3::new(4, 8, 8, 8);
        assert_eq!(interaction_list_3d(c).len(), MAX_INTERACTION_LIST_3D);
    }

    #[test]
    fn root_and_level1_lists_empty() {
        assert!(interaction_list_3d(Cell3::ROOT).is_empty());
        for child in Cell3::ROOT.children() {
            assert!(interaction_list_3d(child).is_empty());
        }
    }

    #[test]
    fn interaction_members_well_separated() {
        let c = Cell3::new(3, 2, 5, 3);
        for other in interaction_list_3d(c) {
            assert!(c.chebyshev(other) > 1);
            assert!(c.parent().unwrap().chebyshev(other.parent().unwrap()) <= 1);
        }
    }

    #[test]
    fn completeness_on_small_cube() {
        // Every pair of distinct leaves at level 3 (8^3 cube) is near-field
        // or handled at exactly one level.
        let k = 3u32;
        let side = 1u32 << k;
        let cells: Vec<Cell3> = (0..side)
            .flat_map(|z| {
                (0..side).flat_map(move |y| (0..side).map(move |x| Cell3::new(k, x, y, z)))
            })
            .collect();
        for (i, &a) in cells.iter().enumerate() {
            for &b in cells.iter().skip(i + 1).step_by(7) {
                let near = a.chebyshev(b) <= 1;
                let mut far_levels = 0;
                for level in 1..=k {
                    let (aa, ba) = (a.ancestor_at(level), b.ancestor_at(level));
                    if aa != ba
                        && aa.chebyshev(ba) > 1
                        && aa.parent().unwrap().chebyshev(ba.parent().unwrap()) <= 1
                    {
                        far_levels += 1;
                    }
                }
                assert_eq!(far_levels, u32::from(!near), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn ancestor_chain() {
        let c = Cell3::new(5, 21, 9, 30);
        assert_eq!(c.ancestor_at(0), Cell3::ROOT);
        assert_eq!(c.ancestor_at(5), c);
        let a = c.ancestor_at(2);
        assert_eq!((a.x, a.y, a.z), (2, 1, 3));
    }
}
