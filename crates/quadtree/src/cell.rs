//! Quadtree cells.
//!
//! A [`Cell`] identifies one square region of the `2^k × 2^k` domain: at
//! level `ℓ` (0 = root, `k` = finest) the domain is a `2^ℓ × 2^ℓ` grid of
//! cells and the cell has coordinates `(x, y)` within it. The Morton code of
//! `(x, y)` doubles as the cell's id within its level, making parent/child
//! arithmetic a two-bit shift.

use sfc_curves::morton;
use sfc_curves::Point2;

/// A cell of the spatial quadtree at a given resolution level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Resolution level: 0 is the root (whole domain), `k` the finest.
    pub level: u32,
    /// Column within the level's `2^level`-sided grid.
    pub x: u32,
    /// Row within the level's grid.
    pub y: u32,
}

impl Cell {
    /// The root cell covering the whole domain.
    pub const ROOT: Cell = Cell {
        level: 0,
        x: 0,
        y: 0,
    };

    /// Construct a cell, checking the coordinates fit the level.
    pub fn new(level: u32, x: u32, y: u32) -> Self {
        assert!(level <= 31, "level out of range: {level}");
        let side = 1u64 << level;
        assert!(
            (x as u64) < side && (y as u64) < side,
            "cell ({x}, {y}) outside level-{level} grid"
        );
        Cell { level, x, y }
    }

    /// The finest-resolution cell containing grid point `p` on a
    /// `2^grid_order`-sided grid (i.e. the leaf cell of the point).
    pub fn leaf(grid_order: u32, p: Point2) -> Self {
        Cell::new(grid_order, p.x, p.y)
    }

    /// Side length of this level's grid.
    #[inline]
    pub fn level_side(&self) -> u64 {
        1u64 << self.level
    }

    /// Morton code of the cell within its level.
    #[inline]
    pub fn code(&self) -> u64 {
        morton::encode(self.x, self.y)
    }

    /// Reconstruct a cell from its level and Morton code.
    #[inline]
    pub fn from_code(level: u32, code: u64) -> Self {
        let (x, y) = morton::decode(code);
        debug_assert!((x as u64) < (1u64 << level) && (y as u64) < (1u64 << level));
        Cell { level, x, y }
    }

    /// The parent cell (one level coarser). `None` for the root.
    #[inline]
    pub fn parent(&self) -> Option<Cell> {
        if self.level == 0 {
            return None;
        }
        Some(Cell {
            level: self.level - 1,
            x: self.x >> 1,
            y: self.y >> 1,
        })
    }

    /// The four children (one level finer), in Morton order.
    pub fn children(&self) -> [Cell; 4] {
        let level = self.level + 1;
        assert!(level <= 31, "cannot refine below level 31");
        let (x, y) = (self.x << 1, self.y << 1);
        [
            Cell { level, x, y },
            Cell { level, x: x + 1, y },
            Cell { level, x, y: y + 1 },
            Cell {
                level,
                x: x + 1,
                y: y + 1,
            },
        ]
    }

    /// True if `other` lies within this cell's region (including `self`).
    pub fn contains(&self, other: Cell) -> bool {
        if other.level < self.level {
            return false;
        }
        let shift = other.level - self.level;
        (other.x >> shift) == self.x && (other.y >> shift) == self.y
    }

    /// Chebyshev distance to a same-level cell.
    #[inline]
    pub fn chebyshev(&self, other: Cell) -> u64 {
        debug_assert_eq!(self.level, other.level, "cells must share a level");
        (self.x.abs_diff(other.x)).max(self.y.abs_diff(other.y)) as u64
    }

    /// True if `other` (same level) shares an edge or corner with this cell.
    #[inline]
    pub fn is_adjacent(&self, other: Cell) -> bool {
        self.chebyshev(other) == 1
    }

    /// The same-level cells sharing an edge or corner with this cell — at
    /// most 8, fewer at the domain boundary (the paper's Section III bound).
    /// Returned inline: enumerating a neighborhood allocates nothing.
    pub fn neighbors(&self) -> NeighborList {
        let side = self.level_side() as i64;
        let mut out = NeighborList::new();
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = self.x as i64 + dx;
                let ny = self.y as i64 + dy;
                if nx >= 0 && ny >= 0 && nx < side && ny < side {
                    out.push(Cell {
                        level: self.level,
                        x: nx as u32,
                        y: ny as u32,
                    });
                }
            }
        }
        out
    }

    /// The quadrant index (0–3, Morton order) of this cell within its
    /// parent. `None` for the root.
    pub fn quadrant_in_parent(&self) -> Option<u8> {
        if self.level == 0 {
            return None;
        }
        Some(((self.y & 1) << 1 | (self.x & 1)) as u8)
    }

    /// The ancestor of this cell at the given (coarser or equal) level.
    pub fn ancestor_at(&self, level: u32) -> Cell {
        assert!(level <= self.level, "ancestor level must be coarser");
        let shift = self.level - level;
        Cell {
            level,
            x: self.x >> shift,
            y: self.y >> shift,
        }
    }
}

/// A cell's same-level neighbors held inline: a fixed `[Cell; 8]` buffer
/// plus a length, so [`Cell::neighbors`] allocates nothing. Dereferences to
/// `&[Cell]`, so slice idioms (`len`, `contains`, `for n in &list`) work
/// unchanged.
#[derive(Debug, Clone, Copy)]
pub struct NeighborList {
    cells: [Cell; 8],
    len: usize,
}

impl NeighborList {
    const fn new() -> Self {
        NeighborList {
            cells: [Cell::ROOT; 8],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, cell: Cell) {
        self.cells[self.len] = cell;
        self.len += 1;
    }

    /// The neighbors as a slice, in `(dy, dx)` enumeration order.
    #[inline]
    pub fn as_slice(&self) -> &[Cell] {
        &self.cells[..self.len]
    }
}

impl std::ops::Deref for NeighborList {
    type Target = [Cell];

    #[inline]
    fn deref(&self) -> &[Cell] {
        self.as_slice()
    }
}

impl IntoIterator for NeighborList {
    type Item = Cell;
    type IntoIter = std::iter::Take<std::array::IntoIter<Cell, 8>>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.cells.into_iter().take(self.len)
    }
}

impl<'a> IntoIterator for &'a NeighborList {
    type Item = &'a Cell;
    type IntoIter = std::slice::Iter<'a, Cell>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}({}, {})", self.level, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_round_trip() {
        let c = Cell::new(5, 13, 22);
        for child in c.children() {
            assert_eq!(child.parent(), Some(c));
            assert!(c.contains(child));
        }
        assert_eq!(Cell::ROOT.parent(), None);
    }

    #[test]
    fn children_are_disjoint_and_cover_parent() {
        let c = Cell::new(3, 2, 5);
        let kids = c.children();
        for (i, a) in kids.iter().enumerate() {
            for b in kids.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Every level-4 cell inside c's region is one of the children.
        for x in (c.x << 1)..((c.x + 1) << 1) {
            for y in (c.y << 1)..((c.y + 1) << 1) {
                let cand = Cell::new(4, x, y);
                assert!(kids.contains(&cand));
            }
        }
    }

    #[test]
    fn code_round_trip() {
        let c = Cell::new(10, 513, 220);
        assert_eq!(Cell::from_code(10, c.code()), c);
    }

    #[test]
    fn interior_cell_has_eight_neighbors() {
        let c = Cell::new(4, 7, 7);
        assert_eq!(c.neighbors().len(), 8);
        for n in c.neighbors() {
            assert!(c.is_adjacent(n));
        }
    }

    #[test]
    fn corner_cell_has_three_neighbors() {
        let c = Cell::new(4, 0, 0);
        assert_eq!(c.neighbors().len(), 3);
        let c = Cell::new(4, 15, 15);
        assert_eq!(c.neighbors().len(), 3);
    }

    #[test]
    fn edge_cell_has_five_neighbors() {
        let c = Cell::new(4, 0, 7);
        assert_eq!(c.neighbors().len(), 5);
    }

    #[test]
    fn root_has_no_neighbors() {
        assert!(Cell::ROOT.neighbors().is_empty());
    }

    #[test]
    fn containment_is_reflexive_and_hierarchical() {
        let c = Cell::new(2, 1, 3);
        assert!(c.contains(c));
        assert!(Cell::ROOT.contains(c));
        assert!(!c.contains(Cell::ROOT));
        // A leaf inside and outside.
        assert!(c.contains(Cell::new(5, 0b1_000, 0b11_111)));
        assert!(!c.contains(Cell::new(5, 0, 0)));
    }

    #[test]
    fn quadrants_in_parent() {
        let parent = Cell::new(1, 0, 1);
        let kids = parent.children();
        assert_eq!(kids[0].quadrant_in_parent(), Some(0));
        assert_eq!(kids[1].quadrant_in_parent(), Some(1));
        assert_eq!(kids[2].quadrant_in_parent(), Some(2));
        assert_eq!(kids[3].quadrant_in_parent(), Some(3));
        assert_eq!(Cell::ROOT.quadrant_in_parent(), None);
    }

    #[test]
    fn ancestor_at_levels() {
        let leaf = Cell::new(6, 45, 33);
        assert_eq!(leaf.ancestor_at(6), leaf);
        assert_eq!(leaf.ancestor_at(0), Cell::ROOT);
        let a3 = leaf.ancestor_at(3);
        assert_eq!(a3, Cell::new(3, 5, 4));
        assert!(a3.contains(leaf));
    }

    #[test]
    #[should_panic(expected = "outside level")]
    fn out_of_level_coordinates_rejected() {
        let _ = Cell::new(2, 4, 0);
    }

    #[test]
    fn leaf_of_point() {
        let c = Cell::leaf(8, Point2::new(100, 200));
        assert_eq!((c.level, c.x, c.y), (8, 100, 200));
    }
}

/// Region adjacency across levels: true if the closed regions of two cells
/// (of possibly different levels) touch — share boundary or overlap. Used by
/// the adaptive FMM's U/W/X list construction, where a leaf's neighbors can
/// be coarser or finer than itself.
pub fn regions_touch(a: Cell, b: Cell) -> bool {
    // Compare footprints at the finer of the two levels.
    let level = a.level.max(b.level);
    let (ax0, ax1) = footprint(a.x, a.level, level);
    let (ay0, ay1) = footprint(a.y, a.level, level);
    let (bx0, bx1) = footprint(b.x, b.level, level);
    let (by0, by1) = footprint(b.y, b.level, level);
    gap(ax0, ax1, bx0, bx1) <= 1 && gap(ay0, ay1, by0, by1) <= 1
}

/// Half-open coordinate range `[lo, hi)` of a level-`l` coordinate expressed
/// at `target_level`.
fn footprint(coord: u32, level: u32, target_level: u32) -> (u64, u64) {
    let shift = target_level - level;
    ((coord as u64) << shift, ((coord as u64) + 1) << shift)
}

/// Distance in cells between two half-open ranges (0 when they overlap).
fn gap(a0: u64, a1: u64, b0: u64, b1: u64) -> u64 {
    if a1 <= b0 {
        b0 - a1 + 1
    } else if b1 <= a0 {
        a0 - b1 + 1
    } else {
        0
    }
}

#[cfg(test)]
mod touch_tests {
    use super::*;

    #[test]
    fn same_level_touch_matches_chebyshev() {
        for ax in 0..4u32 {
            for ay in 0..4u32 {
                for bx in 0..4u32 {
                    for by in 0..4u32 {
                        let a = Cell::new(2, ax, ay);
                        let b = Cell::new(2, bx, by);
                        assert_eq!(regions_touch(a, b), a.chebyshev(b) <= 1);
                    }
                }
            }
        }
    }

    #[test]
    fn containment_implies_touch() {
        let big = Cell::new(1, 0, 0);
        let small = Cell::new(4, 3, 5);
        assert!(big.contains(small));
        assert!(regions_touch(big, small));
        assert!(regions_touch(small, big));
    }

    #[test]
    fn coarse_fine_adjacency() {
        // Level-1 cell (0,0) covers [0,4)x[0,4) at level 3. The level-3
        // cell (4,0) touches it; (5,0) does not.
        let big = Cell::new(1, 0, 0);
        assert!(regions_touch(big, Cell::new(3, 4, 0)));
        assert!(regions_touch(big, Cell::new(3, 4, 4)));
        assert!(!regions_touch(big, Cell::new(3, 5, 0)));
        assert!(!regions_touch(big, Cell::new(3, 5, 5)));
    }

    #[test]
    fn touch_is_symmetric() {
        let pairs = [
            (Cell::new(2, 1, 1), Cell::new(4, 8, 8)),
            (Cell::new(1, 1, 0), Cell::new(3, 3, 3)),
            (Cell::new(3, 0, 0), Cell::new(3, 7, 7)),
        ];
        for (a, b) in pairs {
            assert_eq!(regions_touch(a, b), regions_touch(b, a));
        }
    }
}
