//! Linear quadtrees and 2:1 balance refinement.
//!
//! The paper's FMM substrate cites Sundar, Sampath & Biros ("Bottom-up
//! construction and 2:1 balance refinement of linear octrees in parallel",
//! SISC 2008) for the tree construction used by production FMM codes. A
//! *linear* quadtree stores only its leaves, as (level, Morton code) pairs;
//! it is **complete** when the leaves tile the domain exactly, and **2:1
//! balanced** when no two edge/corner-adjacent leaves differ by more than
//! one level — the invariant FMM implementations need so that near-field
//! lists stay O(1) per leaf.
//!
//! [`LinearQuadtree::from_seeds`] builds the minimal complete tree refined
//! at a given set of seed cells; [`LinearQuadtree::balance`] enforces the
//! 2:1 constraint by ripple refinement to a fixed point.

use crate::cell::Cell;
use std::collections::HashSet;

/// A complete linear quadtree: the sorted list of leaf cells tiling a
/// `2^grid_order`-sided domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearQuadtree {
    grid_order: u32,
    /// Leaves sorted by (level-k-extended Morton position); guaranteed to
    /// tile the domain without overlap.
    leaves: Vec<Cell>,
}

impl LinearQuadtree {
    /// The trivial tree: one root leaf.
    pub fn root(grid_order: u32) -> Self {
        assert!((1..=20).contains(&grid_order));
        LinearQuadtree {
            grid_order,
            leaves: vec![Cell::ROOT],
        }
    }

    /// The minimal complete tree in which every seed cell is covered by a
    /// leaf at the seed's level or finer. Seeds may be at any levels (at
    /// most `grid_order`).
    pub fn from_seeds(grid_order: u32, seeds: &[Cell]) -> Self {
        assert!((1..=20).contains(&grid_order));
        for s in seeds {
            assert!(
                s.level <= grid_order,
                "seed {s} finer than the grid order {grid_order}"
            );
        }
        let mut leaves = Vec::new();
        // Recursive top-down split wherever a strictly finer seed lies
        // inside the cell.
        fn build(cell: Cell, seeds: &[Cell], leaves: &mut Vec<Cell>) {
            let must_split = seeds
                .iter()
                .any(|s| s.level > cell.level && cell.contains(*s));
            if must_split {
                for child in cell.children() {
                    // Only recurse with the seeds relevant to this child.
                    let sub: Vec<Cell> = seeds
                        .iter()
                        .copied()
                        .filter(|s| child.contains(*s) || s.contains(child))
                        .collect();
                    build(child, &sub, leaves);
                }
            } else {
                leaves.push(cell);
            }
        }
        build(Cell::ROOT, seeds, &mut leaves);
        let mut tree = LinearQuadtree { grid_order, leaves };
        tree.sort_leaves();
        tree
    }

    fn sort_leaves(&mut self) {
        let k = self.grid_order;
        // Sort by position of the cell's first descendant at the finest
        // level — the canonical linear-octree order.
        self.leaves
            .sort_unstable_by_key(|c| c.code() << (2 * (k - c.level)));
    }

    /// Grid order of the domain.
    pub fn grid_order(&self) -> u32 {
        self.grid_order
    }

    /// The leaves in canonical order.
    pub fn leaves(&self) -> &[Cell] {
        &self.leaves
    }

    /// The leaf covering `cell` (the leaf equal to it or its ancestor), if
    /// the tree is complete.
    pub fn leaf_covering(&self, cell: Cell) -> Option<Cell> {
        let set: HashSet<Cell> = self.leaves.iter().copied().collect();
        let mut cur = cell;
        loop {
            if set.contains(&cur) {
                return Some(cur);
            }
            cur = cur.parent()?;
        }
    }

    /// True if the leaves tile the domain exactly (measure check plus
    /// pairwise disjointness via sorting).
    pub fn is_complete(&self) -> bool {
        let k = self.grid_order;
        let total: u128 = self
            .leaves
            .iter()
            .map(|c| 1u128 << (2 * (k - c.level)))
            .sum();
        if total != 1u128 << (2 * k) {
            return false;
        }
        // Sorted by first-descendant position; consecutive leaves must not
        // overlap, which with the measure check implies an exact tiling.
        for w in self.leaves.windows(2) {
            if w[0].contains(w[1]) || w[1].contains(w[0]) {
                return false;
            }
        }
        true
    }

    /// True if no two adjacent leaves differ by more than one level.
    pub fn is_balanced(&self) -> bool {
        self.first_violation().is_none()
    }

    /// Find a leaf that violates the 2:1 constraint: a leaf with an
    /// edge/corner-adjacent leaf more than one level coarser (the coarser
    /// leaf is returned).
    fn first_violation(&self) -> Option<Cell> {
        let set: HashSet<Cell> = self.leaves.iter().copied().collect();
        for &leaf in &self.leaves {
            if leaf.level <= 1 {
                continue;
            }
            for nb in leaf.neighbors() {
                // Find the leaf covering the neighbor cell.
                let mut cur = nb;
                loop {
                    if set.contains(&cur) {
                        if leaf.level > cur.level + 1 {
                            return Some(cur);
                        }
                        break;
                    }
                    match cur.parent() {
                        Some(p) => cur = p,
                        None => break,
                    }
                }
            }
        }
        None
    }

    /// Refine to the 2:1 balance fixed point: repeatedly split the coarser
    /// partner of every violating pair. Terminates because levels are
    /// bounded by the grid order.
    pub fn balance(&mut self) {
        while let Some(victim) = self.first_violation() {
            let pos = self
                .leaves
                .iter()
                .position(|&c| c == victim)
                .expect("violation refers to a leaf");
            self.leaves.swap_remove(pos);
            self.leaves.extend(victim.children());
            self.sort_leaves();
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the tree has no leaves (never after construction).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Maximum leaf level.
    pub fn max_level(&self) -> u32 {
        self.leaves.iter().map(|c| c.level).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_curves::Point2;

    #[test]
    fn root_tree_is_complete_and_balanced() {
        let t = LinearQuadtree::root(5);
        assert!(t.is_complete());
        assert!(t.is_balanced());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn single_deep_seed() {
        // One seed at the finest corner forces a refinement chain; the
        // unbalanced tree has 1 + 3*level leaves.
        let k = 5u32;
        let seed = Cell::leaf(k, Point2::new(0, 0));
        let t = LinearQuadtree::from_seeds(k, &[seed]);
        assert!(t.is_complete());
        assert_eq!(t.len() as u32, 1 + 3 * k);
        assert_eq!(t.leaf_covering(seed), Some(seed));
        // A corner chain nests against same-or-one-coarser siblings at
        // every level, so it is already 2:1 balanced...
        assert!(t.is_balanced());
    }

    #[test]
    fn center_seed_is_unbalanced() {
        // ...but a deep seed *adjacent to the central cross* puts a finest
        // leaf next to a level-1 quadrant: violation.
        let k = 5u32;
        let half = (1u32 << k) / 2;
        let seed = Cell::leaf(k, Point2::new(half - 1, half - 1));
        let t = LinearQuadtree::from_seeds(k, &[seed]);
        assert!(t.is_complete());
        assert!(!t.is_balanced());
    }

    #[test]
    fn balancing_fixes_the_center_chain() {
        let k = 6u32;
        let half = (1u32 << k) / 2;
        let seed = Cell::leaf(k, Point2::new(half - 1, half - 1));
        let mut t = LinearQuadtree::from_seeds(k, &[seed]);
        t.balance();
        assert!(t.is_complete(), "balance must preserve completeness");
        assert!(t.is_balanced());
        // The seed leaf survives at its level.
        assert_eq!(t.leaf_covering(seed), Some(seed));
        // 2:1 balancing of a single deep chain grows the tree by a bounded
        // factor, far below full refinement (4^6 = 4096 cells).
        assert!(t.len() < 400, "{} leaves", t.len());
        assert!((t.len() as u32) > 1 + 3 * k);
    }

    #[test]
    fn seeds_at_mixed_levels() {
        let seeds = vec![
            Cell::new(4, 0, 0),
            Cell::new(2, 3, 3),
            Cell::new(6, 40, 17),
        ];
        let mut t = LinearQuadtree::from_seeds(6, &seeds);
        assert!(t.is_complete());
        for s in &seeds {
            let covering = t.leaf_covering(*s).unwrap();
            assert!(covering.level >= s.level, "{s} covered by coarser {covering}");
        }
        t.balance();
        assert!(t.is_complete() && t.is_balanced());
    }

    #[test]
    fn balance_is_idempotent() {
        let seeds = vec![Cell::new(5, 17, 3), Cell::new(5, 0, 31)];
        let mut t = LinearQuadtree::from_seeds(5, &seeds);
        t.balance();
        let first = t.clone();
        t.balance();
        assert_eq!(t, first);
    }

    #[test]
    fn fully_refined_tree_is_balanced() {
        // Seeds in all four corners at the max level of a small grid.
        let k = 3u32;
        let side = (1u32 << k) - 1;
        let seeds = vec![
            Cell::new(k, 0, 0),
            Cell::new(k, side, 0),
            Cell::new(k, 0, side),
            Cell::new(k, side, side),
        ];
        let mut t = LinearQuadtree::from_seeds(k, &seeds);
        t.balance();
        assert!(t.is_balanced() && t.is_complete());
        // All leaves within the level budget.
        assert!(t.max_level() <= k);
    }

    #[test]
    fn adjacent_leaf_levels_differ_by_at_most_one_after_balance() {
        // Direct verification of the invariant over all leaf pairs.
        let seeds = vec![Cell::new(7, 100, 3), Cell::new(7, 3, 100)];
        let mut t = LinearQuadtree::from_seeds(7, &seeds);
        t.balance();
        let leaves = t.leaves().to_vec();
        for (i, &a) in leaves.iter().enumerate() {
            for &b in leaves.iter().skip(i + 1) {
                // Adjacency between different-level cells: compare at the
                // finer level via ancestors.
                let (fine, coarse) = if a.level >= b.level { (a, b) } else { (b, a) };
                let coarse_at_fine_x0 = coarse.x << (fine.level - coarse.level);
                let coarse_side = 1u32 << (fine.level - coarse.level);
                let coarse_at_fine_y0 = coarse.y << (fine.level - coarse.level);
                // Chebyshev distance between the fine cell and the coarse
                // cell's footprint at the fine level.
                let dx = if fine.x < coarse_at_fine_x0 {
                    coarse_at_fine_x0 - fine.x
                } else {
                    (fine.x + 1).saturating_sub(coarse_at_fine_x0 + coarse_side)
                };
                let dy = if fine.y < coarse_at_fine_y0 {
                    coarse_at_fine_y0 - fine.y
                } else {
                    (fine.y + 1).saturating_sub(coarse_at_fine_y0 + coarse_side)
                };
                let touching = dx <= 1 && dy <= 1;
                if touching {
                    assert!(
                        fine.level - coarse.level <= 1,
                        "leaves {a} and {b} violate 2:1"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "finer than the grid order")]
    fn overfine_seed_rejected() {
        let _ = LinearQuadtree::from_seeds(3, &[Cell::new(4, 0, 0)]);
    }
}
