//! FMM interaction lists.
//!
//! Section III of the paper: "each cell at coarse resolutions interacts with
//! all of the children of its parent's neighbors that are not adjacent to
//! the cell at that resolution". Equivalently, the interaction list of cell
//! `c` contains the same-level cells that are *not* adjacent to `c` (no
//! shared edge or corner) but whose *parents are adjacent to (or equal to)
//! `c`'s parent* — the cells whose influence is well-separated at this level
//! but was not already handled at a coarser level.
//!
//! The enumeration below includes children of the parent itself (siblings of
//! `c`) when they are not adjacent to `c`; for a 2 × 2 subdivision every
//! sibling touches `c`, so this term is always empty in 2-D and the
//! definition coincides with the paper's "children of parent's neighbors"
//! phrasing. The worked example in the paper's Figure 4 is reproduced in the
//! tests verbatim.

use crate::cell::Cell;

/// Maximum possible interaction list length in 2-D: the 6×6 block of cells
/// covered by the parent's 3×3 neighborhood, minus the 3×3 adjacency block
/// around the cell itself — `36 − 9 = 27`.
pub const MAX_INTERACTION_LIST_2D: usize = 27;

/// An interaction list held inline: a fixed `[Cell; 27]` buffer plus a
/// length, so enumerating a list allocates nothing. The far-field ACD sweep
/// enumerates one list per occupied cell per level per trial — heap-backed
/// `Vec`s made the allocator the hottest symbol in that loop.
///
/// Dereferences to `&[Cell]`, so slice idioms (`len`, `contains`,
/// indexing, `for c in &list`) work unchanged.
#[derive(Debug, Clone, Copy)]
pub struct InteractionList {
    cells: [Cell; MAX_INTERACTION_LIST_2D],
    len: usize,
}

impl InteractionList {
    const fn new() -> Self {
        InteractionList {
            cells: [Cell::ROOT; MAX_INTERACTION_LIST_2D],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, cell: Cell) {
        self.cells[self.len] = cell;
        self.len += 1;
    }

    /// The list as a slice, in sorted `(level, y, x)` cell order.
    #[inline]
    pub fn as_slice(&self) -> &[Cell] {
        &self.cells[..self.len]
    }
}

impl std::ops::Deref for InteractionList {
    type Target = [Cell];

    #[inline]
    fn deref(&self) -> &[Cell] {
        self.as_slice()
    }
}

impl IntoIterator for InteractionList {
    type Item = Cell;
    type IntoIter = std::iter::Take<std::array::IntoIter<Cell, MAX_INTERACTION_LIST_2D>>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.cells.into_iter().take(self.len)
    }
}

impl<'a> IntoIterator for &'a InteractionList {
    type Item = &'a Cell;
    type IntoIter = std::slice::Iter<'a, Cell>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The interaction list of `cell`: same-level children of the parent's
/// neighbors (and of the parent itself) that are not equal or adjacent to
/// `cell`. Returns an empty list for the root and for level 1 (the root has
/// no neighbors, and level-1 siblings are all adjacent).
pub fn interaction_list(cell: Cell) -> InteractionList {
    let mut out = InteractionList::new();
    let parent = match cell.parent() {
        Some(p) => p,
        None => return out,
    };
    let mut push_children_of = |p: Cell| {
        for child in p.children() {
            if child.chebyshev(cell) > 1 {
                out.push(child);
            }
        }
    };
    push_children_of(parent);
    for pn in parent.neighbors() {
        push_children_of(pn);
    }
    out.cells[..out.len].sort_unstable();
    out
}

/// True if `a` is in the interaction list of `b` (symmetric relation).
pub fn well_separated(a: Cell, b: Cell) -> bool {
    debug_assert_eq!(a.level, b.level);
    if a.level == 0 {
        return false;
    }
    let (pa, pb) = (a.parent().unwrap(), b.parent().unwrap());
    a.chebyshev(b) > 1 && pa.chebyshev(pb) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper matching the paper's Figure 4(a): a 4 × 4 grid (level 2) with
    /// cells numbered 0–15 in row-major order, rows *top-down* as printed in
    /// the figure. Our `y` axis grows upward, so figure row `r` is `y = 3 - r`.
    fn fig4_cell(number: u32) -> Cell {
        let row = number / 4;
        let col = number % 4;
        Cell::new(2, col, 3 - row)
    }

    fn fig4_number(cell: Cell) -> u32 {
        (3 - cell.y) * 4 + cell.x
    }

    #[test]
    fn figure4_interaction_list_of_node_0() {
        // Paper: "the interaction list of node 0 is {2, 3, 6, 7, 8–15}, or
        // every node that is not in its quadrant".
        let list = interaction_list(fig4_cell(0));
        let mut numbers: Vec<u32> = list.into_iter().map(fig4_number).collect();
        numbers.sort_unstable();
        assert_eq!(numbers, vec![2, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn figure4_interaction_list_of_node_6() {
        // Paper: "the interaction list of node 6 is {0, 4, 8, 12, 13, 14, 15}".
        let list = interaction_list(fig4_cell(6));
        let mut numbers: Vec<u32> = list.into_iter().map(fig4_number).collect();
        numbers.sort_unstable();
        assert_eq!(numbers, vec![0, 4, 8, 12, 13, 14, 15]);
    }

    #[test]
    fn root_and_level1_lists_are_empty() {
        assert!(interaction_list(Cell::ROOT).is_empty());
        for child in Cell::ROOT.children() {
            assert!(interaction_list(child).is_empty());
        }
    }

    #[test]
    fn list_members_are_well_separated_and_same_level() {
        let cell = Cell::new(4, 5, 9);
        let list = interaction_list(cell);
        assert!(!list.is_empty());
        for other in &list {
            assert_eq!(other.level, cell.level);
            assert!(cell.chebyshev(*other) > 1, "{other} adjacent to {cell}");
            assert!(well_separated(cell, *other));
            // Parents are adjacent or equal.
            let pd = cell.parent().unwrap().chebyshev(other.parent().unwrap());
            assert!(pd <= 1);
        }
    }

    #[test]
    fn interior_cell_list_size() {
        // For an interior cell the list has exactly 27 entries in 2-D.
        let cell = Cell::new(5, 16, 16);
        assert_eq!(interaction_list(cell).len(), MAX_INTERACTION_LIST_2D);
    }

    #[test]
    fn symmetry_of_membership() {
        // a in IL(b) iff b in IL(a), over an exhaustive small grid.
        let level = 3u32;
        let side = 1u32 << level;
        for ax in 0..side {
            for ay in 0..side {
                let a = Cell::new(level, ax, ay);
                let la = interaction_list(a);
                for bx in 0..side {
                    for by in 0..side {
                        let b = Cell::new(level, bx, by);
                        let in_a = la.contains(&b);
                        let in_b = interaction_list(b).contains(&a);
                        assert_eq!(in_a, in_b, "{a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn completeness_every_pair_handled_once() {
        // Fundamental FMM invariant: every pair of distinct leaf cells is
        // either adjacent at the finest level (near field) or appears in the
        // interaction list of exactly one ancestor level pair (far field).
        let k = 4u32; // 16x16 leaves
        let side = 1u32 << k;
        for ax in 0..side {
            for ay in 0..side {
                let a = Cell::new(k, ax, ay);
                for bx in 0..side {
                    for by in 0..side {
                        let b = Cell::new(k, bx, by);
                        if a == b {
                            continue;
                        }
                        let near = a.chebyshev(b) <= 1;
                        // Count levels at which the ancestors are in each
                        // other's interaction lists.
                        let mut far_levels = 0;
                        for level in 1..=k {
                            let aa = a.ancestor_at(level);
                            let ba = b.ancestor_at(level);
                            if well_separated(aa, ba) {
                                far_levels += 1;
                            }
                        }
                        if near {
                            assert_eq!(far_levels, 0, "{a},{b}");
                        } else {
                            assert_eq!(far_levels, 1, "{a},{b}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_cells_have_smaller_lists() {
        let corner = Cell::new(5, 0, 0);
        let interior = Cell::new(5, 16, 16);
        assert!(interaction_list(corner).len() < interaction_list(interior).len());
    }
}
