//! Property-based tests for quadtree cells, interaction lists, and the
//! compressed quadtree.

use proptest::prelude::*;
use sfc_curves::Point2;
use sfc_quadtree::{interaction_list, Cell, CompressedQuadtree};

fn cell_strategy(max_level: u32) -> impl Strategy<Value = Cell> {
    (1u32..=max_level, any::<u32>(), any::<u32>()).prop_map(|(level, rx, ry)| {
        let side = 1u32 << level;
        Cell::new(level, rx % side, ry % side)
    })
}

proptest! {
    /// parent/children are inverse and children tile the parent.
    #[test]
    fn parent_child_inverse(cell in cell_strategy(20)) {
        for child in cell.children() {
            prop_assert_eq!(child.parent(), Some(cell));
            prop_assert!(cell.contains(child));
        }
        if let Some(p) = cell.parent() {
            prop_assert!(p.children().contains(&cell));
        }
    }

    /// Morton code round-trips at every level.
    #[test]
    fn code_round_trip(cell in cell_strategy(25)) {
        prop_assert_eq!(Cell::from_code(cell.level, cell.code()), cell);
    }

    /// Ancestors at successive levels form a chain under containment.
    #[test]
    fn ancestor_chain(cell in cell_strategy(15)) {
        let mut prev = cell;
        for level in (0..cell.level).rev() {
            let anc = cell.ancestor_at(level);
            prop_assert!(anc.contains(prev));
            prop_assert!(anc.contains(cell));
            prev = anc;
        }
        prop_assert_eq!(prev, Cell::ROOT);
    }

    /// Neighbor relation is symmetric and bounded by 8.
    #[test]
    fn neighbors_symmetric(cell in cell_strategy(12)) {
        let nbs = cell.neighbors();
        prop_assert!(nbs.len() <= 8);
        for nb in nbs {
            prop_assert!(nb.neighbors().contains(&cell));
            prop_assert!(cell.is_adjacent(nb));
        }
    }

    /// Interaction-list membership is symmetric, well-separated, and at most
    /// 27 entries.
    #[test]
    fn interaction_list_properties(cell in cell_strategy(10)) {
        let list = interaction_list(cell);
        prop_assert!(list.len() <= 27);
        for other in &list {
            prop_assert_eq!(other.level, cell.level);
            prop_assert!(cell.chebyshev(*other) > 1);
            prop_assert!(interaction_list(*other).contains(&cell));
        }
    }

    /// Every pair of equal-level cells is either adjacent (or equal), in
    /// each other's interaction lists, or handled at a strictly coarser
    /// level — the FMM completeness property, on random pairs.
    #[test]
    fn fmm_completeness_random_pairs(
        level in 2u32..=8,
        raw in any::<[u32; 4]>(),
    ) {
        let side = 1u32 << level;
        let a = Cell::new(level, raw[0] % side, raw[1] % side);
        let b = Cell::new(level, raw[2] % side, raw[3] % side);
        if a == b || a.chebyshev(b) <= 1 {
            return Ok(()); // near field
        }
        let mut handled = 0u32;
        for l in (1..=level).rev() {
            let (aa, ba) = (a.ancestor_at(l), b.ancestor_at(l));
            if aa == ba {
                break;
            }
            if aa.chebyshev(ba) > 1
                && aa.parent().unwrap().chebyshev(ba.parent().unwrap()) <= 1
            {
                handled += 1;
            }
        }
        prop_assert_eq!(handled, 1, "{} vs {}", a, b);
    }

    /// Compressed quadtrees over random point sets keep their invariants:
    /// ≤ 2n−1 nodes, n leaves, internal nodes with ≥ 2 children.
    #[test]
    fn compressed_tree_invariants(
        raws in prop::collection::vec((any::<u32>(), any::<u32>()), 1..120),
        order in 3u32..=10,
    ) {
        let side = 1u32 << order;
        let mut seen = std::collections::HashSet::new();
        let pts: Vec<Point2> = raws
            .iter()
            .filter_map(|&(x, y)| {
                let p = Point2::new(x % side, y % side);
                seen.insert((p.x, p.y)).then_some(p)
            })
            .collect();
        let n = pts.len();
        let tree = CompressedQuadtree::build(order, &pts);
        prop_assert_eq!(tree.num_leaves(), n);
        prop_assert!(tree.nodes().len() <= 2 * n);
        for node in tree.nodes() {
            if !node.is_leaf() {
                prop_assert!(node.children.len() >= 2);
            }
        }
        // Every point has a findable leaf.
        for p in &pts {
            prop_assert!(tree.leaf_of(*p).is_some());
        }
    }
}
