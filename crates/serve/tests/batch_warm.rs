//! End-to-end tests for the batch pipeline and the background cache
//! warmer, through real transports and the real client binary: a warm
//! file (full canonical specs, the `--emit-specs` format) is computed in
//! the background, after which a `--batch-file` replay of the same grid is
//! all hits with payloads byte-identical to standalone runs; and pipe
//! mode streams batch item lines ahead of the `batch_done` summary.

use serde_json::Value;
use sfc_core::spec::ExperimentSpec;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc-serve-bw-{name}-{}", std::process::id()))
}

fn spawn_daemon(socket: &Path, extra: &[&str]) -> Child {
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--socket", socket.to_str().unwrap()])
        .args(extra)
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    for _ in 0..200 {
        if socket.exists() {
            return daemon;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = daemon.kill();
    let _ = daemon.wait();
    panic!("daemon never bound its socket");
}

fn sigterm_and_wait(mut daemon: Child, socket: &Path) {
    let _ = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status();
    let start = Instant::now();
    loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            assert!(status.success(), "daemon must drain to exit 0, got {status}");
            break;
        }
        if start.elapsed() > Duration::from_secs(30) {
            let _ = daemon.kill();
            let _ = daemon.wait();
            panic!("daemon did not exit after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = std::fs::remove_file(socket);
}

fn ask(writer: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str) -> Value {
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    serde_json::from_str(&response).expect("one JSON response line")
}

fn connect(socket: &Path) -> (UnixStream, BufReader<UnixStream>) {
    let stream = UnixStream::connect(socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// Run the real client binary and return its stdout lines.
fn client(socket: &Path, args: &[&str]) -> Vec<Value> {
    let out = Command::new(env!("CARGO_BIN_EXE_sfc-serve-client"))
        .args(["--socket", socket.to_str().unwrap()])
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("client runs");
    assert!(
        out.status.success(),
        "client exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).expect("JSON line"))
        .collect()
}

/// The trivial table1 grid at scale 9, varied by seed — the same cells the
/// unit tests use, written as *full canonical specs*, which is exactly
/// what `sfc-bench --emit-specs` emits for warming.
fn spec_file(path: &Path, seeds: &[u64]) {
    let lines: Vec<String> = seeds
        .iter()
        .map(|s| ExperimentSpec::table1(9, 1, *s).canonical_string())
        .collect();
    std::fs::write(path, lines.join("\n") + "\n").unwrap();
}

#[test]
fn warm_file_then_batch_file_replays_the_grid_without_computing() {
    let cache = tmp("warm-cache");
    let socket = tmp("warm.sock");
    let specs = tmp("warm.specs");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&socket);
    spec_file(&specs, &[91, 92, 93]);

    // Explicit --workers: on a single-core box the default pool is one
    // worker, and this test holds a stats connection open while the batch
    // client connects — with one worker the batch would starve in the
    // accept queue behind the held connection.
    let daemon = spawn_daemon(
        &socket,
        &[
            "--cache",
            cache.to_str().unwrap(),
            "--warm-workers",
            "1",
            "--workers",
            "2",
        ],
    );

    // Enqueue the grid for background warming through the real client.
    let warm = client(&socket, &["--warm-file", specs.to_str().unwrap()]);
    assert_eq!(warm.len(), 1, "one response line for the warm request");
    assert_eq!(warm[0]["ok"], true, "{}", warm[0]);
    assert_eq!(warm[0]["queued"], 3u64, "{}", warm[0]);

    // The warmers compute the backlog in the background.
    {
        let (mut w, mut r) = connect(&socket);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let stats = ask(&mut w, &mut r, r#"{"op": "stats"}"#);
            if stats["stats"]["warm_computed"].as_u64() == Some(3) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "warmers never finished: {}",
                stats["stats"]
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // Close the polling connection before the batch client runs so it
        // cannot pin a worker while the batch connection waits.
    }

    // Replaying the same grid as a batch is pure cache: every item a hit,
    // payloads byte-identical to a standalone run, nothing recomputed.
    let lines = client(&socket, &["--batch-file", specs.to_str().unwrap()]);
    let (mut w, mut r) = connect(&socket);
    assert_eq!(lines.len(), 4, "3 item lines + batch_done: {lines:?}");
    let done = lines.last().unwrap();
    assert_eq!(done["batch_done"], true, "{done}");
    assert_eq!(done["ok"], true, "{done}");
    assert_eq!(done["items"], 3u64, "{done}");
    assert_eq!(done["ok_items"], 3u64, "{done}");
    assert_eq!(done["hits"], 3u64, "every warmed item must be a hit: {done}");
    for item in &lines[..3] {
        assert_eq!(item["ok"], true, "{item}");
        assert_eq!(item["hit"], true, "{item}");
        let index = item["index"].as_u64().expect("item lines carry an index") as usize;
        let standalone = ask(
            &mut w,
            &mut r,
            &format!(
                r#"{{"id": 1, "op": "run", "artifact": "table1", "scale": 9, "trials": 1, "seed": {}}}"#,
                [91u64, 92, 93][index]
            ),
        );
        assert_eq!(
            item["payload"], standalone["payload"],
            "batch item {index} must be byte-identical to its standalone run"
        );
    }

    let stats = ask(&mut w, &mut r, r#"{"op": "stats"}"#);
    let body = &stats["stats"];
    assert_eq!(
        body["computations"], 3u64,
        "only the warmers computed — the batch replayed: {body}"
    );
    assert_eq!(body["warm_queued"], 3u64, "{body}");
    assert_eq!(body["warm_dropped"], 0u64, "{body}");
    let health = ask(&mut w, &mut r, r#"{"op": "health"}"#);
    assert_eq!(health["health"]["warm_queue_depth"], 0u64, "{health}");

    drop((w, r));
    sigterm_and_wait(daemon, &socket);
    std::fs::remove_dir_all(&cache).ok();
    let _ = std::fs::remove_file(&specs);
}

#[test]
fn pipe_mode_streams_batch_item_lines_before_the_summary() {
    let cache = tmp("pipe-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--pipe", "--cache", cache.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("pipe daemon starts");
    let mut stdin = daemon.stdin.take().unwrap();
    writeln!(
        stdin,
        r#"{{"id": "p", "op": "batch", "defaults": {{"artifact": "table1", "scale": 9, "trials": 1}}, "items": [{{"seed": 95}}, {{"seed": 96}}]}}"#
    )
    .unwrap();
    drop(stdin); // EOF ends the daemon after it answers

    let out = daemon.wait_with_output().expect("daemon exits at EOF");
    assert!(out.status.success());
    let lines: Vec<Value> = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).expect("JSON line"))
        .collect();
    assert_eq!(lines.len(), 3, "2 item lines then batch_done: {lines:?}");
    let mut indexes: Vec<u64> = lines[..2]
        .iter()
        .map(|l| l["index"].as_u64().expect("item line has an index"))
        .collect();
    indexes.sort_unstable();
    assert_eq!(indexes, vec![0, 1]);
    for item in &lines[..2] {
        assert_eq!(item["ok"], true, "{item}");
        assert_eq!(item["id"], "p", "{item}");
    }
    let done = &lines[2];
    assert_eq!(done["batch_done"], true, "last line is the summary: {done}");
    assert_eq!(done["ok_items"], 2u64, "{done}");

    std::fs::remove_dir_all(&cache).ok();
}
