//! End-to-end drain test: SIGTERM with a request in flight answers the
//! accepted request, refuses new connections with a typed error, flushes a
//! final stats line, removes the socket, and exits 0 with no partial cache
//! entries left behind.

use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc-serve-drain-{name}-{}", std::process::id()))
}

#[test]
fn sigterm_drains_gracefully_under_load() {
    let cache = tmp("cache");
    let socket = tmp("daemon.sock");
    let stderr_path = tmp("stderr.log");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&socket);
    let socket_str = socket.to_str().unwrap().to_string();
    // The 800 ms compute window keeps the in-flight request alive long
    // enough to SIGTERM mid-computation and probe the drain behavior.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--socket", &socket_str, "--cache", cache.to_str().unwrap()])
        .args(["--chaos-compute-ms", "800"])
        .stderr(Stdio::from(std::fs::File::create(&stderr_path).unwrap()))
        .spawn()
        .expect("daemon starts");
    let pid = daemon.id().to_string();
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(socket.exists(), "daemon never bound its socket");

    // Put one request in flight and leave its response unread for now.
    let inflight = UnixStream::connect(&socket).expect("connect");
    inflight
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = inflight.try_clone().unwrap();
    writeln!(
        writer,
        r#"{{"id": 1, "op": "run", "artifact": "table1", "scale": 9, "trials": 1, "seed": 61, "format": "plain"}}"#
    )
    .unwrap();
    writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // SIGTERM mid-computation.
    let killed = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(killed.success(), "kill -TERM failed");
    std::thread::sleep(Duration::from_millis(150));

    // A connection arriving during the drain gets one typed refusal line.
    let late = UnixStream::connect(&socket).expect("drain keeps the listener alive");
    late.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut refusal = String::new();
    BufReader::new(late).read_line(&mut refusal).unwrap();
    let refusal: Value = serde_json::from_str(&refusal).expect("typed refusal line");
    assert_eq!(refusal["ok"], false, "{refusal}");
    assert_eq!(refusal["error_kind"], "draining", "{refusal}");

    // The accepted request is still answered in full.
    let mut response = String::new();
    BufReader::new(inflight).read_line(&mut response).unwrap();
    let response: Value = serde_json::from_str(&response).expect("complete response");
    assert_eq!(response["ok"], true, "{response}");
    assert_eq!(response["complete"], true);
    assert!(!response["payload"].as_str().unwrap().is_empty());

    // Clean exit: status 0, socket removed, final stats flushed to stderr.
    let start = std::time::Instant::now();
    let status = loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            break status;
        }
        if start.elapsed() > Duration::from_secs(30) {
            let _ = daemon.kill();
            let _ = daemon.wait();
            panic!("daemon did not finish draining within the hard timeout");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "drain must exit 0, got {status}");
    assert!(!socket.exists(), "drain must remove the socket file");
    let stderr = std::fs::read_to_string(&stderr_path).unwrap();
    assert!(
        stderr.contains("final stats"),
        "drain must flush a final stats line: {stderr}"
    );
    assert!(stderr.contains("\"computations\":"), "{stderr}");

    // The answered request's artifact is cached completely: one entry, no
    // staging debris, no quarantine.
    let names: Vec<String> = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names.len(), 1, "exactly one complete entry: {names:?}");
    assert!(!names[0].starts_with('.'), "no partial entries: {names:?}");
    assert!(
        cache.join(&names[0]).join("artifact.json").exists(),
        "the entry must be fully published"
    );

    std::fs::remove_dir_all(&cache).ok();
    std::fs::remove_file(&stderr_path).ok();
}
