//! End-to-end socket tests for the worker pool and the two-tier cache:
//! warm hits come from the memory tier byte-identically, a daemon restart
//! (cold memory, warm disk) replays the same bytes at zero computations,
//! and accept-queue overflow answers a typed `overloaded` refusal with a
//! `retry_after_ms` hint instead of growing a thread per connection.

use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc-serve-pool-{name}-{}", std::process::id()))
}

fn spawn_daemon(socket: &Path, extra: &[&str]) -> Child {
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--socket", socket.to_str().unwrap()])
        .args(extra)
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    for _ in 0..200 {
        if socket.exists() {
            return daemon;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = daemon.kill();
    let _ = daemon.wait();
    panic!("daemon never bound its socket");
}

fn sigterm_and_wait(mut daemon: Child, socket: &Path) {
    let _ = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status();
    let start = std::time::Instant::now();
    loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            assert!(status.success(), "daemon must drain to exit 0, got {status}");
            break;
        }
        if start.elapsed() > Duration::from_secs(30) {
            let _ = daemon.kill();
            let _ = daemon.wait();
            panic!("daemon did not exit after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = std::fs::remove_file(socket);
}

/// One request/response exchange on an open connection.
fn ask(writer: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str) -> Value {
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    serde_json::from_str(&response).expect("one JSON response line")
}

fn connect(socket: &Path) -> (UnixStream, BufReader<UnixStream>) {
    let stream = UnixStream::connect(socket).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

const RUN: &str = r#"{"id": 1, "op": "run", "artifact": "table1", "scale": 9, "trials": 1, "seed": 67, "format": "plain"}"#;

#[test]
fn warm_hits_come_from_memory_and_survive_a_restart_byte_identically() {
    let cache = tmp("warm-cache");
    let socket = tmp("warm.sock");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&socket);
    let cache_str = cache.to_str().unwrap().to_string();

    let daemon = spawn_daemon(
        &socket,
        &["--cache", &cache_str, "--workers", "2", "--cache-mem-mb", "64"],
    );
    let (mut w, mut r) = connect(&socket);
    let cold = ask(&mut w, &mut r, RUN);
    assert_eq!(cold["ok"], true, "{cold}");
    assert_eq!(cold["hit"], false);
    let payload = cold["payload"].as_str().unwrap().to_string();
    assert!(!payload.is_empty());

    // Repeats are memory hits: same bytes, no disk tier involvement.
    for _ in 0..2 {
        let warm = ask(&mut w, &mut r, RUN);
        assert_eq!(warm["hit"], true, "{warm}");
        assert_eq!(warm["payload"].as_str().unwrap(), payload);
    }
    let stats = ask(&mut w, &mut r, r#"{"op": "stats"}"#);
    let body = &stats["stats"];
    assert_eq!(body["computations"], 1u64, "{body}");
    assert_eq!(body["mem_hits"], 2u64, "{body}");
    assert_eq!(body["disk_hits"], 0u64, "{body}");
    assert!(body["mem_bytes"].as_u64().unwrap() > 0, "{body}");
    // The per-op histograms saw both serve paths.
    for op in ["run_compute", "run_mem_hit"] {
        assert!(
            body["latency_us"][op]["count"].as_u64().unwrap() > 0,
            "latency histogram for {op}: {body}"
        );
    }
    drop((w, r));
    sigterm_and_wait(daemon, &socket);

    // A fresh daemon over the same cache dir: memory is cold, disk is warm.
    // The first repeat verifies from disk (and promotes), the second comes
    // from memory — all byte-identical, zero recomputation.
    let daemon = spawn_daemon(
        &socket,
        &["--cache", &cache_str, "--workers", "2", "--cache-mem-mb", "64"],
    );
    let (mut w, mut r) = connect(&socket);
    let from_disk = ask(&mut w, &mut r, RUN);
    let from_mem = ask(&mut w, &mut r, RUN);
    assert_eq!(from_disk["hit"], true, "{from_disk}");
    assert_eq!(from_disk["payload"].as_str().unwrap(), payload);
    assert_eq!(from_mem["hit"], true, "{from_mem}");
    assert_eq!(from_mem["payload"].as_str().unwrap(), payload);
    let stats = ask(&mut w, &mut r, r#"{"op": "stats"}"#);
    let body = &stats["stats"];
    assert_eq!(body["computations"], 0u64, "{body}");
    assert_eq!(body["disk_hits"], 1u64, "{body}");
    assert_eq!(body["mem_hits"], 1u64, "{body}");
    drop((w, r));
    sigterm_and_wait(daemon, &socket);

    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn accept_queue_overflow_answers_a_typed_overloaded_refusal() {
    let cache = tmp("overflow-cache");
    let socket = tmp("overflow.sock");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&socket);

    // One worker and a slow computation: the single worker is pinned to the
    // first connection, the bounded queue (2 * workers slots) absorbs two
    // more, and every further connection must be refused at accept.
    let mut daemon = spawn_daemon(
        &socket,
        &[
            "--cache",
            cache.to_str().unwrap(),
            "--workers",
            "1",
            "--chaos-compute-ms",
            "3000",
        ],
    );

    let (mut busy_w, mut busy_r) = connect(&socket);
    writeln!(busy_w, "{RUN}").unwrap();
    busy_w.flush().unwrap();
    // Give the worker a moment to pull the busy connection off the queue.
    std::thread::sleep(Duration::from_millis(300));

    // Fill the queue, then keep connecting until a refusal arrives (the
    // exact refusal point depends on how fast accepts raced the fill).
    let mut parked = Vec::new();
    let mut refusal = None;
    for _ in 0..8 {
        let (stream, mut reader) = connect(&socket);
        // An overflow connection gets one line without sending anything.
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                refusal = Some(serde_json::from_str::<Value>(&line).expect("typed refusal"));
                break;
            }
            _ => parked.push((stream, reader)), // queued, not refused: keep it open
        }
    }
    let refusal = refusal.expect("some connection past the queue capacity must be refused");
    assert_eq!(refusal["ok"], false, "{refusal}");
    assert_eq!(refusal["error_kind"], "overloaded", "{refusal}");
    assert!(
        refusal["retry_after_ms"].as_u64().unwrap() >= 250,
        "{refusal}"
    );

    // The busy connection still gets its full answer: refusing overflow
    // never corrupts accepted work.
    let mut response = String::new();
    busy_r.read_line(&mut response).unwrap();
    let response: Value = serde_json::from_str(&response).expect("complete response");
    assert_eq!(response["ok"], true, "{response}");

    drop(parked);
    let _ = daemon.kill();
    let _ = daemon.wait();
    let _ = std::fs::remove_file(&socket);
    std::fs::remove_dir_all(&cache).ok();
}
