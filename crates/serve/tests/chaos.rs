//! End-to-end chaos tests of the `sfc-serve` binary: panic containment
//! (typed errors for leader and followers, clean recovery, byte-identical
//! artifacts), deadline purity (no cache entry from an expired request),
//! and client retries through panics and dropped connections.
//!
//! Every daemon is armed with a hard test-side watchdog: a hung daemon is
//! killed and the test fails instead of blocking the suite.

use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc-serve-chaos-{name}-{}", std::process::id()))
}

/// The cheapest complete experiment: table1 on a 2x2 grid with one
/// particle. Distinct seeds make distinct cache keys.
fn run_request(id: u64, seed: u64) -> String {
    format!(
        r#"{{"id": {id}, "op": "run", "artifact": "table1", "scale": 9, "trials": 1, "seed": {seed}, "format": "plain"}}"#
    )
}

/// Move the child into a watchdog thread: the returned handle joins to its
/// exit status, and a daemon that outlives `limit` is killed (failing the
/// test and unblocking any reader waiting on its stdout).
fn spawn_watchdog(mut child: Child, limit: Duration) -> JoinHandle<ExitStatus> {
    std::thread::spawn(move || {
        let start = Instant::now();
        loop {
            if let Some(status) = child.try_wait().expect("poll daemon") {
                return status;
            }
            if start.elapsed() > limit {
                let _ = child.kill();
                let _ = child.wait();
                panic!("daemon exceeded the hard test-side timeout");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    })
}

/// Cache-state triple: (entry dirs, `.tmp-*` staging debris, quarantine
/// slots). A missing cache directory counts as all-empty.
fn cache_state(cache: &Path) -> (usize, usize, usize) {
    let mut entries = 0;
    let mut tmp_debris = 0;
    let mut quarantined = 0;
    let Ok(dir) = std::fs::read_dir(cache) else {
        return (0, 0, 0);
    };
    for e in dir {
        let name = e.unwrap().file_name().to_string_lossy().into_owned();
        if name.starts_with(".tmp-") {
            tmp_debris += 1;
        } else if name == ".quarantine" {
            quarantined += std::fs::read_dir(cache.join(&name)).unwrap().count();
        } else {
            entries += 1;
        }
    }
    (entries, tmp_debris, quarantined)
}

fn spawn_pipe_daemon(cache: &Path, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--pipe", "--cache", cache.to_str().unwrap()])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts")
}

/// Compute `seed`'s payload on a chaos-free daemon with a fresh cache — the
/// reference bytes chaos runs must reproduce exactly.
fn clean_payload(name: &str, seed: u64) -> String {
    let cache = tmp(name);
    let _ = std::fs::remove_dir_all(&cache);
    let mut child = spawn_pipe_daemon(&cache, &[]);
    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, "{}", run_request(1, seed)).unwrap();
    drop(stdin);
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let reply: Value =
        serde_json::from_str(&lines.next().expect("a response").unwrap()).unwrap();
    assert_eq!(reply["ok"], true);
    let status = spawn_watchdog(child, Duration::from_secs(30))
        .join()
        .expect("watchdog");
    assert!(status.success());
    let payload = reply["payload"].as_str().unwrap().to_string();
    std::fs::remove_dir_all(&cache).ok();
    payload
}

#[test]
fn chaos_panic_gives_typed_errors_leaves_no_debris_and_recovers() {
    let cache = tmp("panic");
    let _ = std::fs::remove_dir_all(&cache);
    // Computation 2 panics; the 300 ms pre-compute window lets the second
    // identical request dedup into the doomed leader before it dies.
    let mut child = spawn_pipe_daemon(&cache, &["--chaos-panic", "2", "--chaos-compute-ms", "300"]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let watchdog = spawn_watchdog(child, Duration::from_secs(60));
    let mut read = || -> Value {
        let reply = lines.next().expect("a response line").unwrap();
        serde_json::from_str(&reply).expect("valid response JSON")
    };

    // Computation 1 (seed 31): clean.
    writeln!(stdin, "{}", run_request(1, 31)).unwrap();
    let warm = read();
    assert_eq!(warm["ok"], true, "{warm}");

    // Computation 2 (seed 32) panics. Leader and dedup follower must BOTH
    // get typed compute_panic errors — no hang (the watchdog enforces it).
    writeln!(stdin, "{}", run_request(2, 32)).unwrap();
    writeln!(stdin, "{}", run_request(3, 32)).unwrap();
    let (a, b) = (read(), read());
    for resp in [&a, &b] {
        assert_eq!(resp["ok"], false, "{resp}");
        assert_eq!(resp["error_kind"], "compute_panic", "{resp}");
        assert!(
            resp["error"].as_str().unwrap().contains("panicked"),
            "{resp}"
        );
    }
    let mut ids: Vec<u64> = [&a, &b].iter().map(|r| r["id"].as_u64().unwrap()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![2, 3], "both requests answered exactly once");

    // The panicked computation left no state: only seed 31's entry, no
    // staging debris, no quarantine slots.
    assert_eq!(cache_state(&cache), (1, 0, 0));

    // An immediate re-request of the panicked spec (computation 3) computes
    // cleanly and matches the chaos-free path byte for byte.
    writeln!(stdin, "{}", run_request(4, 32)).unwrap();
    let recovered = read();
    assert_eq!(recovered["ok"], true, "{recovered}");
    assert_eq!(recovered["complete"], true);
    assert_eq!(
        recovered["payload"].as_str().unwrap(),
        clean_payload("panic-ref", 32),
        "post-panic artifact must be byte-identical to a clean run"
    );

    writeln!(stdin, r#"{{"id": 5, "op": "stats"}}"#).unwrap();
    let stats = read();
    assert_eq!(stats["stats"]["panics"], 1);
    assert_eq!(stats["stats"]["computations"], 2);

    drop(stdin);
    let status = watchdog.join().expect("daemon did not hang");
    assert!(status.success(), "daemon must exit cleanly after EOF");
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn deadline_expired_request_is_typed_and_leaves_no_cache_entry() {
    let cache = tmp("deadline");
    let _ = std::fs::remove_dir_all(&cache);
    // The 500 ms compute window dwarfs the 100 ms deadline, so the request
    // must come back deadline_exceeded and its late result be discarded.
    let mut child = spawn_pipe_daemon(
        &cache,
        &["--deadline-ms", "100", "--chaos-compute-ms", "500"],
    );
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let watchdog = spawn_watchdog(child, Duration::from_secs(60));

    writeln!(stdin, "{}", run_request(1, 33)).unwrap();
    let reply: Value =
        serde_json::from_str(&lines.next().expect("a response").unwrap()).unwrap();
    assert_eq!(reply["ok"], false, "{reply}");
    assert_eq!(reply["error_kind"], "deadline_exceeded", "{reply}");

    // Purity: an expired request leaves no cache entry, no staging debris,
    // no quarantine slots.
    assert_eq!(cache_state(&cache), (0, 0, 0));

    drop(stdin);
    assert!(watchdog.join().expect("no hang").success());
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn client_retries_through_chaos_panics() {
    let cache = tmp("retry-cache");
    let socket = tmp("retry.sock");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&socket);
    let socket_str = socket.to_str().unwrap().to_string();
    let daemon = Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--socket", &socket_str, "--cache", cache.to_str().unwrap()])
        .args(["--chaos-panic", "2"])
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    let watchdog = spawn_watchdog(daemon, Duration::from_secs(60));
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(socket.exists(), "daemon never bound its socket");

    // Seed 41 is computation 1 (clean); seed 42 is computation 2 (panics),
    // and the client's retry recomputes it as computation 3.
    let out = Command::new(env!("CARGO_BIN_EXE_sfc-serve-client"))
        .args(["--socket", &socket_str, "--retries", "3", "--timeout-ms", "30000"])
        .arg(run_request(1, 41))
        .arg(run_request(2, 42))
        .output()
        .expect("client runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    let responses: Vec<Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid response"))
        .collect();
    assert_eq!(responses.len(), 2, "one final line per request");
    for resp in &responses {
        assert_eq!(resp["ok"], true, "retries must end in success: {resp}");
    }
    assert!(
        stderr.contains("compute_panic"),
        "the retried panic should be visible on stderr: {stderr}"
    );

    let bye = Command::new(env!("CARGO_BIN_EXE_sfc-serve-client"))
        .args(["--socket", &socket_str, "--retries", "3"])
        .arg(r#"{"id": 9, "op": "shutdown"}"#)
        .output()
        .expect("client runs");
    assert!(bye.status.success());
    assert!(watchdog.join().expect("no hang").success());
    assert!(!socket.exists(), "drain must remove the socket file");
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn client_reconnects_through_chaos_disconnects() {
    let cache = tmp("disconnect-cache");
    let socket = tmp("disconnect.sock");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&socket);
    let socket_str = socket.to_str().unwrap().to_string();
    let daemon = Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--socket", &socket_str, "--cache", cache.to_str().unwrap()])
        .args(["--chaos-disconnect", "2"])
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    let pid = daemon.id().to_string();
    let watchdog = spawn_watchdog(daemon, Duration::from_secs(60));
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(socket.exists(), "daemon never bound its socket");

    // Response 2 (seed 52's first answer) is cut off mid-write; the client
    // must synthesize a transport error internally, reconnect, and re-ask —
    // the retry is answered from the cache the first (discarded) answer
    // already populated.
    let out = Command::new(env!("CARGO_BIN_EXE_sfc-serve-client"))
        .args(["--socket", &socket_str, "--retries", "3", "--timeout-ms", "30000"])
        .arg(run_request(1, 51))
        .arg(run_request(2, 52))
        .output()
        .expect("client runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    let responses: Vec<Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid response"))
        .collect();
    assert_eq!(responses.len(), 2);
    for resp in &responses {
        assert_eq!(resp["ok"], true, "{resp}");
    }
    assert!(
        stderr.contains("mid-response") || stderr.contains("closed the connection"),
        "the dropped response should be visible on stderr: {stderr}"
    );

    // Tear down with SIGTERM rather than the `shutdown` op: the chaos would
    // cut an even-numbered shutdown response too, and the retry could race
    // the drain removing the socket.
    let killed = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(killed.success());
    assert!(watchdog.join().expect("no hang").success());
    std::fs::remove_dir_all(&cache).ok();
    std::fs::remove_file(&socket).ok();
}
