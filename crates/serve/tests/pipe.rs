//! End-to-end tests of the `sfc-serve` binary: pipe mode (request/replay/
//! dedup/stats/shutdown over stdin/stdout) and socket mode via the client
//! binary.

use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfc-serve-e2e-{name}-{}", std::process::id()))
}

/// The cheapest complete experiment: table1 on a 2x2 grid with one particle.
fn run_request(id: u64) -> String {
    format!(
        r#"{{"id": {id}, "op": "run", "artifact": "table1", "scale": 9, "trials": 1, "seed": 3, "format": "plain"}}"#
    )
}

fn spawn_pipe_daemon(cache: &str, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--pipe", "--cache", cache])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts")
}

#[test]
fn pipe_mode_serves_repeats_from_cache_and_shuts_down() {
    let cache = tmp("repeat");
    let _ = std::fs::remove_dir_all(&cache);
    let mut child = spawn_pipe_daemon(cache.to_str().unwrap(), &[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut ask = |line: &str| -> Value {
        writeln!(stdin, "{line}").unwrap();
        let reply = lines.next().expect("a response line").unwrap();
        serde_json::from_str(&reply).expect("valid response JSON")
    };

    let first = ask(&run_request(1));
    assert_eq!(first["ok"], true);
    assert_eq!(first["hit"], false);
    assert_eq!(first["complete"], true);

    let second = ask(&run_request(2));
    assert_eq!(second["id"], 2);
    assert_eq!(second["hit"], true);
    assert_eq!(
        first["payload"], second["payload"],
        "cache replay must be byte-identical"
    );

    let stats = ask(r#"{"id": 3, "op": "stats"}"#);
    assert_eq!(stats["stats"]["runs"], 2);
    assert_eq!(stats["stats"]["hits"], 1);
    assert_eq!(stats["stats"]["computations"], 1);

    let bye = ask(r#"{"id": 4, "op": "shutdown"}"#);
    assert_eq!(bye["shutting_down"], true);
    drop(stdin);
    assert!(child.wait().unwrap().success());
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn pipe_mode_dedups_concurrent_identical_requests() {
    let cache = tmp("dedup");
    let _ = std::fs::remove_dir_all(&cache);
    // 600 ms of pre-compute chaos holds the in-flight slot open long enough
    // that the second request reliably lands inside the window.
    let mut child =
        spawn_pipe_daemon(cache.to_str().unwrap(), &["--chaos-compute-ms", "600"]);
    {
        let mut stdin = child.stdin.take().unwrap();
        writeln!(stdin, "{}", run_request(1)).unwrap();
        writeln!(stdin, "{}", run_request(2)).unwrap();
        // stdin drops here: EOF after both requests are in flight.
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let responses: Vec<Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid response JSON"))
        .collect();
    assert_eq!(responses.len(), 2);

    let deduped: Vec<bool> = responses
        .iter()
        .map(|r| r["deduped"].as_bool().unwrap())
        .collect();
    assert_eq!(
        deduped.iter().filter(|&&d| d).count(),
        1,
        "exactly one of two concurrent identical requests must dedup: {responses:?}"
    );
    assert_eq!(
        responses[0]["payload"], responses[1]["payload"],
        "deduped response must carry the identical payload"
    );
    assert_eq!(responses[0]["key"], responses[1]["key"]);
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn pipe_mode_answers_garbage_without_dying() {
    let cache = tmp("garbage");
    let _ = std::fs::remove_dir_all(&cache);
    let mut child = spawn_pipe_daemon(cache.to_str().unwrap(), &[]);
    {
        let mut stdin = child.stdin.take().unwrap();
        writeln!(stdin, "this is not json").unwrap();
        writeln!(stdin, r#"{{"id": 9, "op": "stats"}}"#).unwrap();
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let responses: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().any(|r| r["ok"] == false));
    assert!(responses
        .iter()
        .any(|r| r["id"] == 9 && r["stats"]["requests"].as_u64().is_some()));
    std::fs::remove_dir_all(&cache).ok();
}

#[test]
fn socket_mode_serves_the_client_binary() {
    let cache = tmp("socket-cache");
    let socket = tmp("daemon.sock");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&socket);
    let socket_str = socket.to_str().unwrap().to_string();
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_sfc-serve"))
        .args(["--socket", &socket_str, "--cache", cache.to_str().unwrap()])
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    // Wait for the socket to appear.
    for _ in 0..100 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(socket.exists(), "daemon never bound its socket");

    let client = |requests: &[&str]| -> Vec<Value> {
        let out = Command::new(env!("CARGO_BIN_EXE_sfc-serve-client"))
            .args(["--socket", &socket_str])
            .args(requests)
            .output()
            .expect("client runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| serde_json::from_str(l).expect("valid response"))
            .collect()
    };

    let first = client(&[&run_request(1)]);
    assert_eq!(first[0]["hit"], false);
    // A second connection sees the cache, not a fresh computation.
    let second = client(&[&run_request(2), r#"{"id": 3, "op": "stats"}"#]);
    assert_eq!(second[0]["hit"], true);
    assert_eq!(first[0]["payload"], second[0]["payload"]);
    assert_eq!(second[1]["stats"]["computations"], 1);

    let bye = client(&[r#"{"id": 4, "op": "shutdown"}"#]);
    assert_eq!(bye[0]["shutting_down"], true);
    assert!(daemon.wait().unwrap().success());
    std::fs::remove_dir_all(&cache).ok();
    std::fs::remove_file(&socket).ok();
}
