//! Versioned wire shapes of the daemon's `stats` and `health` bodies.
//!
//! The daemon, its final drain flush and `sfc-serve-client` all speak
//! these structs instead of hand-assembling (or hand-picking apart) JSON
//! maps, so the three copies of each shape can never drift. The wire
//! format is frozen by round-trip tests: field names and order match what
//! the daemon has always emitted, with one addition — a leading
//! `schema_version` stamp ([`SCHEMA_VERSION`]) consumers can check before
//! trusting the rest of the object.

use serde_json::{Map, ToJson, Value};

/// Version stamp carried by every `stats` and `health` body. Bump it when
/// a field is removed or changes meaning; adding fields is compatible and
/// does not bump.
pub const SCHEMA_VERSION: u64 = 1;

/// One op's latency histogram as reported under `latency_us`: the total
/// observation count plus the non-empty power-of-two-µs buckets, keyed by
/// their inclusive upper bound (`"inf"` for the unbounded top bucket).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyEntry {
    /// The latency label (`run_compute`, `run_mem_hit`, `stats`, ...).
    pub op: String,
    /// Total observations.
    pub count: u64,
    /// `(upper bound label, count)` pairs in ascending bound order.
    pub le_us: Vec<(String, u64)>,
}

/// The body of a `stats` response (and of the final drain flush line).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsResponse {
    /// Wire-format version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Request lines handled, including malformed ones.
    pub requests: u64,
    /// Run requests admitted and served (the hit-rate denominator).
    pub runs: u64,
    /// Run requests answered from a cache tier.
    pub hits: u64,
    /// Leader computations that ran (complete or not).
    pub computations: u64,
    /// Run requests deduplicated into an in-flight computation.
    pub deduped: u64,
    /// Failed computations (panicked or incomplete sweep).
    pub errors: u64,
    /// Computations that panicked and were contained.
    pub panics: u64,
    /// Requests whose deadline expired before an answer was ready.
    pub deadline_exceeded: u64,
    /// Requests refused by `max_inflight` admission control.
    pub overloaded: u64,
    /// Requests refused because the daemon was draining.
    pub drain_refused: u64,
    /// Warm items accepted into the background queue.
    pub warm_queued: u64,
    /// Warm items whose computation completed.
    pub warm_computed: u64,
    /// Warm items refused at enqueue or dropped by a drain.
    pub warm_dropped: u64,
    /// Cache entries quarantined after failing verification.
    pub quarantined: u64,
    /// Memory-tier cache hits.
    pub mem_hits: u64,
    /// Disk-tier cache hits.
    pub disk_hits: u64,
    /// Memory-tier evictions.
    pub mem_evictions: u64,
    /// Bytes held by the memory tier.
    pub mem_bytes: u64,
    /// Entries held by the memory tier.
    pub mem_entries: u64,
    /// `hits / runs` (0.0 before the first admitted run).
    pub hit_rate: f64,
    /// Computations currently in flight.
    pub inflight: u64,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Accumulated kernel-phase milliseconds, in first-use order.
    pub phases_ms: Vec<(String, f64)>,
    /// Per-op latency histograms, in first-use order.
    pub latency_us: Vec<LatencyEntry>,
}

/// The body of a `health` response.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthResponse {
    /// Wire-format version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Computations currently in flight.
    pub inflight: u64,
    /// Requests currently being handled.
    pub active_requests: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Cache entries quarantined after failing verification.
    pub quarantined: u64,
    /// Warm items waiting in the background queue.
    pub warm_queue_depth: u64,
    /// Warm items accepted into the background queue.
    pub warm_queued: u64,
    /// Warm items whose computation completed.
    pub warm_computed: u64,
    /// Warm items refused at enqueue or dropped by a drain.
    pub warm_dropped: u64,
    /// Memory-tier cache hits.
    pub mem_hits: u64,
    /// Disk-tier cache hits.
    pub disk_hits: u64,
    /// Memory-tier evictions.
    pub mem_evictions: u64,
    /// Bytes held by the memory tier.
    pub mem_bytes: u64,
    /// The configured per-request deadline, if any.
    pub deadline_ms: Option<u64>,
    /// The configured admission-control bound, if any.
    pub max_inflight: Option<u64>,
}

fn require<'a>(obj: &'a Map, key: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing `{key}`"))
}

fn get_u64(obj: &Map, key: &str) -> Result<u64, String> {
    require(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn get_f64(obj: &Map, key: &str) -> Result<f64, String> {
    require(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))
}

fn get_bool(obj: &Map, key: &str) -> Result<bool, String> {
    require(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("`{key}` must be a boolean"))
}

fn get_opt_u64(obj: &Map, key: &str) -> Result<Option<u64>, String> {
    match require(obj, key)? {
        Value::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer or null")),
    }
}

fn get_object<'a>(obj: &'a Map, key: &str) -> Result<&'a Map, String> {
    require(obj, key)?
        .as_object()
        .ok_or_else(|| format!("`{key}` must be an object"))
}

/// Check and read the leading `schema_version` stamp. Unknown *newer*
/// versions still parse (fields are only ever added within a version), so
/// the caller decides whether a mismatch is a warning or an error.
fn get_version(obj: &Map) -> Result<u64, String> {
    get_u64(obj, "schema_version")
}

impl StatsResponse {
    /// The wire form: field names and order exactly as the daemon emits.
    pub fn to_map(&self) -> Map {
        let mut phases = Map::new();
        for (name, ms) in &self.phases_ms {
            phases.insert(name.clone(), (*ms).to_json());
        }
        let mut latency = Map::new();
        for entry in &self.latency_us {
            let mut buckets = Map::new();
            for (bound, count) in &entry.le_us {
                buckets.insert(bound.clone(), (*count).to_json());
            }
            let mut e = Map::new();
            e.insert("count", entry.count.to_json());
            e.insert("le_us", Value::Object(buckets));
            latency.insert(entry.op.clone(), Value::Object(e));
        }
        let mut body = Map::new();
        body.insert("schema_version", self.schema_version.to_json());
        body.insert("requests", self.requests.to_json());
        body.insert("runs", self.runs.to_json());
        body.insert("hits", self.hits.to_json());
        body.insert("computations", self.computations.to_json());
        body.insert("deduped", self.deduped.to_json());
        body.insert("errors", self.errors.to_json());
        body.insert("panics", self.panics.to_json());
        body.insert("deadline_exceeded", self.deadline_exceeded.to_json());
        body.insert("overloaded", self.overloaded.to_json());
        body.insert("drain_refused", self.drain_refused.to_json());
        body.insert("warm_queued", self.warm_queued.to_json());
        body.insert("warm_computed", self.warm_computed.to_json());
        body.insert("warm_dropped", self.warm_dropped.to_json());
        body.insert("quarantined", self.quarantined.to_json());
        body.insert("mem_hits", self.mem_hits.to_json());
        body.insert("disk_hits", self.disk_hits.to_json());
        body.insert("mem_evictions", self.mem_evictions.to_json());
        body.insert("mem_bytes", self.mem_bytes.to_json());
        body.insert("mem_entries", self.mem_entries.to_json());
        body.insert("hit_rate", self.hit_rate.to_json());
        body.insert("inflight", self.inflight.to_json());
        body.insert("draining", Value::Bool(self.draining));
        body.insert("phases_ms", Value::Object(phases));
        body.insert("latency_us", Value::Object(latency));
        body
    }

    /// [`StatsResponse::to_map`] as a [`Value`].
    pub fn to_json(&self) -> Value {
        Value::Object(self.to_map())
    }

    /// Parse a `stats` body. Field presence and types are checked; extra
    /// fields (from a newer same-version daemon) are ignored.
    pub fn from_json(doc: &Value) -> Result<StatsResponse, String> {
        let obj = doc.as_object().ok_or("stats body must be an object")?;
        let mut phases_ms = Vec::new();
        for (name, v) in get_object(obj, "phases_ms")?.iter() {
            let ms = v
                .as_f64()
                .ok_or_else(|| format!("phase `{name}` must be a number"))?;
            phases_ms.push((name.clone(), ms));
        }
        let mut latency_us = Vec::new();
        for (op, v) in get_object(obj, "latency_us")?.iter() {
            let entry = v
                .as_object()
                .ok_or_else(|| format!("latency entry `{op}` must be an object"))?;
            let mut le_us = Vec::new();
            for (bound, count) in get_object(entry, "le_us")?.iter() {
                let count = count
                    .as_u64()
                    .ok_or_else(|| format!("bucket `{op}`/`{bound}` must be an integer"))?;
                le_us.push((bound.clone(), count));
            }
            latency_us.push(LatencyEntry {
                op: op.clone(),
                count: get_u64(entry, "count")?,
                le_us,
            });
        }
        Ok(StatsResponse {
            schema_version: get_version(obj)?,
            requests: get_u64(obj, "requests")?,
            runs: get_u64(obj, "runs")?,
            hits: get_u64(obj, "hits")?,
            computations: get_u64(obj, "computations")?,
            deduped: get_u64(obj, "deduped")?,
            errors: get_u64(obj, "errors")?,
            panics: get_u64(obj, "panics")?,
            deadline_exceeded: get_u64(obj, "deadline_exceeded")?,
            overloaded: get_u64(obj, "overloaded")?,
            drain_refused: get_u64(obj, "drain_refused")?,
            warm_queued: get_u64(obj, "warm_queued")?,
            warm_computed: get_u64(obj, "warm_computed")?,
            warm_dropped: get_u64(obj, "warm_dropped")?,
            quarantined: get_u64(obj, "quarantined")?,
            mem_hits: get_u64(obj, "mem_hits")?,
            disk_hits: get_u64(obj, "disk_hits")?,
            mem_evictions: get_u64(obj, "mem_evictions")?,
            mem_bytes: get_u64(obj, "mem_bytes")?,
            mem_entries: get_u64(obj, "mem_entries")?,
            hit_rate: get_f64(obj, "hit_rate")?,
            inflight: get_u64(obj, "inflight")?,
            draining: get_bool(obj, "draining")?,
            phases_ms,
            latency_us,
        })
    }
}

impl HealthResponse {
    /// The wire form: field names and order exactly as the daemon emits.
    pub fn to_map(&self) -> Map {
        let opt = |v: Option<u64>| match v {
            Some(n) => n.to_json(),
            None => Value::Null,
        };
        let mut body = Map::new();
        body.insert("schema_version", self.schema_version.to_json());
        body.insert("draining", Value::Bool(self.draining));
        body.insert("inflight", self.inflight.to_json());
        body.insert("active_requests", self.active_requests.to_json());
        body.insert("uptime_ms", self.uptime_ms.to_json());
        body.insert("quarantined", self.quarantined.to_json());
        body.insert("warm_queue_depth", self.warm_queue_depth.to_json());
        body.insert("warm_queued", self.warm_queued.to_json());
        body.insert("warm_computed", self.warm_computed.to_json());
        body.insert("warm_dropped", self.warm_dropped.to_json());
        body.insert("mem_hits", self.mem_hits.to_json());
        body.insert("disk_hits", self.disk_hits.to_json());
        body.insert("mem_evictions", self.mem_evictions.to_json());
        body.insert("mem_bytes", self.mem_bytes.to_json());
        body.insert("deadline_ms", opt(self.deadline_ms));
        body.insert("max_inflight", opt(self.max_inflight));
        body
    }

    /// [`HealthResponse::to_map`] as a [`Value`].
    pub fn to_json(&self) -> Value {
        Value::Object(self.to_map())
    }

    /// Parse a `health` body. Field presence and types are checked; extra
    /// fields (from a newer same-version daemon) are ignored.
    pub fn from_json(doc: &Value) -> Result<HealthResponse, String> {
        let obj = doc.as_object().ok_or("health body must be an object")?;
        Ok(HealthResponse {
            schema_version: get_version(obj)?,
            draining: get_bool(obj, "draining")?,
            inflight: get_u64(obj, "inflight")?,
            active_requests: get_u64(obj, "active_requests")?,
            uptime_ms: get_u64(obj, "uptime_ms")?,
            quarantined: get_u64(obj, "quarantined")?,
            warm_queue_depth: get_u64(obj, "warm_queue_depth")?,
            warm_queued: get_u64(obj, "warm_queued")?,
            warm_computed: get_u64(obj, "warm_computed")?,
            warm_dropped: get_u64(obj, "warm_dropped")?,
            mem_hits: get_u64(obj, "mem_hits")?,
            disk_hits: get_u64(obj, "disk_hits")?,
            mem_evictions: get_u64(obj, "mem_evictions")?,
            mem_bytes: get_u64(obj, "mem_bytes")?,
            deadline_ms: get_opt_u64(obj, "deadline_ms")?,
            max_inflight: get_opt_u64(obj, "max_inflight")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> StatsResponse {
        StatsResponse {
            schema_version: SCHEMA_VERSION,
            requests: 12,
            runs: 4,
            hits: 2,
            computations: 2,
            deduped: 1,
            errors: 0,
            panics: 0,
            deadline_exceeded: 0,
            overloaded: 3,
            drain_refused: 1,
            warm_queued: 5,
            warm_computed: 4,
            warm_dropped: 1,
            quarantined: 0,
            mem_hits: 2,
            disk_hits: 1,
            mem_evictions: 0,
            mem_bytes: 4096,
            mem_entries: 1,
            hit_rate: 0.5,
            inflight: 0,
            draining: false,
            phases_ms: vec![("nfi".to_string(), 1.25), ("ffi".to_string(), 0.5)],
            latency_us: vec![LatencyEntry {
                op: "run_compute".to_string(),
                count: 3,
                le_us: vec![("1024".to_string(), 2), ("inf".to_string(), 1)],
            }],
        }
    }

    fn sample_health(limits: bool) -> HealthResponse {
        HealthResponse {
            schema_version: SCHEMA_VERSION,
            draining: true,
            inflight: 1,
            active_requests: 2,
            uptime_ms: 1234,
            quarantined: 0,
            warm_queue_depth: 3,
            warm_queued: 5,
            warm_computed: 2,
            warm_dropped: 0,
            mem_hits: 7,
            disk_hits: 1,
            mem_evictions: 0,
            mem_bytes: 8192,
            deadline_ms: limits.then_some(1500),
            max_inflight: limits.then_some(4),
        }
    }

    #[test]
    fn stats_round_trips_through_the_wire_form_byte_identically() {
        let stats = sample_stats();
        let wire = serde_json::to_string(&stats.to_json()).unwrap();
        let parsed = StatsResponse::from_json(&serde_json::from_str(&wire).unwrap()).unwrap();
        assert_eq!(parsed, stats);
        // Re-serializing the parse reproduces the original bytes: names,
        // order and number formatting are all stable.
        assert_eq!(serde_json::to_string(&parsed.to_json()).unwrap(), wire);
    }

    #[test]
    fn health_round_trips_with_and_without_configured_limits() {
        for limits in [false, true] {
            let health = sample_health(limits);
            let wire = serde_json::to_string(&health.to_json()).unwrap();
            let parsed =
                HealthResponse::from_json(&serde_json::from_str(&wire).unwrap()).unwrap();
            assert_eq!(parsed, health);
            assert_eq!(serde_json::to_string(&parsed.to_json()).unwrap(), wire);
        }
    }

    #[test]
    fn missing_and_mistyped_fields_are_named_in_the_error() {
        let mut obj = sample_stats().to_map();
        obj.remove("runs");
        let err = StatsResponse::from_json(&Value::Object(obj)).unwrap_err();
        assert!(err.contains("runs"), "{err}");

        let mut obj = sample_health(true).to_map();
        obj.insert("uptime_ms", "soon".to_json());
        let err = HealthResponse::from_json(&Value::Object(obj)).unwrap_err();
        assert!(err.contains("uptime_ms"), "{err}");
    }

    #[test]
    fn wire_field_names_are_the_historical_ones() {
        // The pre-versioning daemon emitted exactly these keys in exactly
        // this order; `schema_version` is the only addition (leading).
        let stats_map = sample_stats().to_map();
        let stats_keys: Vec<&str> = stats_map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            stats_keys,
            [
                "schema_version", "requests", "runs", "hits", "computations", "deduped",
                "errors", "panics", "deadline_exceeded", "overloaded", "drain_refused",
                "warm_queued", "warm_computed", "warm_dropped", "quarantined", "mem_hits",
                "disk_hits", "mem_evictions", "mem_bytes", "mem_entries", "hit_rate",
                "inflight", "draining", "phases_ms", "latency_us"
            ]
        );
        let health_map = sample_health(true).to_map();
        let health_keys: Vec<&str> = health_map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            health_keys,
            [
                "schema_version", "draining", "inflight", "active_requests", "uptime_ms",
                "quarantined", "warm_queue_depth", "warm_queued", "warm_computed",
                "warm_dropped", "mem_hits", "disk_hits", "mem_evictions", "mem_bytes",
                "deadline_ms", "max_inflight"
            ]
        );
    }
}
