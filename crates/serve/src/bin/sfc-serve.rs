//! The `sfc-serve` daemon: answer experiment requests from the
//! content-addressed result cache.
//!
//! Two transports share one [`Server`] core:
//!
//! * `--socket PATH` — listen on a unix socket. Connections are served by
//!   a **fixed pool of `--workers` threads** (default: all cores) fed from
//!   a bounded accept queue; when every worker is busy and the queue is
//!   full, the overflow connection gets one typed `overloaded` +
//!   `retry_after_ms` line instead of unbounded thread growth. The accept
//!   loop blocks in `poll(2)` with a short timeout — a hot cache hit is no
//!   longer floor-bounded by an accept-loop sleep, while SIGTERM and
//!   `shutdown` are still noticed promptly.
//! * `--pipe` — JSON-lines over stdin/stdout (CI and scripting). Each
//!   request is handled on its own thread and responses are written as they
//!   complete, so two identical requests sent back-to-back exercise the
//!   same in-flight dedup path as two socket clients. Correlate responses
//!   by `id`.
//!
//! ## Lifecycle
//!
//! SIGTERM/SIGINT and the `shutdown` op both trigger a graceful drain: the
//! daemon stops accepting new work (connections accepted mid-drain get one
//! typed `error_kind: "draining"` refusal line), answers every request it
//! already accepted — bounded by `--deadline-ms` when set, 30 s otherwise —
//! flushes a final stats line to stderr, removes the socket file and exits
//! 0.
//!
//! ## Chaos hooks (test-only, deterministic)
//!
//! * `--chaos-compute-ms N` sleeps N ms before every computation, widening
//!   the in-flight window so dedup can be asserted deterministically.
//! * `--chaos-panic K` panics every K-th computation (contained; leader and
//!   followers get `error_kind: "compute_panic"`).
//! * `--chaos-disconnect K` drops every K-th connection-level response
//!   mid-write (socket mode), so client transport-retry paths can be
//!   exercised.

use serde_json::to_string;
use sfc_serve::{drain_refusal_line, LogLimiter, Server, ServerOptions};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// SIGTERM/SIGINT latch. The handler only stores to an atomic — the accept
/// loop polls it and runs the actual drain outside signal context.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Install the latch for SIGTERM and SIGINT. Uses libc `signal(2)`
    /// directly (declared here) to avoid a dependency; the handler is
    /// async-signal-safe (one atomic store).
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn term_requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// Minimal `poll(2)` binding for the accept loop. Declared here (like
/// `signal(2)` above) to avoid a libc dependency; the daemon is unix-only
/// already by virtue of `UnixListener`.
mod readiness {
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    /// Set in `revents` when the descriptor is not open: `poll(2)` returns
    /// *immediately* with this bit instead of blocking, which is exactly
    /// the case that must not be treated as a quiet timeout.
    const POLLNVAL: i16 = 0x020;
    /// `poll(2)` interrupted by a signal — a normal wakeup, not an error:
    /// the caller re-checks its SIGTERM latch and comes back around.
    const EINTR: i32 = 4;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Outcome of one readiness wait. The caller must distinguish a quiet
    /// timeout (just poll again) from a poll failure: failures return
    /// immediately, so treating them as "not readable" spins the accept
    /// loop at 100% CPU with no log line.
    #[derive(Debug)]
    pub enum Readiness {
        /// The descriptor is (probably) readable — try the accept.
        Readable,
        /// Nothing arrived within the timeout.
        TimedOut,
        /// A signal interrupted the wait before the timeout.
        Interrupted,
        /// `poll(2)` itself failed, or the descriptor is invalid.
        Failed(std::io::Error),
    }

    /// Block until `fd` is readable, `timeout` elapses, a signal arrives,
    /// or the poll fails.
    pub fn wait_readable(fd: i32, timeout: Duration) -> Readiness {
        let mut pfd = PollFd {
            fd,
            events: POLLIN,
            revents: 0,
        };
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let n = unsafe { poll(&mut pfd, 1, timeout_ms) };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            return if err.raw_os_error() == Some(EINTR) {
                Readiness::Interrupted
            } else {
                Readiness::Failed(err)
            };
        }
        if n == 0 {
            return Readiness::TimedOut;
        }
        if (pfd.revents & POLLNVAL) != 0 {
            return Readiness::Failed(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "poll: invalid listener descriptor (POLLNVAL)",
            ));
        }
        Readiness::Readable
    }
}

/// Default byte budget of the in-memory cache tier, in MiB.
const DEFAULT_CACHE_MEM_MB: u64 = 64;

struct Flags {
    cache: String,
    socket: Option<String>,
    pipe: bool,
    workers: usize,
    batch_workers: usize,
    warm_workers: usize,
    warm_queue: usize,
    cache_mem_mb: u64,
    chaos_compute_ms: u64,
    chaos_panic: Option<u64>,
    chaos_disconnect: Option<u64>,
    deadline_ms: Option<u64>,
    max_inflight: Option<usize>,
    trace: Option<String>,
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn usage() -> String {
    "usage: sfc-serve [--cache DIR] (--pipe | --socket PATH) [options]\n\
     \n\
     --cache DIR            content-addressed result cache directory (default: cache)\n\
     --cache-mem-mb N       in-memory cache tier byte budget in MiB (default 64; 0 disables)\n\
     --pipe                 serve JSON-lines requests on stdin/stdout\n\
     --socket PATH          listen on a unix socket at PATH\n\
     --workers N            connection worker threads, socket mode (default: all cores);\n\
                            overflow past the bounded accept queue answers `overloaded`\n\
     --batch-workers N      compute threads fanning out one `batch` request (default: all cores)\n\
     --warm-workers N       background cache-warmer threads (default 1; 0 disables `warm`)\n\
     --warm-queue N         bounded warm-queue capacity (default 256; overflow answers\n\
                            `warm_queue_full`)\n\
     --deadline-ms N        bound each request to N ms (expiry: error_kind deadline_exceeded)\n\
     --max-inflight N       refuse work beyond N concurrent computations (error_kind overloaded)\n\
     --trace PATH           write one JSONL span/event record per line to PATH, each stamped\n\
                            with the request_id echoed on the response it belongs to\n\
     --chaos-compute-ms N   sleep N ms before each computation (test hook)\n\
     --chaos-panic K        panic every K-th computation (test hook; contained)\n\
     --chaos-disconnect K   drop every K-th response mid-write, socket mode (test hook)\n"
        .to_string()
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags {
        cache: "cache".to_string(),
        socket: None,
        pipe: false,
        workers: default_workers(),
        batch_workers: 0,
        warm_workers: 1,
        warm_queue: 256,
        cache_mem_mb: DEFAULT_CACHE_MEM_MB,
        chaos_compute_ms: 0,
        chaos_panic: None,
        chaos_disconnect: None,
        deadline_ms: None,
        max_inflight: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse()
                .map_err(|_| format!("{name}: `{v}` is not a number"))
        };
        match arg.as_str() {
            "--cache" => {
                flags.cache = it.next().ok_or("--cache needs a directory")?;
            }
            "--socket" => {
                flags.socket = Some(it.next().ok_or("--socket needs a path")?);
            }
            "--pipe" => flags.pipe = true,
            "--workers" => {
                let n = num("--workers")? as usize;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                flags.workers = n;
            }
            "--batch-workers" => {
                let n = num("--batch-workers")? as usize;
                if n == 0 {
                    return Err("--batch-workers must be at least 1".to_string());
                }
                flags.batch_workers = n;
            }
            "--warm-workers" => flags.warm_workers = num("--warm-workers")? as usize,
            "--warm-queue" => {
                let n = num("--warm-queue")? as usize;
                if n == 0 {
                    return Err("--warm-queue must be at least 1".to_string());
                }
                flags.warm_queue = n;
            }
            "--cache-mem-mb" => flags.cache_mem_mb = num("--cache-mem-mb")?,
            "--chaos-compute-ms" => flags.chaos_compute_ms = num("--chaos-compute-ms")?,
            "--chaos-panic" => flags.chaos_panic = Some(num("--chaos-panic")?),
            "--chaos-disconnect" => flags.chaos_disconnect = Some(num("--chaos-disconnect")?),
            "--deadline-ms" => flags.deadline_ms = Some(num("--deadline-ms")?),
            "--max-inflight" => flags.max_inflight = Some(num("--max-inflight")? as usize),
            "--trace" => {
                flags.trace = Some(it.next().ok_or("--trace needs a path")?);
            }
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if flags.pipe == flags.socket.is_some() {
        return Err(format!(
            "exactly one of --pipe or --socket is required\n{}",
            usage()
        ));
    }
    if flags.chaos_panic == Some(0) {
        return Err("--chaos-panic: K must be at least 1".to_string());
    }
    if flags.chaos_disconnect == Some(0) {
        return Err("--chaos-disconnect: K must be at least 1".to_string());
    }
    Ok(flags)
}

/// How long a drain may take: every in-flight request is itself bounded by
/// the deadline when one is set, so wait a little longer than that; an
/// unbounded daemon gets a generous fixed cap.
fn drain_bound(flags: &Flags) -> Duration {
    match flags.deadline_ms {
        Some(ms) => Duration::from_millis(ms.saturating_mul(2).max(1_000)),
        None => Duration::from_secs(30),
    }
}

/// Wait until every accepted request has been answered and no computation
/// is in flight (or the bound expires), then flush the final stats line.
fn drain(server: &Server, bound: Duration) {
    server.begin_drain();
    eprintln!("# sfc-serve: draining ({} in flight)", server.inflight_len());
    let deadline = Instant::now() + bound;
    let mut quiet_polls = 0;
    while Instant::now() < deadline {
        if server.active_requests() == 0 && server.inflight_len() == 0 {
            // Settle a few polls: a request's response write happens inside
            // its active-token scope, but give the transport threads a
            // moment to observe the world anyway.
            quiet_polls += 1;
            if quiet_polls >= 3 {
                break;
            }
        } else {
            quiet_polls = 0;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    eprintln!("# sfc-serve: final stats {}", server.stats_line());
}

/// Pipe mode: one worker thread per request line, responses interleaved on
/// stdout as they complete (each as a single line, correlated by `id`).
fn serve_pipe(server: Arc<Server>) {
    signals::install();
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let server_for_worker = Arc::clone(&server);
        let stdout = Arc::clone(&stdout);
        let worker_stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let _active = server_for_worker.track_active();
            // Batch item lines stream through `emit` as they complete;
            // the stdout mutex keeps each line atomic against other
            // request threads.
            let mut emit = |doc: &serde_json::Value| {
                let text = to_string(doc).expect("serialize item response");
                let mut out = stdout.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                writeln!(out, "{text}").expect("write item response");
                out.flush().expect("flush item response");
            };
            let resp = server_for_worker.handle_line_with(&line, &mut emit);
            let text = to_string(&resp.doc).expect("serialize response");
            let mut out = stdout.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            writeln!(out, "{text}").expect("write response");
            out.flush().expect("flush response");
            if resp.shutdown {
                worker_stop.store(true, Ordering::SeqCst);
            }
        }));
        if stop.load(Ordering::SeqCst) || signals::term_requested() {
            break;
        }
    }
    for w in workers {
        let _ = w.join();
    }
    eprintln!("# sfc-serve: final stats {}", server.stats_line());
}

/// How long the accept loop blocks in `poll(2)` before re-checking the
/// SIGTERM latch and drain flag. A waiting connection wakes the loop
/// immediately — this is only the signal-latency bound, not a hit-latency
/// floor.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// One log line per distinct accept-error kind per this window; the rest
/// are counted and summarized (a persistent error like EMFILE used to
/// write ~100 identical lines a second).
const ACCEPT_LOG_WINDOW: Duration = Duration::from_secs(5);

/// Socket mode: a poll-based accept loop (so SIGTERM and `shutdown` are
/// noticed promptly without a sleep floor on hot accepts) feeding a
/// bounded queue of connections served by a fixed pool of `workers`
/// threads. Queue overflow answers one typed `overloaded` line with a
/// `retry_after_ms` hint, exactly like `--max-inflight`. Drain answers
/// what was accepted, refuses the rest, removes the socket file, and
/// exits 0.
fn serve_socket(
    server: Arc<Server>,
    path: &str,
    workers: usize,
    chaos_disconnect: Option<u64>,
    bound: Duration,
) {
    signals::install();
    // A previous daemon's socket file would make bind fail; the unix
    // convention is to remove it first (a live daemon still holds the
    // listening socket, so this only clears stale files).
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind `{path}`: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("error: cannot make `{path}` non-blocking: {e}");
        std::process::exit(2);
    }
    eprintln!("# sfc-serve: listening on {path} ({workers} worker(s))");
    let responses_written = Arc::new(AtomicU64::new(0));

    // The fixed worker pool: a bounded queue of accepted connections, one
    // slot of headroom per worker. Workers pull connections and serve them
    // to completion; the pool size — not the connection count — bounds the
    // daemon's thread count.
    let (queue, receiver) = sync_channel::<UnixStream>(workers * 2);
    let receiver: Arc<Mutex<Receiver<UnixStream>>> = Arc::new(Mutex::new(receiver));
    for _ in 0..workers {
        let server = Arc::clone(&server);
        let receiver = Arc::clone(&receiver);
        let counter = Arc::clone(&responses_written);
        std::thread::spawn(move || loop {
            // Hold the lock only for the recv itself: the next idle worker
            // can pull a connection while this one is still serving.
            let next = {
                let guard = receiver
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard.recv()
            };
            match next {
                Ok(stream) => {
                    serve_connection(
                        Arc::clone(&server),
                        stream,
                        chaos_disconnect,
                        Arc::clone(&counter),
                    );
                }
                Err(_) => return, // queue closed: daemon is exiting
            }
        });
    }

    let mut limiter = LogLimiter::new(ACCEPT_LOG_WINDOW);
    let fd = listener.as_raw_fd();
    loop {
        if signals::term_requested() || server.draining() {
            break;
        }
        let wait_started = Instant::now();
        match readiness::wait_readable(fd, ACCEPT_POLL) {
            readiness::Readiness::Readable => {}
            // A quiet timeout or signal wakeup: re-check the latch above.
            readiness::Readiness::TimedOut | readiness::Readiness::Interrupted => continue,
            readiness::Readiness::Failed(e) => {
                if let Some(suppressed) =
                    limiter.should_log(&format!("poll:{:?}", e.kind()), Instant::now())
                {
                    if suppressed > 0 {
                        eprintln!(
                            "# sfc-serve: poll failed: {e} ({suppressed} similar suppressed in the last {}s)",
                            ACCEPT_LOG_WINDOW.as_secs()
                        );
                    } else {
                        eprintln!("# sfc-serve: poll failed: {e}");
                    }
                }
                // Failures return immediately; sleep out the rest of the
                // poll interval so a persistent error (EBADF, POLLNVAL)
                // cannot busy-spin the loop.
                std::thread::sleep(ACCEPT_POLL.saturating_sub(wait_started.elapsed()));
                continue;
            }
        }
        match listener.accept() {
            Ok((stream, _addr)) => match queue.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut rejected)) => {
                    // Every worker is busy and the queue is full: refuse
                    // typed instead of queueing unboundedly, mirroring
                    // `--max-inflight`.
                    let _ = writeln!(rejected, "{}", server.overloaded_refusal_line());
                    let _ = rejected.flush();
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            // Raced another wakeup (or poll was spurious): just go around.
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => {
                if let Some(suppressed) = limiter.should_log(&format!("{:?}", e.kind()), Instant::now()) {
                    if suppressed > 0 {
                        eprintln!(
                            "# sfc-serve: accept failed: {e} ({suppressed} similar suppressed in the last {}s)",
                            ACCEPT_LOG_WINDOW.as_secs()
                        );
                    } else {
                        eprintln!("# sfc-serve: accept failed: {e}");
                    }
                }
                // Persistent errors (EMFILE and friends) must not spin the
                // loop; transient ones barely notice the pause.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Close the queue: idle workers exit; busy ones finish their current
    // connection (whose remaining requests the draining server answers
    // with typed refusals).
    drop(queue);
    // Drain: answer accepted work while refusing late connections with one
    // typed line each, then clean up the socket and exit 0.
    server.begin_drain();
    let refusals = std::thread::spawn({
        let server = Arc::clone(&server);
        move || {
            while server.active_requests() > 0 || server.inflight_len() > 0 {
                if let Ok((mut stream, _)) = listener.accept() {
                    let _ = writeln!(stream, "{}", drain_refusal_line());
                    let _ = stream.flush();
                } else {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    });
    drain(&server, bound);
    let _ = std::fs::remove_file(path);
    let _ = refusals.join();
}

/// Serve one socket connection. With `--chaos-disconnect K`, every K-th
/// response (counted across all connections) is cut off mid-write and the
/// connection dropped — deterministic fault injection for client retries.
fn serve_connection(
    server: Arc<Server>,
    stream: UnixStream,
    chaos_disconnect: Option<u64>,
    responses_written: Arc<AtomicU64>,
) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let active = server.track_active();
        // Batch item lines stream back as they complete. A client that
        // hangs up mid-batch is noticed here; the final response (and the
        // chaos-disconnect counter, which counts only final responses) is
        // skipped for it.
        let mut emit_failed = false;
        let resp = {
            let mut emit = |doc: &serde_json::Value| {
                if emit_failed {
                    return;
                }
                let text = to_string(doc).expect("serialize item response");
                emit_failed = writeln!(writer, "{text}")
                    .and_then(|()| writer.flush())
                    .is_err();
            };
            server.handle_line_with(&line, &mut emit)
        };
        if emit_failed {
            drop(active);
            return;
        }
        let text = to_string(&resp.doc).expect("serialize response");
        let n = responses_written.fetch_add(1, Ordering::SeqCst) + 1;
        if chaos_disconnect.is_some_and(|k| n.is_multiple_of(k)) {
            // Write half the response, then hang up: the client sees a
            // line that never terminates (a typed transport error on its
            // side), never a corrupted-but-plausible payload.
            let cut = text.len() / 2;
            let _ = writer.write_all(&text.as_bytes()[..cut]);
            let _ = writer.flush();
            let _ = writer.shutdown(std::net::Shutdown::Both);
            drop(active);
            return;
        }
        let write_failed = writeln!(writer, "{text}").and_then(|()| writer.flush()).is_err();
        drop(active);
        if write_failed {
            return;
        }
        if resp.shutdown {
            // The drain is already flagged on the server; the accept loop
            // notices and runs the drain. This connection is done.
            return;
        }
    }
}

fn main() {
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let opts = ServerOptions {
        chaos_compute_ms: flags.chaos_compute_ms,
        chaos_panic: flags.chaos_panic,
        deadline: flags.deadline_ms.map(Duration::from_millis),
        max_inflight: flags.max_inflight,
        cache_mem_bytes: flags.cache_mem_mb.saturating_mul(1024 * 1024),
        batch_workers: flags.batch_workers,
        warm_queue_cap: flags.warm_queue,
        trace_path: flags.trace.clone(),
    };
    let server = match Server::new(&flags.cache, opts) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!(
                "error: cannot open cache `{}` (or the trace file): {e}",
                flags.cache
            );
            std::process::exit(2);
        }
    };
    server.start_warmers(flags.warm_workers);
    let bound = drain_bound(&flags);
    if flags.pipe {
        serve_pipe(server);
    } else if let Some(path) = &flags.socket {
        serve_socket(server, path, flags.workers, flags.chaos_disconnect, bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_socket_with_pending_bytes_is_readable() {
        let (mut a, b) = UnixStream::pair().unwrap();
        a.write_all(b"x").unwrap();
        a.flush().unwrap();
        match readiness::wait_readable(b.as_raw_fd(), Duration::from_millis(500)) {
            readiness::Readiness::Readable => {}
            other => panic!("expected Readable, got {other:?}"),
        }
    }

    #[test]
    fn a_quiet_socket_times_out() {
        let (_a, b) = UnixStream::pair().unwrap();
        let started = Instant::now();
        match readiness::wait_readable(b.as_raw_fd(), Duration::from_millis(25)) {
            readiness::Readiness::TimedOut => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert!(
            started.elapsed() >= Duration::from_millis(20),
            "a timeout must actually block for (about) the timeout"
        );
    }

    #[test]
    fn an_invalid_descriptor_fails_instead_of_timing_out() {
        // A descriptor number nothing in this process has open: poll(2)
        // reports POLLNVAL *immediately*. Before the fix this surfaced as
        // "not readable" and the accept loop spun at 100% CPU; now it is a
        // distinguishable failure the loop logs and sleeps on.
        let started = Instant::now();
        match readiness::wait_readable(999_999, Duration::from_millis(500)) {
            readiness::Readiness::Failed(e) => {
                assert!(e.to_string().contains("POLLNVAL"), "unexpected error: {e}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "POLLNVAL returns immediately — that immediacy is why it must not \
             be conflated with a quiet timeout"
        );
    }
}
