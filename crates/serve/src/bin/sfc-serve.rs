//! The `sfc-serve` daemon: answer experiment requests from the
//! content-addressed result cache.
//!
//! Two transports share one [`Server`] core:
//!
//! * `--socket PATH` — listen on a unix socket; one thread per connection,
//!   so identical requests from different clients dedup into a single
//!   computation.
//! * `--pipe` — JSON-lines over stdin/stdout (CI and scripting). Each
//!   request is handled on its own thread and responses are written as they
//!   complete, so two identical requests sent back-to-back exercise the
//!   same in-flight dedup path as two socket clients. Correlate responses
//!   by `id`.
//!
//! `--chaos-compute-ms N` sleeps N milliseconds before every computation —
//! a test hook that widens the in-flight window so dedup can be asserted
//! deterministically.

use serde_json::to_string;
use sfc_serve::Server;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

struct Flags {
    cache: String,
    socket: Option<String>,
    pipe: bool,
    chaos_compute_ms: u64,
}

fn usage() -> String {
    "usage: sfc-serve [--cache DIR] (--pipe | --socket PATH) [--chaos-compute-ms N]\n\
     \n\
     --cache DIR            content-addressed result cache directory (default: cache)\n\
     --pipe                 serve JSON-lines requests on stdin/stdout\n\
     --socket PATH          listen on a unix socket at PATH\n\
     --chaos-compute-ms N   sleep N ms before each computation (test hook)\n"
        .to_string()
}

fn parse_flags() -> Result<Flags, String> {
    let mut flags = Flags {
        cache: "cache".to_string(),
        socket: None,
        pipe: false,
        chaos_compute_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache" => {
                flags.cache = it.next().ok_or("--cache needs a directory")?;
            }
            "--socket" => {
                flags.socket = Some(it.next().ok_or("--socket needs a path")?);
            }
            "--pipe" => flags.pipe = true,
            "--chaos-compute-ms" => {
                let v = it.next().ok_or("--chaos-compute-ms needs a value")?;
                flags.chaos_compute_ms = v
                    .parse()
                    .map_err(|_| format!("--chaos-compute-ms: `{v}` is not a number"))?;
            }
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if flags.pipe == flags.socket.is_some() {
        return Err(format!(
            "exactly one of --pipe or --socket is required\n{}",
            usage()
        ));
    }
    Ok(flags)
}

/// Pipe mode: one worker thread per request line, responses interleaved on
/// stdout as they complete (each as a single line, correlated by `id`).
fn serve_pipe(server: Arc<Server>) {
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let server = Arc::clone(&server);
        let stdout = Arc::clone(&stdout);
        let worker_stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let resp = server.handle_line(&line);
            let text = to_string(&resp.doc).expect("serialize response");
            let mut out = stdout.lock().expect("stdout lock");
            writeln!(out, "{text}").expect("write response");
            out.flush().expect("flush response");
            if resp.shutdown {
                worker_stop.store(true, Ordering::SeqCst);
            }
        }));
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Socket mode: accept loop, one thread per connection. A `shutdown`
/// request stops the whole daemon after its response is flushed.
fn serve_socket(server: Arc<Server>, path: &str) {
    // A previous daemon's socket file would make bind fail; the unix
    // convention is to remove it first (a live daemon still holds the
    // listening socket, so this only clears stale files).
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind `{path}`: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("# sfc-serve: listening on {path}");
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("# sfc-serve: accept failed: {e}");
                continue;
            }
        };
        let server = Arc::clone(&server);
        std::thread::spawn(move || serve_connection(server, stream));
    }
}

fn serve_connection(server: Arc<Server>, stream: UnixStream) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let resp = server.handle_line(&line);
        let text = to_string(&resp.doc).expect("serialize response");
        if writeln!(writer, "{text}").and_then(|()| writer.flush()).is_err() {
            return;
        }
        if resp.shutdown {
            std::process::exit(0);
        }
    }
}

fn main() {
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let server = match Server::new(&flags.cache, flags.chaos_compute_ms) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("error: cannot open cache `{}`: {e}", flags.cache);
            std::process::exit(2);
        }
    };
    if flags.pipe {
        serve_pipe(server);
    } else if let Some(path) = &flags.socket {
        serve_socket(server, path);
    }
}
