//! Minimal client for an `sfc-serve --socket` daemon: send one request per
//! trailing argument (or per stdin line when no arguments are given) and
//! print each response line to stdout.
//!
//! ```text
//! sfc-serve-client --socket /tmp/sfc.sock '{"op":"stats"}'
//! sfc-serve-client --socket /tmp/sfc.sock \
//!     '{"id":1,"op":"run","artifact":"table1","scale":5,"trials":1}'
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;

fn main() {
    let mut socket = None;
    let mut requests = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = it.next(),
            "--help" | "-h" => {
                println!("usage: sfc-serve-client --socket PATH [REQUEST_JSON...]");
                return;
            }
            _ => requests.push(arg),
        }
    }
    let Some(path) = socket else {
        eprintln!("error: --socket PATH is required");
        std::process::exit(2);
    };
    if requests.is_empty() {
        let mut text = String::new();
        if std::io::stdin().read_to_string(&mut text).is_err() {
            eprintln!("error: cannot read requests from stdin");
            std::process::exit(2);
        }
        requests = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect();
    }

    let stream = match UnixStream::connect(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot connect to `{path}`: {e}");
            std::process::exit(2);
        }
    };
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);
    for request in &requests {
        writeln!(writer, "{request}").expect("send request");
        writer.flush().expect("flush request");
        let mut response = String::new();
        if reader.read_line(&mut response).expect("read response") == 0 {
            eprintln!("error: daemon closed the connection");
            std::process::exit(1);
        }
        print!("{response}");
    }
}
