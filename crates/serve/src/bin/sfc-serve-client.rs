//! Client for an `sfc-serve --socket` daemon: send one request per trailing
//! argument (or per stdin line when no arguments are given) and print each
//! final response line to stdout.
//!
//! ```text
//! sfc-serve-client --socket /tmp/sfc.sock '{"op":"stats"}'
//! sfc-serve-client --socket /tmp/sfc.sock --retries 3 --timeout-ms 5000 \
//!     '{"id":1,"op":"run","artifact":"table1","scale":5,"trials":1}'
//! ```
//!
//! The client never hangs: reads and writes are bounded by `--timeout-ms`
//! (default 30000; 0 disables), and a connection that dies mid-response
//! (EOF before the newline) becomes a typed `error_kind: "transport"`
//! failure instead of a blocked `read_line`.
//!
//! With `--retries N`, failures whose `error_kind` is retryable per
//! `sfc_bench::harness::error_kind::is_retryable` (`overloaded`,
//! `compute_panic`, `transport`) are retried on a fresh connection with
//! exponential backoff and decorrelated jitter; when the daemon's refusal
//! carries a `retry_after_ms` hint the client sleeps the *larger* of the
//! hint and its own jitter. Non-retryable failures (`bad_request`,
//! `deadline_exceeded`, `draining`) are printed as-is.
//!
//! Exactly one line is printed per request: the daemon's final response, or
//! a synthesized `{"ok":false,"error_kind":"transport",...}` object when
//! the daemon never answered. Exit status: 0 when every request got a
//! daemon response (even `ok: false` ones), 1 when any request ended in a
//! synthesized transport failure, 2 on usage errors.
//!
//! `--batch-file PATH` wraps the file's JSON-object lines (shorthand run
//! fields or full canonical specs — the same shapes a `run` accepts) into
//! one `batch` request and prints every per-item line as it streams back,
//! then the `batch_done` summary. Batches are never retried: items already
//! served before a fault would be recomputed by a blind resend, so a
//! transport fault mid-stream synthesizes one transport line and exits 1,
//! leaving the retry decision to the caller. `--warm-file PATH` wraps the
//! same line format into one `warm` request, which flows through the
//! normal (retryable — `warm_queue_full` backs off and retries) path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{Map, ToJson, Value};
use sfc_bench::harness::error_kind;
use sfc_serve::response::{HealthResponse, StatsResponse, SCHEMA_VERSION};
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

const DEFAULT_TIMEOUT_MS: u64 = 30_000;
const BACKOFF_BASE_MS: u64 = 25;
const BACKOFF_CAP_MS: u64 = 2_000;

fn usage() -> String {
    "usage: sfc-serve-client --socket PATH [options] [REQUEST_JSON...]\n\
     \n\
     --socket PATH     daemon socket path (required)\n\
     --timeout-ms N    read/write timeout per attempt (default 30000; 0 = none)\n\
     --retries N       retry retryable failures up to N times (default 0)\n\
     --batch-file P    send P's JSON-object lines as one `batch` request and\n\
                       stream the per-item responses (never retried)\n\
     --warm-file P     send P's JSON-object lines as one `warm` request\n\
     \n\
     With no trailing request arguments (and neither file flag), requests\n\
     are read from stdin, one JSON object per line.\n"
        .to_string()
}

struct Flags {
    socket: String,
    timeout: Option<Duration>,
    retries: u64,
    batch_request: Option<String>,
    requests: Vec<String>,
}

/// Parse a warm/batch spec file: one JSON object per non-empty line —
/// either shorthand run fields (`{"artifact":"table1","scale":4}`) or a
/// full canonical spec as emitted by `sfc-bench --emit-specs`.
fn items_from_file(path: &str) -> Result<Vec<Value>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut items = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: not a JSON object: {e}", i + 1))?;
        if !matches!(doc, Value::Object(_)) {
            return Err(format!("{path}:{}: each line must be a JSON object", i + 1));
        }
        items.push(doc);
    }
    if items.is_empty() {
        return Err(format!("`{path}` contains no spec lines"));
    }
    Ok(items)
}

/// Wrap a spec file into one `{"op": <op>, "items": [...]}` request line.
fn file_request(op: &str, path: &str) -> Result<String, String> {
    let items = items_from_file(path)?;
    let mut doc = Map::new();
    doc.insert("id", (format!("{op}-file")).to_json());
    doc.insert("op", (op).to_json());
    doc.insert("items", Value::Array(items));
    Ok(serde_json::to_string(&Value::Object(doc)).expect("serialize file request"))
}

fn parse_flags() -> Result<Flags, String> {
    let mut socket = None;
    let mut timeout_ms = DEFAULT_TIMEOUT_MS;
    let mut retries = 0;
    let mut batch_file = None;
    let mut warm_file = None;
    let mut requests = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(it.next().ok_or("--socket needs a path")?),
            "--batch-file" => batch_file = Some(it.next().ok_or("--batch-file needs a path")?),
            "--warm-file" => warm_file = Some(it.next().ok_or("--warm-file needs a path")?),
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a value")?;
                timeout_ms = v
                    .parse()
                    .map_err(|_| format!("--timeout-ms: `{v}` is not a number"))?;
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                retries = v
                    .parse()
                    .map_err(|_| format!("--retries: `{v}` is not a number"))?;
            }
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            _ => requests.push(arg),
        }
    }
    let socket = socket.ok_or_else(|| format!("--socket PATH is required\n{}", usage()))?;
    if (batch_file.is_some() || warm_file.is_some()) && !requests.is_empty() {
        return Err("--batch-file/--warm-file cannot be combined with trailing requests".into());
    }
    if batch_file.is_some() && warm_file.is_some() {
        return Err("--batch-file and --warm-file are mutually exclusive".into());
    }
    let batch_request = match &batch_file {
        Some(path) => Some(file_request("batch", path)?),
        None => None,
    };
    if let Some(path) = &warm_file {
        requests.push(file_request("warm", path)?);
    }
    if requests.is_empty() && batch_request.is_none() {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read requests from stdin: {e}"))?;
        requests = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect();
    }
    Ok(Flags {
        socket,
        timeout: (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
        retries,
        batch_request,
        requests,
    })
}

/// A connection with bounded reads and writes. Reconnecting is the caller's
/// job (a failed exchange drops the whole connection).
struct Connection {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Connection {
    fn open(path: &str, timeout: Option<Duration>) -> Result<Connection, String> {
        let stream =
            UnixStream::connect(path).map_err(|e| format!("cannot connect to `{path}`: {e}"))?;
        stream
            .set_read_timeout(timeout)
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        stream
            .set_write_timeout(timeout)
            .map_err(|e| format!("cannot set write timeout: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone socket: {e}"))?,
        );
        Ok(Connection {
            writer: stream,
            reader,
        })
    }

    /// Send one request line and read one response line. Any transport
    /// fault — timeout, EOF before a newline, I/O error — is an `Err` with
    /// a human-readable reason; the connection must then be discarded.
    fn exchange(&mut self, request: &str) -> Result<String, String> {
        self.send(request)?;
        self.read_response_line()
    }

    fn send(&mut self, request: &str) -> Result<(), String> {
        writeln!(self.writer, "{request}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("write failed: {e}"))
    }

    /// Read one complete response line, mapping every transport fault to a
    /// human-readable reason.
    fn read_response_line(&mut self) -> Result<String, String> {
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err("timed out waiting for the response".to_string())
            }
            Err(e) => Err(format!("read failed: {e}")),
            Ok(0) => Err("daemon closed the connection before responding".to_string()),
            Ok(_) if !response.ends_with('\n') => {
                Err("connection dropped mid-response".to_string())
            }
            Ok(_) => Ok(response.trim_end().to_string()),
        }
    }
}

/// Decorrelated-jitter backoff (classic AWS recipe): each delay is drawn
/// from `[base, prev * 3]`, capped. Spreads concurrent retries apart
/// instead of letting them stampede in lockstep.
struct Backoff {
    rng: StdRng,
    prev_ms: u64,
}

impl Backoff {
    fn new(seed: u64) -> Backoff {
        Backoff {
            rng: StdRng::seed_from_u64(seed),
            prev_ms: BACKOFF_BASE_MS,
        }
    }

    fn next_delay(&mut self) -> Duration {
        let high = (self.prev_ms.saturating_mul(3)).clamp(BACKOFF_BASE_MS + 1, BACKOFF_CAP_MS);
        self.prev_ms = self.rng.gen_range(BACKOFF_BASE_MS..=high);
        Duration::from_millis(self.prev_ms)
    }
}

/// The `error_kind` of an `ok: false` response line plus the daemon's
/// `retry_after_ms` hint when it sent one (`overloaded` refusals do).
fn response_failure(line: &str) -> Option<(String, Option<u64>)> {
    let doc: Value = serde_json::from_str(line).ok()?;
    if doc.get("ok") == Some(&Value::Bool(false)) {
        let kind = doc
            .get("error_kind")
            .and_then(Value::as_str)
            .map(str::to_string)?;
        let hint = doc.get("retry_after_ms").and_then(Value::as_u64);
        Some((kind, hint))
    } else {
        None
    }
}

/// The delay before the next attempt: the larger of the daemon's
/// `retry_after_ms` hint and our own decorrelated jitter. The hint is the
/// daemon saying "don't come back sooner than this"; the jitter keeps
/// concurrent clients from stampeding back in lockstep the instant the
/// hint expires — ignoring either reintroduces the problem the other
/// solves.
fn retry_delay(hint_ms: Option<u64>, jitter: Duration) -> Duration {
    match hint_ms {
        Some(ms) => jitter.max(Duration::from_millis(ms)),
        None => jitter,
    }
}

/// Cross-check any `stats`/`health` body in a response line against the
/// versioned wire structs the daemon serializes ([`sfc_serve::response`]).
/// Returns a warning when the daemon speaks a different `schema_version`
/// than this client was built for, or when the body no longer parses as
/// the struct at all (renamed or missing fields). The response line is
/// printed verbatim either way — the warning goes to stderr so scripted
/// consumers of stdout are unaffected.
fn schema_drift_warning(line: &str) -> Option<String> {
    let doc: Value = serde_json::from_str(line).ok()?;
    if let Some(body) = doc.get("stats") {
        return match StatsResponse::from_json(body) {
            Ok(stats) if stats.schema_version != SCHEMA_VERSION => Some(format!(
                "daemon stats are schema v{}, this client expects v{SCHEMA_VERSION}",
                stats.schema_version
            )),
            Ok(_) => None,
            Err(e) => Some(format!(
                "stats body does not match schema v{SCHEMA_VERSION}: {e}"
            )),
        };
    }
    let body = doc.get("health")?;
    match HealthResponse::from_json(body) {
        Ok(health) if health.schema_version != SCHEMA_VERSION => Some(format!(
            "daemon health is schema v{}, this client expects v{SCHEMA_VERSION}",
            health.schema_version
        )),
        Ok(_) => None,
        Err(e) => Some(format!(
            "health body does not match schema v{SCHEMA_VERSION}: {e}"
        )),
    }
}

/// Synthesize the one-line transport failure printed when the daemon never
/// produced a (complete) response, echoing the request's `id` when it has
/// one so callers can still correlate.
fn transport_error_line(request: &str, reason: &str, attempts: u64) -> String {
    let id = serde_json::from_str::<Value>(request)
        .ok()
        .and_then(|doc| doc.get("id").cloned())
        .unwrap_or(Value::Null);
    let mut doc = Map::new();
    doc.insert("id", id);
    doc.insert("ok", Value::Bool(false));
    doc.insert("error_kind", error_kind::TRANSPORT.to_json());
    doc.insert("error", (reason).to_json());
    doc.insert("attempts", (attempts).to_json());
    serde_json::to_string(&Value::Object(doc)).expect("serialize transport error")
}

/// Run one request to completion: at most `1 + retries` attempts, retrying
/// only retryable kinds, reconnecting after transport faults. Returns the
/// line to print and whether the daemon ever answered.
fn run_request(
    conn: &mut Option<Connection>,
    flags: &Flags,
    backoff: &mut Backoff,
    request: &str,
) -> (String, bool) {
    let attempts = 1 + flags.retries;
    let mut last_transport_reason = String::new();
    let mut retry_hint_ms: Option<u64> = None;
    for attempt in 1..=attempts {
        if attempt > 1 {
            let delay = retry_delay(retry_hint_ms.take(), backoff.next_delay());
            eprintln!(
                "# client: attempt {attempt}/{attempts} after {}ms backoff",
                delay.as_millis()
            );
            std::thread::sleep(delay);
        }
        if conn.is_none() {
            match Connection::open(&flags.socket, flags.timeout) {
                Ok(c) => *conn = Some(c),
                Err(reason) => {
                    eprintln!("# client: {reason}");
                    last_transport_reason = reason;
                    continue;
                }
            }
        }
        let c = conn.as_mut().expect("connection just ensured");
        match c.exchange(request) {
            Ok(line) => match response_failure(&line) {
                Some((kind, hint)) if error_kind::is_retryable(&kind) && attempt < attempts => {
                    match hint {
                        Some(ms) => eprintln!(
                            "# client: daemon answered `{kind}` (retry_after_ms {ms}); retrying"
                        ),
                        None => eprintln!("# client: daemon answered `{kind}`; retrying"),
                    }
                    retry_hint_ms = hint;
                }
                _ => return (line, true),
            },
            Err(reason) => {
                eprintln!("# client: {reason}");
                *conn = None; // a failed exchange poisons the connection
                last_transport_reason = reason;
            }
        }
    }
    // Out of attempts. If the last attempt got a retryable *daemon* answer
    // we already returned it above (attempt == attempts falls through the
    // `_` arm), so reaching here means the final attempt was a transport
    // fault or a failed (re)connect.
    (
        transport_error_line(request, &last_transport_reason, attempts),
        false,
    )
}

/// Run one `batch` request, printing every streamed line (per-item
/// responses in completion order, then the `batch_done` summary) as it
/// arrives. Returns whether the stream completed. The stream ends at the
/// `batch_done` line, or at a whole-batch refusal — an `ok: false` line
/// with no `index` field (a refused *item* carries its index and the
/// stream continues).
fn run_batch_stream(flags: &Flags, request: &str) -> bool {
    let mut conn = match Connection::open(&flags.socket, flags.timeout) {
        Ok(c) => c,
        Err(reason) => {
            eprintln!("# client: {reason}");
            println!("{}", transport_error_line(request, &reason, 1));
            return false;
        }
    };
    if let Err(reason) = conn.send(request) {
        eprintln!("# client: {reason}");
        println!("{}", transport_error_line(request, &reason, 1));
        return false;
    }
    loop {
        let line = match conn.read_response_line() {
            Ok(l) => l,
            Err(reason) => {
                eprintln!("# client: {reason}");
                println!("{}", transport_error_line(request, &reason, 1));
                return false;
            }
        };
        println!("{line}");
        let doc: Option<Value> = serde_json::from_str(&line).ok();
        let finished = doc.as_ref().is_some_and(|d| {
            d.get("batch_done") == Some(&Value::Bool(true))
                || (d.get("ok") == Some(&Value::Bool(false)) && d.get("index").is_none())
        });
        if finished {
            return true;
        }
    }
}

fn main() {
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Some(request) = &flags.batch_request {
        if !run_batch_stream(&flags, request) {
            eprintln!("error: the batch stream did not complete");
            std::process::exit(1);
        }
        return;
    }
    // Seed the jitter off the pid: deterministic per process, decorrelated
    // across the concurrent clients a smoke test fires.
    let mut backoff = Backoff::new(u64::from(std::process::id()) ^ 0x5fc5_e12e);
    let mut conn: Option<Connection> = None;
    let mut transport_failures = 0u64;
    for request in &flags.requests {
        let (line, answered) = run_request(&mut conn, &flags, &mut backoff, request);
        println!("{line}");
        if let Some(warning) = schema_drift_warning(&line) {
            eprintln!("# client: {warning}");
        }
        if !answered {
            transport_failures += 1;
        }
    }
    if transport_failures > 0 {
        eprintln!("error: {transport_failures} request(s) got no daemon response");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_takes_the_daemon_hint_when_it_exceeds_the_jitter() {
        let jitter = Duration::from_millis(40);
        assert_eq!(
            retry_delay(Some(500), jitter),
            Duration::from_millis(500),
            "a hint above the jitter wins"
        );
    }

    #[test]
    fn retry_delay_keeps_the_jitter_when_the_hint_is_smaller_or_absent() {
        let jitter = Duration::from_millis(700);
        assert_eq!(
            retry_delay(Some(250), jitter),
            jitter,
            "a short hint never shrinks the jitter (that would stampede)"
        );
        assert_eq!(retry_delay(None, jitter), jitter);
    }

    #[test]
    fn response_failure_extracts_kind_and_retry_hint() {
        let line = r#"{"id":1,"ok":false,"error_kind":"overloaded","retry_after_ms":250}"#;
        assert_eq!(
            response_failure(line),
            Some(("overloaded".to_string(), Some(250)))
        );
        let no_hint = r#"{"id":2,"ok":false,"error_kind":"compute_panic"}"#;
        assert_eq!(
            response_failure(no_hint),
            Some(("compute_panic".to_string(), None))
        );
        assert_eq!(response_failure(r#"{"id":3,"ok":true}"#), None);
        assert_eq!(response_failure("not json"), None);
    }

    #[test]
    fn schema_drift_is_flagged_but_matching_bodies_pass_silently() {
        // A current-version body round-tripped through the struct passes.
        let stats = StatsResponse {
            schema_version: SCHEMA_VERSION,
            ..StatsResponse::default()
        };
        let mut doc = Map::new();
        doc.insert("id", Value::Null);
        doc.insert("ok", Value::Bool(true));
        doc.insert("stats", stats.to_json());
        let line = serde_json::to_string(&Value::Object(doc)).unwrap();
        assert_eq!(schema_drift_warning(&line), None);

        // A future daemon bumping the version draws a warning naming both
        // versions.
        let future = StatsResponse {
            schema_version: SCHEMA_VERSION + 1,
            ..StatsResponse::default()
        };
        let mut doc = Map::new();
        doc.insert("stats", future.to_json());
        let line = serde_json::to_string(&Value::Object(doc)).unwrap();
        let warning = schema_drift_warning(&line).expect("version bump warns");
        assert!(warning.contains(&format!("v{}", SCHEMA_VERSION + 1)), "{warning}");

        // A body that no longer parses (renamed field) warns too.
        let mut body = Map::new();
        body.insert("schema_version", SCHEMA_VERSION.to_json());
        let mut doc = Map::new();
        doc.insert("health", Value::Object(body));
        let line = serde_json::to_string(&Value::Object(doc)).unwrap();
        let warning = schema_drift_warning(&line).expect("missing fields warn");
        assert!(warning.contains("health body"), "{warning}");

        // Lines without a stats/health body are not the client's business.
        assert_eq!(schema_drift_warning(r#"{"id":1,"ok":true}"#), None);
        assert_eq!(schema_drift_warning("not json"), None);
    }
}
