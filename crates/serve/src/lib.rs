//! # sfc-serve
//!
//! A long-running daemon answering experiment requests from the
//! content-addressed result cache ([`sfc_core::ResultCache`]).
//!
//! Every artifact the workspace regenerates is a pure function of its
//! canonical [`ExperimentSpec`] and the kernel version, so a daemon can
//! memoize whole experiments: the first request for a spec computes it
//! (minutes of sweep cells), every repeat is answered from the cache with
//! byte-identical payloads, and identical requests that arrive *while* the
//! computation is still running are deduplicated into that single
//! computation instead of racing a second one.
//!
//! ## Protocol
//!
//! JSON-lines over a unix socket (`--socket PATH`) or over stdin/stdout
//! (`--pipe`, for CI and scripting). One request object per line, one
//! response object per line; in pipe mode responses may be emitted out of
//! request order, so correlate them with the echoed `id` field.
//!
//! ```json
//! {"id": 1, "op": "run", "artifact": "table1", "scale": 5, "trials": 1,
//!  "seed": 20130701, "format": "plain"}
//! {"id": 2, "op": "stats"}
//! {"id": 3, "op": "health"}
//! {"id": 4, "op": "shutdown"}
//! {"id": 5, "op": "batch", "defaults": {"artifact": "table1", "trials": 1},
//!  "items": [{"scale": 5}, {"scale": 6, "format": "json"}]}
//! {"id": 6, "op": "warm", "items": [{"artifact": "fig7", "scale": 5, "trials": 1}]}
//! {"id": 8, "op": "metrics"}
//! ```
//!
//! ## Observability
//!
//! Every response line carries a `request_id`: the client's own (echoed
//! verbatim when the request object names one) or a daemon-generated
//! identifier, with `batch` item lines tagged `<request_id>.<index>`. The
//! same identifier is stamped on every trace record the request produced,
//! so one grep of the trace file (`--trace PATH`, JSONL, one span or event
//! per line with monotonic `ts_us` timestamps) reconstructs a request's
//! timeline.
//!
//! All counters live in one [`MetricsRegistry`]; the `metrics` op renders
//! it as a Prometheus text-exposition page (in the `metrics` field of the
//! response), and the `stats`/`health` bodies are views of the same
//! registry shaped as the versioned structs in [`response`].
//!
//! A `run` response carries the requested payload stream (`format` is
//! `plain`, `markdown` or `json`) plus provenance: the cache `key`, whether
//! the answer was a cache `hit`, and whether the request was `deduped` into
//! an in-flight computation. A `run`-shaped object (standalone, or a
//! `batch`/`warm` item) may either use the shorthand above — `artifact`
//! plus optional `scale`/`trials`/`seed`, axes filled by
//! [`ExperimentSpec::for_artifact`] — or spell out a full canonical spec
//! (any axis key present), so `sfc-bench --emit-specs` output is directly
//! usable as items.
//!
//! A `batch` request fans its items (each the shallow merge of the
//! request-level `defaults` object and the item's own fields) over a
//! bounded internal pool and streams back **one response line per item**
//! in completion order, each tagged with the item's submission `index` and
//! otherwise identical to the equivalent standalone `run` response,
//! terminated by a `batch_done` summary line. A `warm` request enqueues
//! its items for the background warmer threads
//! ([`Server::start_warmers`]) and answers immediately; warmed artifacts
//! fill both cache tiers but are never sent anywhere.
//!
//! A `stats` response reports request counters,
//! the cache hit rate, the in-flight dedup count and the accumulated
//! per-phase kernel timings of everything this daemon computed. A `health`
//! response reports liveness (uptime, drain state, in-flight and active
//! request counts, quarantined cache entries, warm-queue depth).
//!
//! ## Fault isolation and overload behavior
//!
//! Degraded service fails *typed and loud*, never silently and never by
//! hanging. Every failure response is `ok: false` with an `error_kind` from
//! the shared taxonomy in [`sfc_bench::harness::error_kind`]:
//!
//! * a panicking computation is contained with `catch_unwind`; the leader
//!   *and* every follower deduplicated into it receive
//!   `error_kind: "compute_panic"` and the daemon keeps serving — an
//!   immediate re-request computes cleanly;
//! * a configured deadline ([`ServerOptions::deadline`]) bounds each
//!   request; expiry returns `error_kind: "deadline_exceeded"` and a
//!   computation that finishes after its requester's deadline is discarded,
//!   never cached;
//! * admission control ([`ServerOptions::max_inflight`]) refuses work
//!   beyond the bound with `error_kind: "overloaded"` and a
//!   `retry_after_ms` hint instead of queueing unboundedly;
//! * a draining daemon (SIGTERM or the `shutdown` op) answers everything it
//!   already accepted and refuses new work with `error_kind: "draining"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod response;

use response::{HealthResponse, LatencyEntry, StatsResponse, SCHEMA_VERSION};
use serde_json::{Map, ToJson, Value};
use sfc_bench::artifact::{compute, ComputeOpts};
use sfc_bench::harness::error_kind;
use sfc_bench::SweepArgs;
use sfc_core::cache::DEFAULT_MEM_SHARDS;
use sfc_core::obs::SampleValue;
use sfc_core::runner::{SweepRunner, SweepSummary};
use sfc_core::{
    ArtifactKind, CacheCounters, CachedArtifact, Counter, ExperimentSpec, Gauge, MetricsRegistry,
    ResultCache, SfcError, TierHit, TraceSink,
};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poisoning: a panic elsewhere (already
/// contained by `catch_unwind`) must not brick the daemon's counters or
/// in-flight table. All guarded state is simple bookkeeping that is valid
/// at every instruction boundary, so the recovered guard is safe to use.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Compute the full artifact for `spec` exactly as its binary would: same
/// banner, same body bytes, same JSON envelope. Returns the three cached
/// byte streams plus the sweep summary (for completeness and timings).
pub fn compute_artifact(spec: &ExperimentSpec) -> (CachedArtifact, SweepSummary) {
    let args = SweepArgs {
        scale: spec.scale,
        trials: spec.trials,
        seed: spec.seed,
        ..SweepArgs::default()
    };
    let banner = args.banner(spec.artifact.title());
    let mut runner = SweepRunner::ephemeral();
    let out = compute(spec, &ComputeOpts::default(), &mut runner);
    let summary = runner.finish();
    let doc = sfc_bench::results::envelope(spec.artifact.name(), spec, &summary, out.data);
    let artifact_json = serde_json::to_string_pretty(&doc).expect("serialize artifact");
    let artifact = CachedArtifact {
        stdout_plain: format!("{banner}\n{}", out.body_plain),
        stdout_markdown: format!("{banner}\n{}", out.body_markdown),
        artifact_json,
    };
    (artifact, summary)
}

/// Which byte stream of a cached artifact a `run` request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The plain-text stdout stream, banner included.
    Plain,
    /// The Markdown stdout stream, banner included.
    Markdown,
    /// The machine-readable JSON envelope (the `--json` payload).
    Json,
}

impl Format {
    fn parse(s: &str) -> Result<Format, String> {
        match s {
            "plain" => Ok(Format::Plain),
            "markdown" => Ok(Format::Markdown),
            "json" => Ok(Format::Json),
            other => Err(format!(
                "unknown format `{other}` (expected plain, markdown or json)"
            )),
        }
    }

    fn select(self, artifact: &CachedArtifact) -> &str {
        match self {
            Format::Plain => &artifact.stdout_plain,
            Format::Markdown => &artifact.stdout_markdown,
            Format::Json => &artifact.artifact_json,
        }
    }
}

/// One sub-request of a `batch` op: a resolved spec plus the payload
/// stream its response line should carry.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The resolved canonical spec.
    pub spec: Box<ExperimentSpec>,
    /// Which payload stream to return.
    pub format: Format,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run (or replay) the experiment a spec describes.
    Run {
        /// The resolved canonical spec (boxed: the spec dwarfs the other
        /// variants).
        spec: Box<ExperimentSpec>,
        /// Which payload stream to return.
        format: Format,
    },
    /// Run several specs as one request, streaming one response line per
    /// item (tagged with its submission `index`, in completion order)
    /// before a final `batch_done` summary line.
    Batch {
        /// The items, in submission order.
        items: Vec<BatchItem>,
    },
    /// Enqueue specs for the background warmer threads. Warming populates
    /// the cache tiers; it returns no payloads, so item `format` fields
    /// are ignored.
    Warm {
        /// The specs to warm, in submission order.
        specs: Vec<ExperimentSpec>,
    },
    /// Report daemon counters.
    Stats,
    /// Report daemon liveness (uptime, drain state, in-flight counts).
    Health,
    /// Render every registered metric as a Prometheus text-exposition
    /// page.
    Metrics,
    /// Stop accepting requests, answer what is in flight, and exit.
    Shutdown,
}

/// Parse the spec and format of one run-shaped object: a standalone `run`
/// request, or one `batch`/`warm` item merged over its request-level
/// defaults. Two spellings are accepted: the shorthand (`artifact` plus
/// optional `scale`/`trials`/`seed`, axes filled by
/// [`ExperimentSpec::for_artifact`] exactly as the binaries' flags would)
/// and a full canonical spec (any axis key present routes through
/// [`ExperimentSpec::from_json`]), so `sfc-bench --emit-specs` output is
/// usable verbatim.
fn parse_run_fields(obj: &Map) -> Result<(Box<ExperimentSpec>, Format), String> {
    let format = match obj.get("format") {
        None => Format::Plain,
        Some(v) => Format::parse(v.as_str().ok_or("`format` must be a string")?)?,
    };
    let spec = if ExperimentSpec::json_names_axes(obj) {
        ExperimentSpec::from_json(&Value::Object(obj.clone()))?
    } else {
        let name = obj
            .get("artifact")
            .and_then(Value::as_str)
            .ok_or("missing `artifact` field")?;
        let kind =
            ArtifactKind::parse(name).ok_or_else(|| format!("unknown artifact `{name}`"))?;
        let defaults = SweepArgs::default();
        let num = |key: &str, default: u64| -> Result<u64, String> {
            match obj.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
            }
        };
        let scale = num("scale", defaults.scale as u64)? as u32;
        let trials = num("trials", defaults.trials)?;
        let seed = num("seed", defaults.seed)?;
        ExperimentSpec::for_artifact(kind, scale, trials, seed)
    };
    spec.validate().map_err(|e| format!("invalid spec: {e}"))?;
    Ok((Box::new(spec), format))
}

/// Shallow-merge one `batch`/`warm` item's fields over the request-level
/// `defaults` object. Item keys win; neither input is mutated.
fn merge_over(defaults: &Map, item: &Map) -> Map {
    let mut merged = defaults.clone();
    for (k, v) in item.iter() {
        merged.insert(k.clone(), v.clone());
    }
    merged
}

/// Parse the `defaults` + `items` shape shared by `batch` and `warm`:
/// every item is the merge of the optional request-level `defaults` object
/// and its own fields. One malformed item fails the whole request — a
/// partial batch would silently drop work.
fn parse_items(op: &str, obj: &Map) -> Result<Vec<(Box<ExperimentSpec>, Format)>, String> {
    let empty = Map::new();
    let defaults = match obj.get("defaults") {
        None => &empty,
        Some(v) => v
            .as_object()
            .ok_or_else(|| format!("{op}: `defaults` must be an object"))?,
    };
    let items = obj
        .get("items")
        .ok_or_else(|| format!("{op}: missing `items` array"))?
        .as_array()
        .ok_or_else(|| format!("{op}: `items` must be an array"))?;
    if items.is_empty() {
        return Err(format!("{op}: `items` must not be empty"));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let overrides = item
                .as_object()
                .ok_or_else(|| format!("{op}: item {i} must be an object"))?;
            parse_run_fields(&merge_over(defaults, overrides))
                .map_err(|e| format!("{op}: item {i}: {e}"))
        })
        .collect()
}

impl Request {
    /// Parse one JSON request line. `scale`/`trials`/`seed` default to the
    /// binaries' flag defaults, so a request describes the same experiment
    /// the equivalent command line would. The middle tuple element is the
    /// client-supplied `request_id`, if the request object names one — the
    /// daemon echoes it instead of generating its own.
    pub fn parse(line: &str) -> Result<(Value, Option<String>, Request), String> {
        let doc: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
        let obj = doc.as_object().ok_or("request must be a JSON object")?;
        let id = obj.get("id").cloned().unwrap_or(Value::Null);
        let request_id = match obj.get("request_id") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("`request_id` must be a string")?
                    .to_string(),
            ),
        };
        let op = obj
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing `op` field")?;
        let req = match op {
            "stats" => Request::Stats,
            "health" => Request::Health,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            "run" => {
                let (spec, format) = parse_run_fields(obj).map_err(|e| format!("run: {e}"))?;
                Request::Run { spec, format }
            }
            "batch" => Request::Batch {
                items: parse_items("batch", obj)?
                    .into_iter()
                    .map(|(spec, format)| BatchItem { spec, format })
                    .collect(),
            },
            "warm" => Request::Warm {
                specs: parse_items("warm", obj)?
                    .into_iter()
                    .map(|(spec, _format)| *spec)
                    .collect(),
            },
            other => return Err(format!("unknown op `{other}`")),
        };
        Ok((id, request_id, req))
    }
}

/// The daemon's answer to one request line.
#[derive(Debug, Clone)]
pub struct Response {
    /// The JSON response document to write back as one line.
    pub doc: Value,
    /// Whether the connection/daemon should stop after this response.
    pub shutdown: bool,
}

/// One in-flight computation: followers block on the condvar until the
/// leader publishes the result — or their deadline expires.
struct Slot {
    result: Mutex<Option<RunOutcome>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Publish the leader's outcome and wake every follower. Publishing to
    /// a slot whose followers have all timed out is a no-op, never a panic.
    fn publish(&self, outcome: RunOutcome) {
        *lock_recover(&self.result) = Some(outcome);
        self.ready.notify_all();
    }

    /// Wait for the leader's outcome, bounded by `deadline`; `None` means
    /// the deadline expired first.
    fn wait_deadline(&self, deadline: Option<Instant>) -> Option<RunOutcome> {
        let mut guard = lock_recover(&self.result);
        loop {
            if let Some(outcome) = &*guard {
                return Some(outcome.clone());
            }
            match deadline {
                None => {
                    guard = self
                        .ready
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (g, _) = self
                        .ready
                        .wait_timeout(guard, d - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard = g;
                }
            }
        }
    }
}

/// What one leader computation produced: an artifact to serve (and possibly
/// cache), or a typed failure that leader and followers all report.
#[derive(Clone)]
enum RunOutcome {
    /// The artifact the run produced plus whether the sweep completed (an
    /// incomplete artifact is served but never cached).
    Ok {
        artifact: Arc<CachedArtifact>,
        complete: bool,
    },
    /// The computation failed (panicked, or outlived its deadline); nothing
    /// was cached.
    Failed {
        kind: &'static str,
        message: String,
    },
}

/// Accumulated kernel-phase time of every cell this daemon computed, in
/// microseconds, one series per phase name.
const PHASE_US: &str = "sfc_serve_phase_us_total";
const PHASE_US_HELP: &str = "Accumulated kernel-phase time of computed cells, in microseconds.";

/// Per-op request latency histograms (power-of-two µs buckets), one
/// series per label: `run_mem_hit` / `run_disk_hit` / `run_compute` /
/// `run_dedup` / `run_refused` plus `batch` / `warm` / `warm_refused` /
/// `stats` / `health` / `metrics` / `shutdown` / `bad_request`, and the
/// warmer-internal `warm_hit` / `warm_dedup` / `warm_compute`.
const OP_LATENCY_US: &str = "sfc_serve_op_latency_us";
const OP_LATENCY_US_HELP: &str = "Per-op request latency, in microseconds.";

/// The daemon's counter handles, registered once in the shared
/// [`MetricsRegistry`] at server construction. The handles *are* the
/// registry's storage (see [`sfc_core::obs`]), so the `stats` body, the
/// Prometheus page and the derived hit rate all read the same atomics —
/// there is no second copy to fall out of sync.
#[derive(Debug)]
struct ServeMetrics {
    requests: Counter,
    runs: Counter,
    hits: Counter,
    computations: Counter,
    deduped: Counter,
    errors: Counter,
    panics: Counter,
    deadline_exceeded: Counter,
    overloaded: Counter,
    drain_refused: Counter,
    warm_queued: Counter,
    warm_computed: Counter,
    warm_dropped: Counter,
    mem_bytes: Gauge,
    mem_entries: Gauge,
    inflight: Gauge,
    active_requests: Gauge,
    warm_queue_depth: Gauge,
    draining: Gauge,
    uptime_ms: Gauge,
}

impl ServeMetrics {
    fn registered(registry: &MetricsRegistry) -> ServeMetrics {
        let m = ServeMetrics {
            requests: registry.counter(
                "sfc_serve_requests_total",
                "Request lines handled, including malformed ones.",
            ),
            runs: registry.counter(
                "sfc_serve_runs_total",
                "Run requests admitted and served (the hit-rate denominator).",
            ),
            hits: registry.counter(
                "sfc_serve_hits_total",
                "Run requests answered from a cache tier.",
            ),
            computations: registry.counter(
                "sfc_serve_computations_total",
                "Leader computations that ran (complete or not).",
            ),
            deduped: registry.counter(
                "sfc_serve_deduped_total",
                "Run requests deduplicated into an in-flight computation.",
            ),
            errors: registry.counter(
                "sfc_serve_errors_total",
                "Failed computations (panicked or incomplete sweep).",
            ),
            panics: registry.counter(
                "sfc_serve_panics_total",
                "Computations that panicked and were contained.",
            ),
            deadline_exceeded: registry.counter(
                "sfc_serve_deadline_exceeded_total",
                "Requests whose deadline expired before an answer was ready.",
            ),
            overloaded: registry.counter(
                "sfc_serve_overloaded_total",
                "Requests refused by admission control.",
            ),
            drain_refused: registry.counter(
                "sfc_serve_drain_refused_total",
                "Requests refused because the daemon was draining.",
            ),
            warm_queued: registry.counter(
                "sfc_serve_warm_queued_total",
                "Warm items accepted into the background queue.",
            ),
            warm_computed: registry.counter(
                "sfc_serve_warm_computed_total",
                "Warm items whose computation completed.",
            ),
            warm_dropped: registry.counter(
                "sfc_serve_warm_dropped_total",
                "Warm items refused at enqueue or dropped by a drain.",
            ),
            mem_bytes: registry.gauge(
                "sfc_serve_mem_bytes",
                "Bytes held by the in-memory cache tier.",
            ),
            mem_entries: registry.gauge(
                "sfc_serve_mem_entries",
                "Entries held by the in-memory cache tier.",
            ),
            inflight: registry.gauge(
                "sfc_serve_inflight",
                "Computations currently in flight.",
            ),
            active_requests: registry.gauge(
                "sfc_serve_active_requests",
                "Requests currently being handled.",
            ),
            warm_queue_depth: registry.gauge(
                "sfc_serve_warm_queue_depth",
                "Warm items waiting in the background queue.",
            ),
            draining: registry.gauge("sfc_serve_draining", "1 while draining, else 0."),
            uptime_ms: registry.gauge(
                "sfc_serve_uptime_ms",
                "Milliseconds since the daemon started.",
            ),
        };
        // `hit_rate` is never stored: it is derived from the two counters
        // at render time, so it cannot drift from them.
        let (hits, runs) = (m.hits.clone(), m.runs.clone());
        registry.derived_gauge(
            "sfc_serve_hit_rate",
            "Cache hits per admitted run (hits_total / runs_total).",
            move || hit_rate(hits.get(), runs.get()),
        );
        m
    }
}

/// `hits / runs`, defined as 0.0 before the first admitted run.
fn hit_rate(hits: u64, runs: u64) -> f64 {
    if runs == 0 {
        0.0
    } else {
        hits as f64 / runs as f64
    }
}

/// Fault-tolerance and overload configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Test-only delay inserted before each computation, widening the
    /// in-flight window so CI can assert dedup deterministically
    /// (`--chaos-compute-ms`).
    pub chaos_compute_ms: u64,
    /// Deterministic fault injection: every K-th computation panics before
    /// doing any work (`--chaos-panic K`). The panic is contained and
    /// reported as `error_kind: "compute_panic"`.
    pub chaos_panic: Option<u64>,
    /// Per-request deadline (`--deadline-ms`): followers stop waiting and a
    /// leader's late result is discarded (never cached) once expired.
    pub deadline: Option<Duration>,
    /// Admission control (`--max-inflight N`): a request that would start
    /// computation number N+1 is refused with `error_kind: "overloaded"`
    /// and a `retry_after_ms` hint. Duplicates of an in-flight computation
    /// always dedup into it (they add no work).
    pub max_inflight: Option<usize>,
    /// Byte budget of the in-memory cache tier (`--cache-mem-mb`, in
    /// bytes). 0 disables the tier: every hit re-reads and re-verifies
    /// from disk.
    pub cache_mem_bytes: u64,
    /// Worker threads one `batch` request fans its items over
    /// (`--batch-workers`; 0 = all cores). Each batch gets its own scoped
    /// pool, additionally bounded by the batch's item count.
    pub batch_workers: usize,
    /// Capacity of the background warm queue (`--warm-queue`). `warm`
    /// items past it are refused with `error_kind: "warm_queue_full"`.
    pub warm_queue_cap: usize,
    /// Structured trace output (`--trace PATH`): one JSONL span or event
    /// record per line, each stamped with the `request_id` of the request
    /// that produced it. `None` disables tracing at zero cost.
    pub trace_path: Option<String>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            chaos_compute_ms: 0,
            chaos_panic: None,
            deadline: None,
            max_inflight: None,
            cache_mem_bytes: 0,
            batch_workers: 0,
            // A drained queue costs nothing, so the default is generous
            // enough for every artifact's full sweep grid.
            warm_queue_cap: 256,
            trace_path: None,
        }
    }
}

/// An RAII token counting one request currently being handled (including
/// writing its response). Transports hold one around `handle_line` plus the
/// response write so a draining daemon knows when every accepted request
/// has been fully answered.
pub struct ActiveRequest<'a>(&'a AtomicU64);

impl Drop for ActiveRequest<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The daemon core: a result cache, the in-flight dedup table and the
/// counters. Transport-independent — the socket and pipe front ends both
/// feed request lines to [`Server::handle_line`] from as many threads as
/// they like.
pub struct Server {
    cache: ResultCache,
    registry: Arc<MetricsRegistry>,
    m: ServeMetrics,
    trace: TraceSink,
    inflight: Mutex<HashMap<String, Arc<Slot>>>,
    /// Background warm backlog, drained by [`Server::start_warmers`]
    /// threads when no interactive work is active.
    warm_queue: Mutex<VecDeque<ExperimentSpec>>,
    /// Wakes idle warmer threads when warm work arrives (or a drain
    /// starts).
    warm_ready: Condvar,
    opts: ServerOptions,
    /// Set once by [`Server::begin_drain`]; `run` requests are refused from
    /// then on while `stats`/`health` stay answerable.
    draining: AtomicBool,
    /// Requests currently being handled (see [`Server::track_active`]).
    active: AtomicU64,
    /// Computations started (for `--chaos-panic` determinism).
    computations_started: AtomicU64,
    /// Source of generated request identifiers.
    rid_counter: AtomicU64,
    /// Distinguishes this server's generated request identifiers from
    /// other servers' (and other processes').
    rid_prefix: String,
    started: Instant,
}

/// Distinguishes servers within one process in [`Server::next_request_id`]
/// prefixes.
static SERVER_SEQ: AtomicU64 = AtomicU64::new(0);

impl Server {
    /// Open (or create) the cache directory and build a server around it.
    /// With a non-zero [`ServerOptions::cache_mem_bytes`] the cache gets
    /// an in-memory LRU tier in front of the disk entries. With
    /// [`ServerOptions::trace_path`] set, the trace file is created (or
    /// truncated) here.
    pub fn new(cache_dir: &str, opts: ServerOptions) -> std::io::Result<Server> {
        let registry = Arc::new(MetricsRegistry::new());
        let cache_counters = CacheCounters::registered(&registry, "sfc_serve");
        let m = ServeMetrics::registered(&registry);
        let trace = match &opts.trace_path {
            Some(path) => TraceSink::to_path(path)?,
            None => TraceSink::disabled(),
        };
        Ok(Server {
            cache: ResultCache::with_observability(
                cache_dir,
                opts.cache_mem_bytes,
                DEFAULT_MEM_SHARDS,
                cache_counters,
            )?,
            registry,
            m,
            trace,
            inflight: Mutex::new(HashMap::new()),
            warm_queue: Mutex::new(VecDeque::new()),
            warm_ready: Condvar::new(),
            opts,
            draining: AtomicBool::new(false),
            active: AtomicU64::new(0),
            computations_started: AtomicU64::new(0),
            rid_counter: AtomicU64::new(0),
            rid_prefix: format!(
                "r{:x}-{:x}",
                std::process::id(),
                SERVER_SEQ.fetch_add(1, Ordering::SeqCst)
            ),
            started: Instant::now(),
        })
    }

    /// A fresh daemon-generated request identifier, unique within this
    /// process.
    fn next_request_id(&self) -> String {
        format!(
            "{}-{}",
            self.rid_prefix,
            self.rid_counter.fetch_add(1, Ordering::SeqCst) + 1
        )
    }

    /// Stop accepting new `run` work. Idempotent. In-flight computations
    /// finish and are answered; `stats` and `health` keep working so drain
    /// progress is observable. The warm backlog is discarded — warm work
    /// is advisory and must never delay a drain — and counted as
    /// `warm_dropped`.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let dropped = lock_recover(&self.warm_queue).drain(..).count() as u64;
        if dropped > 0 {
            self.m.warm_dropped.add(dropped);
        }
        self.warm_ready.notify_all();
    }

    /// Whether [`Server::begin_drain`] has been called.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Requests currently being handled (tracked via
    /// [`Server::track_active`]).
    pub fn active_requests(&self) -> u64 {
        self.active.load(Ordering::SeqCst)
    }

    /// Computations currently in flight.
    pub fn inflight_len(&self) -> usize {
        lock_recover(&self.inflight).len()
    }

    /// Warm items waiting in the background queue.
    pub fn warm_queue_len(&self) -> usize {
        lock_recover(&self.warm_queue).len()
    }

    /// Count one request as being handled until the returned token drops.
    pub fn track_active(&self) -> ActiveRequest<'_> {
        self.active.fetch_add(1, Ordering::SeqCst);
        ActiveRequest(&self.active)
    }

    /// One JSON line of the current counters, for the final stats flush a
    /// draining daemon writes to stderr.
    pub fn stats_line(&self) -> String {
        serde_json::to_string(&Value::Object(self.stats_body())).expect("serialize stats")
    }

    /// Handle one request line, returning the response line to write back.
    /// Never panics on malformed input — errors become `ok: false`
    /// responses with a typed `error_kind`. Every line's wall time lands
    /// in the per-op latency histograms the `stats` op reports.
    ///
    /// A `batch` request's per-item lines are dropped on the floor here;
    /// use [`Server::handle_line_with`] when the transport can stream
    /// them.
    pub fn handle_line(&self, line: &str) -> Response {
        self.handle_line_with(line, &mut |_| {})
    }

    /// [`Server::handle_line`], streaming intermediate response lines
    /// through `emit` before the final response is returned: a `batch`
    /// request emits one document per item (in completion order) and
    /// returns the `batch_done` summary. Every other op never calls
    /// `emit`. Transports must write each emitted document as its own
    /// JSON line, in emission order, before the returned response.
    pub fn handle_line_with(&self, line: &str, emit: &mut dyn FnMut(&Value)) -> Response {
        let started = Instant::now();
        self.m.requests.inc();
        let (mut resp, op, rid) = self.dispatch(line, emit);
        let ok = resp.doc.get("ok") == Some(&Value::Bool(true));
        if let Value::Object(doc) = &mut resp.doc {
            doc.insert("request_id", rid.as_str().to_json());
        }
        self.record_latency(op, started.elapsed());
        self.trace
            .span(op, &rid, started.elapsed(), &[("ok", Value::Bool(ok))]);
        resp
    }

    /// Record one observation in the per-op latency histogram family.
    fn record_latency(&self, op: &str, elapsed: Duration) {
        self.registry
            .histogram(OP_LATENCY_US, OP_LATENCY_US_HELP, &[("op", op)])
            .record(elapsed);
    }

    /// Parse and answer one line, naming the latency-histogram label its
    /// wall time belongs to and the `request_id` stamped on the response
    /// and its trace records.
    fn dispatch(
        &self,
        line: &str,
        emit: &mut dyn FnMut(&Value),
    ) -> (Response, &'static str, String) {
        let (id, client_rid, req) = match Request::parse(line) {
            Ok(parsed) => parsed,
            Err(e) => {
                return (
                    typed_error(Value::Null, error_kind::BAD_REQUEST, &e, None),
                    "bad_request",
                    self.next_request_id(),
                )
            }
        };
        let rid = client_rid.unwrap_or_else(|| self.next_request_id());
        let (resp, op) = match req {
            Request::Run { spec, format } => self.run(id, &spec, format, &rid),
            Request::Batch { items } => self.run_batch(id, items, emit, &rid),
            Request::Warm { specs } => self.warm(id, specs),
            Request::Stats => (self.report_stats(id), "stats"),
            Request::Health => (self.report_health(id), "health"),
            Request::Metrics => (self.report_metrics(id), "metrics"),
            Request::Shutdown => {
                self.begin_drain();
                let mut doc = Map::new();
                doc.insert("id", id);
                doc.insert("ok", Value::Bool(true));
                doc.insert("shutting_down", Value::Bool(true));
                (
                    Response {
                        doc: Value::Object(doc),
                        shutdown: true,
                    },
                    "shutdown",
                )
            }
        };
        (resp, op, rid)
    }

    /// Answer a `run` request: memory-tier hit, verified disk hit, dedup
    /// into an in-flight computation, or compute (and populate both cache
    /// tiers) ourselves. The second tuple element is the latency label of
    /// the path taken.
    ///
    /// `runs` (the `hit_rate` denominator) counts only requests the daemon
    /// actually *served* — drain and overload refusals increment their own
    /// counters and nothing else, so a burst of refused traffic cannot
    /// deflate the hit rate.
    fn run(
        &self,
        id: Value,
        spec: &ExperimentSpec,
        format: Format,
        rid: &str,
    ) -> (Response, &'static str) {
        if self.draining() {
            self.m.drain_refused.inc();
            return (
                typed_error(
                    id,
                    error_kind::DRAINING,
                    "daemon is draining; not accepting new work",
                    None,
                ),
                "run_refused",
            );
        }
        let deadline = self.opts.deadline.map(|d| Instant::now() + d);
        let key = ResultCache::key(spec);

        if let Some((hit, tier)) = self.cache.load_tiered(spec) {
            self.m.runs.inc();
            self.m.hits.inc();
            let label = match tier {
                TierHit::Memory => "run_mem_hit",
                TierHit::Disk => "run_disk_hit",
            };
            return (
                run_response(id, spec, &key, format, &hit, true, false, true),
                label,
            );
        }

        let (slot, leader) = {
            let mut inflight = lock_recover(&self.inflight);
            match inflight.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    if let Some(max) = self.opts.max_inflight {
                        if inflight.len() >= max {
                            drop(inflight);
                            self.m.overloaded.inc();
                            return (
                                typed_error(
                                    id,
                                    error_kind::OVERLOADED,
                                    &format!(
                                        "{max} computation(s) already in flight (--max-inflight)"
                                    ),
                                    Some(self.retry_after_ms()),
                                ),
                                "run_refused",
                            );
                        }
                    }
                    let slot = Arc::new(Slot::new());
                    inflight.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        // Admitted (as leader or follower): this request will be served,
        // so it joins the hit-rate denominator.
        self.m.runs.inc();

        if !leader {
            self.m.deduped.inc();
            let resp = match slot.wait_deadline(deadline) {
                None => {
                    self.m.deadline_exceeded.inc();
                    typed_error(
                        id,
                        error_kind::DEADLINE_EXCEEDED,
                        "deadline expired while waiting for the in-flight computation",
                        None,
                    )
                }
                Some(RunOutcome::Ok { artifact, complete }) => {
                    run_response(id, spec, &key, format, &artifact, false, true, complete)
                }
                Some(RunOutcome::Failed { kind, message }) => {
                    typed_error(id, kind, &message, None)
                }
            };
            return (resp, "run_dedup");
        }

        let outcome = self.compute_as_leader(spec, deadline, rid);
        // Publish before unregistering: a request landing in between joins
        // as a follower and reads the published outcome immediately, while
        // one landing after becomes a fresh leader (so a request arriving
        // right after a panic recomputes cleanly).
        slot.publish(outcome.clone());
        lock_recover(&self.inflight).remove(&key);
        let resp = match outcome {
            RunOutcome::Ok { artifact, complete } => {
                run_response(id, spec, &key, format, &artifact, false, false, complete)
            }
            RunOutcome::Failed { kind, message } => typed_error(id, kind, &message, None),
        };
        (resp, "run_compute")
    }

    /// Answer a `batch` request: fan the items over a bounded scoped pool
    /// and stream each item's response line (tagged with its submission
    /// `index`) through `emit` in completion order, then return the
    /// `batch_done` summary. Every item goes through the same
    /// [`Server::run`] path as a standalone `run` — same cache tiers, same
    /// in-flight dedup slots, same per-item deadline, same counters — so
    /// its `payload` is byte-identical to the standalone response and two
    /// batches (or a batch racing single runs) dedup against each other.
    /// Each item line carries `request_id` `<rid>.<index>` — the batch's
    /// identifier suffixed with the item's submission index — and a trace
    /// span under that child identifier.
    fn run_batch(
        &self,
        id: Value,
        items: Vec<BatchItem>,
        emit: &mut dyn FnMut(&Value),
        rid: &str,
    ) -> (Response, &'static str) {
        let workers = match self.opts.batch_workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(items.len())
        .max(1);
        let total = items.len();
        let next = AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Response, &'static str, Duration)>();
        let mut ok_items = 0u64;
        let mut failed_items = 0u64;
        let mut hits = 0u64;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let items = &items;
                let id = &id;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        return;
                    }
                    let item = &items[i];
                    let started = Instant::now();
                    let child_rid = format!("{rid}.{i}");
                    let (resp, label) = self.run(id.clone(), &item.spec, item.format, &child_rid);
                    if tx.send((i, resp, label, started.elapsed())).is_err() {
                        return;
                    }
                });
            }
            drop(tx);
            // Stream each finished item as its own line the moment it
            // completes; a slow item never blocks a fast sibling's line.
            for (i, resp, label, elapsed) in rx {
                self.record_latency(label, elapsed);
                let ok = resp.doc.get("ok") == Some(&Value::Bool(true));
                if ok {
                    ok_items += 1;
                } else {
                    failed_items += 1;
                }
                if resp.doc.get("hit") == Some(&Value::Bool(true)) {
                    hits += 1;
                }
                let mut doc = match resp.doc {
                    Value::Object(m) => m,
                    other => {
                        // `run` always answers an object; keep the line
                        // well-formed even if that ever changes.
                        let mut m = Map::new();
                        m.insert("value", other);
                        m
                    }
                };
                doc.insert("index", (i as u64).to_json());
                let child_rid = format!("{rid}.{i}");
                doc.insert("request_id", child_rid.as_str().to_json());
                self.trace
                    .span(label, &child_rid, elapsed, &[("ok", Value::Bool(ok))]);
                emit(&Value::Object(doc));
            }
        });
        let mut doc = Map::new();
        doc.insert("id", id);
        doc.insert("ok", Value::Bool(true));
        doc.insert("batch_done", Value::Bool(true));
        doc.insert("items", (total as u64).to_json());
        doc.insert("ok_items", ok_items.to_json());
        doc.insert("failed_items", failed_items.to_json());
        doc.insert("hits", hits.to_json());
        (
            Response {
                doc: Value::Object(doc),
                shutdown: false,
            },
            "batch",
        )
    }

    /// Answer a `warm` request: enqueue each spec for the background
    /// warmer threads, up to [`ServerOptions::warm_queue_cap`]. Items past
    /// capacity are refused with `error_kind: "warm_queue_full"`
    /// (retryable: the queue drains in the background) and counted as
    /// `warm_dropped`; a draining daemon refuses the whole request.
    fn warm(&self, id: Value, specs: Vec<ExperimentSpec>) -> (Response, &'static str) {
        if self.draining() {
            self.m.drain_refused.inc();
            return (
                typed_error(
                    id,
                    error_kind::DRAINING,
                    "daemon is draining; not accepting warm work",
                    None,
                ),
                "warm_refused",
            );
        }
        let cap = self.opts.warm_queue_cap;
        let (queued, refused) = {
            let mut queue = lock_recover(&self.warm_queue);
            let mut queued = 0u64;
            let mut refused = 0u64;
            for spec in specs {
                if queue.len() >= cap {
                    refused += 1;
                } else {
                    queue.push_back(spec);
                    queued += 1;
                }
            }
            (queued, refused)
        };
        if queued > 0 {
            self.warm_ready.notify_all();
        }
        self.m.warm_queued.add(queued);
        self.m.warm_dropped.add(refused);
        if refused > 0 {
            let mut resp = typed_error(
                id,
                error_kind::WARM_QUEUE_FULL,
                &format!("warm queue full ({cap} slot(s)); {refused} item(s) refused"),
                Some(self.retry_after_ms()),
            );
            if let Value::Object(doc) = &mut resp.doc {
                doc.insert("queued", queued.to_json());
                doc.insert("refused", refused.to_json());
            }
            (resp, "warm_refused")
        } else {
            let mut doc = Map::new();
            doc.insert("id", id);
            doc.insert("ok", Value::Bool(true));
            doc.insert("queued", queued.to_json());
            (
                Response {
                    doc: Value::Object(doc),
                    shutdown: false,
                },
                "warm",
            )
        }
    }

    /// Spawn `n` detached warmer threads draining the warm queue for the
    /// life of the process. Warmers are strictly lower priority than
    /// interactive work: a popped item waits until no request is being
    /// handled and nothing is in flight before computing, dedups against
    /// the in-flight table and both cache tiers, and the whole backlog is
    /// discarded when a drain starts.
    pub fn start_warmers(self: &Arc<Self>, n: usize) {
        for _ in 0..n {
            let server = Arc::clone(self);
            std::thread::spawn(move || server.warm_loop());
        }
    }

    /// One warmer thread: pop, wait for idleness, warm, repeat — until the
    /// daemon drains.
    fn warm_loop(&self) {
        loop {
            let spec = {
                let mut queue = lock_recover(&self.warm_queue);
                loop {
                    if self.draining() {
                        return;
                    }
                    if let Some(spec) = queue.pop_front() {
                        break spec;
                    }
                    // The timeout is a liveness backstop (a drain that
                    // raced the notify); warm arrivals wake us directly.
                    let (q, _) = self
                        .warm_ready
                        .wait_timeout(queue, Duration::from_millis(100))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    queue = q;
                }
            };
            // Low priority: only compute when interactive work has left
            // the daemon idle. Polling is cheap next to a computation and
            // keeps warmers completely out of every request path.
            while !self.draining()
                && (self.active_requests() > 0 || self.inflight_len() > 0)
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            if self.draining() {
                // Popped but never computed: account it with the backlog
                // the drain discarded.
                self.m.warm_dropped.inc();
                continue;
            }
            self.warm_one(&spec);
        }
    }

    /// Warm one spec: skip when either cache tier already holds it
    /// (`warm_hit` — the probe itself promotes a disk entry into the
    /// memory tier) or an identical computation is in flight
    /// (`warm_dedup`); otherwise register a slot and compute exactly like
    /// a leader, so interactive requests arriving mid-warm dedup into the
    /// warmer's computation. Failures are contained by the leader path and
    /// only ever visible in the stats — warming answers nobody.
    fn warm_one(&self, spec: &ExperimentSpec) {
        let started = Instant::now();
        let key = ResultCache::key(spec);
        // Background computations answer no request line, so they get
        // their own generated request identifiers for the trace.
        let rid = self.next_request_id();
        if self.cache.load_tiered(spec).is_some() {
            self.record_latency("warm_hit", started.elapsed());
            self.trace.span("warm_hit", &rid, started.elapsed(), &[]);
            return;
        }
        let slot = {
            let mut inflight = lock_recover(&self.inflight);
            if inflight.contains_key(&key) {
                None
            } else {
                let slot = Arc::new(Slot::new());
                inflight.insert(key.clone(), Arc::clone(&slot));
                Some(slot)
            }
        };
        let Some(slot) = slot else {
            self.record_latency("warm_dedup", started.elapsed());
            self.trace.span("warm_dedup", &rid, started.elapsed(), &[]);
            return;
        };
        let outcome = self.compute_as_leader(spec, None, &rid);
        // Same publish-before-unregister ordering as `run`: followers that
        // joined mid-warm read the published outcome.
        slot.publish(outcome.clone());
        lock_recover(&self.inflight).remove(&key);
        if matches!(outcome, RunOutcome::Ok { .. }) {
            self.m.warm_computed.inc();
        }
        self.record_latency("warm_compute", started.elapsed());
        self.trace.span("warm_compute", &rid, started.elapsed(), &[]);
    }

    /// Run one leader computation under `catch_unwind`, so a panicking
    /// kernel produces a typed outcome for the slot instead of killing this
    /// thread and stranding every follower on the condvar.
    fn compute_as_leader(
        &self,
        spec: &ExperimentSpec,
        deadline: Option<Instant>,
        rid: &str,
    ) -> RunOutcome {
        let n = self.computations_started.fetch_add(1, Ordering::SeqCst) + 1;
        let chaos_panic = self.opts.chaos_panic.is_some_and(|k| k > 0 && n.is_multiple_of(k));
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.opts.chaos_compute_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.opts.chaos_compute_ms));
            }
            if chaos_panic {
                panic!("chaos-panic injection (computation {n})");
            }
            compute_artifact(spec)
        }));
        match result {
            Ok((artifact, summary)) => {
                let complete = summary.complete();
                self.m.computations.inc();
                if !complete {
                    self.m.errors.inc();
                }
                self.absorb_phases(&summary);
                self.trace.span(
                    "compute",
                    rid,
                    started.elapsed(),
                    &[
                        ("artifact", spec.artifact.name().to_json()),
                        ("complete", Value::Bool(complete)),
                    ],
                );
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    // The computation outlived the request that asked for
                    // it. Per the purity contract a deadline-expired
                    // request leaves no cache entry, so the late result is
                    // discarded rather than stored.
                    self.m.deadline_exceeded.inc();
                    self.trace.event("late_result_discarded", rid, &[]);
                    return RunOutcome::Failed {
                        kind: error_kind::DEADLINE_EXCEEDED,
                        message: "computation finished after the request deadline; result discarded"
                            .to_string(),
                    };
                }
                if complete {
                    if let Err(e) = self.cache.store(spec, &artifact) {
                        eprintln!(
                            "# serve: cache store failed for {}: {e}",
                            ResultCache::key(spec)
                        );
                    }
                }
                RunOutcome::Ok {
                    artifact: Arc::new(artifact),
                    complete,
                }
            }
            Err(payload) => {
                let error = SfcError::ComputePanicked {
                    message: panic_message(payload.as_ref()),
                };
                self.m.panics.inc();
                self.m.errors.inc();
                self.trace.span(
                    "compute",
                    rid,
                    started.elapsed(),
                    &[
                        ("artifact", spec.artifact.name().to_json()),
                        ("panicked", Value::Bool(true)),
                    ],
                );
                RunOutcome::Failed {
                    kind: error_kind::COMPUTE_PANIC,
                    message: error.to_string(),
                }
            }
        }
    }

    /// Fold one sweep's per-cell phase timings into the labeled
    /// [`PHASE_US`] counter family.
    fn absorb_phases(&self, summary: &SweepSummary) {
        for (_cell, timing) in &summary.timings {
            for (name, ms) in &timing.phases {
                let us = (ms * 1000.0).round() as u64;
                self.registry
                    .counter_labeled(PHASE_US, PHASE_US_HELP, &[("phase", name)])
                    .add(us);
            }
        }
    }

    /// The `retry_after_ms` hint attached to `overloaded` and
    /// `warm_queue_full` refusals, scaled with current load.
    fn retry_after_ms(&self) -> u64 {
        retry_after_hint(self.opts.chaos_compute_ms, self.inflight_len() as u64)
    }

    /// The one-line `overloaded` refusal the socket front end writes to a
    /// connection its bounded accept queue cannot take — same shape (and
    /// `retry_after_ms` hint) as a `--max-inflight` refusal, and counted
    /// in the same `overloaded` stat.
    pub fn overloaded_refusal_line(&self) -> String {
        self.m.overloaded.inc();
        let resp = typed_error(
            Value::Null,
            error_kind::OVERLOADED,
            "accept queue full; all workers busy",
            Some(self.retry_after_ms()),
        );
        serde_json::to_string(&resp.doc).expect("serialize refusal")
    }

    /// The typed `stats` body, read straight from the registry handles —
    /// the same atomics the Prometheus page renders.
    pub fn stats_response(&self) -> StatsResponse {
        let mem = self.cache.mem_stats();
        let m = &self.m;
        let mut phases_ms = Vec::new();
        if let Some(fam) = self.registry.family_snapshot(PHASE_US) {
            for series in &fam.series {
                if let (Some(name), SampleValue::Uint(us)) = (series.label("phase"), &series.value)
                {
                    phases_ms.push((name.to_string(), *us as f64 / 1000.0));
                }
            }
        }
        let mut latency_us = Vec::new();
        if let Some(fam) = self.registry.family_snapshot(OP_LATENCY_US) {
            for series in &fam.series {
                if let (Some(op), SampleValue::Histo(hist)) = (series.label("op"), &series.value) {
                    let le_us = hist
                        .nonzero_buckets()
                        .into_iter()
                        .map(|(bound, count)| {
                            let label = if bound == u64::MAX {
                                "inf".to_string()
                            } else {
                                bound.to_string()
                            };
                            (label, count)
                        })
                        .collect();
                    latency_us.push(LatencyEntry {
                        op: op.to_string(),
                        count: hist.count(),
                        le_us,
                    });
                }
            }
        }
        StatsResponse {
            schema_version: SCHEMA_VERSION,
            requests: m.requests.get(),
            runs: m.runs.get(),
            hits: m.hits.get(),
            computations: m.computations.get(),
            deduped: m.deduped.get(),
            errors: m.errors.get(),
            panics: m.panics.get(),
            deadline_exceeded: m.deadline_exceeded.get(),
            overloaded: m.overloaded.get(),
            drain_refused: m.drain_refused.get(),
            warm_queued: m.warm_queued.get(),
            warm_computed: m.warm_computed.get(),
            warm_dropped: m.warm_dropped.get(),
            quarantined: self.cache.quarantined(),
            mem_hits: mem.mem_hits,
            disk_hits: mem.disk_hits,
            mem_evictions: mem.mem_evictions,
            mem_bytes: mem.mem_bytes,
            mem_entries: mem.mem_entries,
            hit_rate: hit_rate(m.hits.get(), m.runs.get()),
            inflight: self.inflight_len() as u64,
            draining: self.draining(),
            phases_ms,
            latency_us,
        }
    }

    /// The counters shared by the `stats` op and the final drain flush.
    fn stats_body(&self) -> Map {
        self.stats_response().to_map()
    }

    /// Answer a `stats` request from the counters.
    fn report_stats(&self, id: Value) -> Response {
        let mut doc = Map::new();
        doc.insert("id", id);
        doc.insert("ok", Value::Bool(true));
        doc.insert("stats", self.stats_response().to_json());
        Response {
            doc: Value::Object(doc),
            shutdown: false,
        }
    }

    /// The typed `health` body: liveness, drain state and load.
    pub fn health_response(&self) -> HealthResponse {
        let mem = self.cache.mem_stats();
        HealthResponse {
            schema_version: SCHEMA_VERSION,
            draining: self.draining(),
            inflight: self.inflight_len() as u64,
            active_requests: self.active_requests(),
            uptime_ms: (self.started.elapsed().as_secs_f64() * 1e3) as u64,
            quarantined: self.cache.quarantined(),
            warm_queue_depth: self.warm_queue_len() as u64,
            warm_queued: self.m.warm_queued.get(),
            warm_computed: self.m.warm_computed.get(),
            warm_dropped: self.m.warm_dropped.get(),
            mem_hits: mem.mem_hits,
            disk_hits: mem.disk_hits,
            mem_evictions: mem.mem_evictions,
            mem_bytes: mem.mem_bytes,
            deadline_ms: self.opts.deadline.map(|d| d.as_millis() as u64),
            max_inflight: self.opts.max_inflight.map(|n| n as u64),
        }
    }

    /// Answer a `health` request.
    fn report_health(&self, id: Value) -> Response {
        let mut doc = Map::new();
        doc.insert("id", id);
        doc.insert("ok", Value::Bool(true));
        doc.insert("health", self.health_response().to_json());
        Response {
            doc: Value::Object(doc),
            shutdown: false,
        }
    }

    /// Refresh the point-in-time gauges, then render every registered
    /// metric as a Prometheus text-exposition page (version 0.0.4).
    pub fn metrics_text(&self) -> String {
        let mem = self.cache.mem_stats();
        self.m.mem_bytes.set(mem.mem_bytes);
        self.m.mem_entries.set(mem.mem_entries);
        self.m.inflight.set(self.inflight_len() as u64);
        self.m.active_requests.set(self.active_requests());
        self.m.warm_queue_depth.set(self.warm_queue_len() as u64);
        self.m.draining.set(u64::from(self.draining()));
        self.m
            .uptime_ms
            .set((self.started.elapsed().as_secs_f64() * 1e3) as u64);
        self.registry.render_prometheus()
    }

    /// Answer a `metrics` request: the Prometheus page as one string
    /// field (the JSON-lines protocol frames it; an HTTP scraper bridge
    /// only has to unwrap `metrics` and serve it with the advertised
    /// `content_type`).
    fn report_metrics(&self, id: Value) -> Response {
        let mut doc = Map::new();
        doc.insert("id", id);
        doc.insert("ok", Value::Bool(true));
        doc.insert("content_type", "text/plain; version=0.0.4".to_json());
        doc.insert("metrics", self.metrics_text().to_json());
        Response {
            doc: Value::Object(doc),
            shutdown: false,
        }
    }
}

/// Rate limiter for repeated error log lines, keyed by an error-kind
/// string: the first occurrence of a kind logs immediately, repeats inside
/// the window are suppressed (and counted), and the first occurrence after
/// the window logs again carrying the suppressed count. A persistent
/// accept-loop error thus costs one stderr line per window instead of
/// ~100/s.
pub struct LogLimiter {
    window: Duration,
    /// `(kind, last logged, suppressed since then)`, first-use order — the
    /// distinct-kind population is tiny (I/O error kinds).
    seen: Vec<(String, Instant, u64)>,
}

impl LogLimiter {
    /// A limiter allowing one line per error kind per `window`.
    pub fn new(window: Duration) -> LogLimiter {
        LogLimiter {
            window,
            seen: Vec::new(),
        }
    }

    /// Report one occurrence of `kind` at `now`. `Some(n)` means the
    /// caller should log it, where `n` is how many occurrences of the same
    /// kind were suppressed since the last logged line; `None` means stay
    /// quiet.
    pub fn should_log(&mut self, kind: &str, now: Instant) -> Option<u64> {
        match self.seen.iter_mut().find(|(k, _, _)| k == kind) {
            None => {
                self.seen.push((kind.to_string(), now, 0));
                Some(0)
            }
            Some((_, last, suppressed)) => {
                if now.duration_since(*last) >= self.window {
                    let n = *suppressed;
                    *last = now;
                    *suppressed = 0;
                    Some(n)
                } else {
                    *suppressed += 1;
                    None
                }
            }
        }
    }
}

/// The one-line refusal a draining daemon writes to connections it will not
/// serve (used by the socket front end for connections accepted mid-drain).
pub fn drain_refusal_line() -> String {
    let resp = typed_error(
        Value::Null,
        error_kind::DRAINING,
        "daemon is draining; connection refused",
        None,
    );
    serde_json::to_string(&resp.doc).expect("serialize refusal")
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Build a `run` response document.
#[allow(clippy::too_many_arguments)]
fn run_response(
    id: Value,
    spec: &ExperimentSpec,
    key: &str,
    format: Format,
    artifact: &CachedArtifact,
    hit: bool,
    deduped: bool,
    complete: bool,
) -> Response {
    let mut doc = Map::new();
    doc.insert("id", id);
    doc.insert("ok", Value::Bool(true));
    doc.insert("artifact", (spec.artifact.name()).to_json());
    doc.insert("key", (key).to_json());
    doc.insert("hit", Value::Bool(hit));
    doc.insert("deduped", Value::Bool(deduped));
    doc.insert("complete", Value::Bool(complete));
    doc.insert("payload", (format.select(artifact)).to_json());
    Response {
        doc: Value::Object(doc),
        shutdown: false,
    }
}

/// The retry hint for a refusal issued when the daemon already has
/// `depth` computations in flight. A loaded daemon pushes refused clients
/// further out instead of re-synchronizing the whole herd onto a constant
/// 250 ms beat: the hint grows linearly with depth from a base of one
/// expected computation time (the chaos delay when one is set, 250 ms
/// floor otherwise), capped at 10 s so an extreme backlog still retries
/// within a human-scale pause. Clients add their own jitter on top.
fn retry_after_hint(chaos_compute_ms: u64, depth: u64) -> u64 {
    let base = chaos_compute_ms.max(250);
    base.saturating_mul(depth + 1).min(base.max(10_000))
}

/// Build an `ok: false` response document carrying a typed `error_kind`
/// (and, for `overloaded`, the `retry_after_ms` hint).
fn typed_error(id: Value, kind: &str, message: &str, retry_after_ms: Option<u64>) -> Response {
    let mut doc = Map::new();
    doc.insert("id", id);
    doc.insert("ok", Value::Bool(false));
    doc.insert("error_kind", (kind).to_json());
    doc.insert("error", (message).to_json());
    if let Some(ms) = retry_after_ms {
        doc.insert("retry_after_ms", (ms).to_json());
    }
    Response {
        doc: Value::Object(doc),
        shutdown: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("sfc-serve-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    fn server(name: &str, opts: ServerOptions) -> Server {
        Server::new(&tmpdir(name), opts).unwrap()
    }

    fn run_line(scale: u32) -> String {
        run_line_seeded(scale, 3)
    }

    /// table1 at scale 9: a 2x2 grid with one particle — trivial cells.
    /// Distinct seeds make distinct cache keys, so one test can exercise
    /// several independent computations cheaply.
    fn run_line_seeded(scale: u32, seed: u64) -> String {
        format!(
            r#"{{"id": 7, "op": "run", "artifact": "table1", "scale": {scale}, "trials": 1, "seed": {seed}, "format": "plain"}}"#
        )
    }

    fn kind_of(resp: &Response) -> &str {
        resp.doc
            .get("error_kind")
            .and_then(Value::as_str)
            .unwrap_or("")
    }

    #[test]
    fn malformed_lines_are_typed_bad_requests_not_panics() {
        let server = server("malformed", ServerOptions::default());
        for line in [
            "not json",
            "[1, 2]",
            r#"{"op": "dance"}"#,
            r#"{"op": "run"}"#,
            r#"{"op": "run", "artifact": "nope"}"#,
            r#"{"op": "run", "artifact": "fig5", "scale": "big"}"#,
            r#"{"op": "run", "artifact": "fig5", "format": "yaml"}"#,
        ] {
            let resp = server.handle_line(line);
            assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(false)), "{line}");
            assert_eq!(kind_of(&resp), "bad_request", "{line}");
            assert!(!resp.shutdown);
        }
    }

    #[test]
    fn repeat_run_is_a_cache_hit_with_identical_payload() {
        let server = server("repeat", ServerOptions::default());
        let first = server.handle_line(&run_line(9));
        assert_eq!(first.doc.get("hit"), Some(&Value::Bool(false)));
        assert_eq!(first.doc.get("complete"), Some(&Value::Bool(true)));
        let second = server.handle_line(&run_line(9));
        assert_eq!(second.doc.get("hit"), Some(&Value::Bool(true)));
        assert_eq!(second.doc.get("id"), Some(&(7u64).to_json()));
        assert_eq!(first.doc.get("payload"), second.doc.get("payload"));
        assert_eq!(first.doc.get("key"), second.doc.get("key"));

        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("runs"), Some(&(2u64).to_json()));
        assert_eq!(body.get("hits"), Some(&(1u64).to_json()));
        assert_eq!(body.get("computations"), Some(&(1u64).to_json()));
        assert_eq!(body.get("deduped"), Some(&(0u64).to_json()));
        assert_eq!(body.get("panics"), Some(&(0u64).to_json()));
    }

    #[test]
    fn concurrent_identical_runs_compute_once() {
        let server = Arc::new(server(
            "dedup",
            ServerOptions {
                chaos_compute_ms: 150,
                ..ServerOptions::default()
            },
        ));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.handle_line(&run_line(9)))
            })
            .collect();
        let responses: Vec<Response> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();

        let payloads: Vec<_> = responses
            .iter()
            .map(|r| r.doc.get("payload").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(payloads.windows(2).all(|w| w[0] == w[1]));

        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        // Exactly one computation; the other two either deduped into it or
        // (if scheduled after it finished) hit the cache.
        assert_eq!(body.get("computations"), Some(&(1u64).to_json()));
        let deduped = body.get("deduped").unwrap().as_u64().unwrap();
        let hits = body.get("hits").unwrap().as_u64().unwrap();
        assert_eq!(deduped + hits, 2);
        assert_eq!(body.get("inflight"), Some(&(0u64).to_json()));
    }

    #[test]
    fn shutdown_op_flags_the_connection_and_starts_drain() {
        let server = server("shutdown", ServerOptions::default());
        let resp = server.handle_line(r#"{"id": "bye", "op": "shutdown"}"#);
        assert!(resp.shutdown);
        assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(resp.doc.get("id"), Some(&("bye").to_json()));
        assert!(server.draining(), "shutdown must start the drain");
    }

    #[test]
    fn json_format_returns_the_envelope() {
        let server = server("json", ServerOptions::default());
        let line = r#"{"op": "run", "artifact": "table1", "scale": 9, "trials": 1, "seed": 3, "format": "json"}"#;
        let resp = server.handle_line(line);
        let payload = resp.doc.get("payload").unwrap().as_str().unwrap();
        let doc: Value = serde_json::from_str(payload).unwrap();
        assert_eq!(doc.get("artifact"), Some(&("table1").to_json()));
        assert!(doc.get("data").is_some());
    }

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let shared = Arc::new(Mutex::new(41u64));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(shared.lock().is_err(), "the lock must actually be poisoned");
        let mut guard = lock_recover(&shared);
        *guard += 1;
        assert_eq!(*guard, 42);
    }

    #[test]
    fn panicking_computation_is_contained_and_typed() {
        let cache_dir = tmpdir("panic");
        let server = Server::new(
            &cache_dir,
            ServerOptions {
                chaos_panic: Some(1), // every computation panics
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let resp = server.handle_line(&run_line_seeded(9, 11));
        assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(kind_of(&resp), "compute_panic");
        assert!(resp
            .doc
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("panicked"));

        // The daemon keeps serving and the failure left no state behind:
        // no cache entry, no in-flight slot, no quarantine debris.
        assert_eq!(server.inflight_len(), 0);
        let entries: Vec<_> = std::fs::read_dir(&cache_dir).unwrap().collect();
        assert!(entries.is_empty(), "a panicked run must leave no cache state");
        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("panics"), Some(&(1u64).to_json()));
        assert_eq!(body.get("computations"), Some(&(0u64).to_json()));
    }

    #[test]
    fn followers_of_a_panicked_leader_get_typed_errors_then_a_rerequest_recovers() {
        let cache_dir = tmpdir("panic-followers");
        let server = Arc::new(
            Server::new(
                &cache_dir,
                ServerOptions {
                    // Computation 2 panics (after the 200 ms window that
                    // lets followers pile onto the slot); computations 1
                    // and 3 compute cleanly.
                    chaos_panic: Some(2),
                    chaos_compute_ms: 200,
                    ..ServerOptions::default()
                },
            )
            .unwrap(),
        );
        // Computation 1: clean (seed 21).
        let warm = server.handle_line(&run_line_seeded(9, 21));
        assert_eq!(warm.doc.get("ok"), Some(&Value::Bool(true)));

        // Computation 2 (seed 22) panics; three concurrent identical
        // requests — one leader, the rest followers on the condvar slot —
        // must ALL get typed compute_panic errors, none may hang.
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.handle_line(&run_line_seeded(9, 22)))
            })
            .collect();
        for t in threads {
            let resp = t.join().expect("no hung or crashed request thread");
            assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(false)));
            assert_eq!(kind_of(&resp), "compute_panic");
        }
        assert_eq!(server.inflight_len(), 0, "the panicked slot must be cleared");

        // An immediate re-request of the same spec computes cleanly
        // (computation 3) and matches a chaos-free server byte for byte.
        let recovered = server.handle_line(&run_line_seeded(9, 22));
        assert_eq!(recovered.doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(recovered.doc.get("complete"), Some(&Value::Bool(true)));
        let clean = server_clean_payload(22);
        assert_eq!(
            recovered.doc.get("payload").and_then(Value::as_str),
            Some(clean.as_str()),
            "post-panic artifact must be byte-identical to the non-chaos path"
        );
    }

    fn server_clean_payload(seed: u64) -> String {
        let server = server(&format!("clean-{seed}"), ServerOptions::default());
        let resp = server.handle_line(&run_line_seeded(9, seed));
        assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(true)));
        resp.doc
            .get("payload")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    }

    #[test]
    fn follower_deadline_expires_while_leader_computes_and_late_publish_is_discarded() {
        let cache_dir = tmpdir("deadline");
        let server = Arc::new(
            Server::new(
                &cache_dir,
                ServerOptions {
                    chaos_compute_ms: 400,
                    deadline: Some(Duration::from_millis(100)),
                    ..ServerOptions::default()
                },
            )
            .unwrap(),
        );
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.handle_line(&run_line_seeded(9, 31)))
            })
            .collect();
        let started = Instant::now();
        for t in threads {
            let resp = t.join().expect("no hung request thread");
            assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(false)));
            assert_eq!(kind_of(&resp), "deadline_exceeded");
        }
        // Both threads answered: the follower at ~100 ms, the leader when
        // its (late, discarded) computation finished — and the publish to a
        // slot with no remaining waiters did not panic.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(server.inflight_len(), 0);

        // Purity: a deadline-expired request leaves no cache entry and no
        // quarantine debris.
        let entries: Vec<_> = std::fs::read_dir(&cache_dir).unwrap().collect();
        assert!(
            entries.is_empty(),
            "a deadline-expired run must not populate the cache"
        );
        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("deadline_exceeded"), Some(&(2u64).to_json()));
        assert_eq!(body.get("quarantined"), Some(&(0u64).to_json()));
    }

    #[test]
    fn max_inflight_overload_is_typed_with_a_retry_hint() {
        let server = Arc::new(server(
            "overload",
            ServerOptions {
                chaos_compute_ms: 400,
                max_inflight: Some(1),
                ..ServerOptions::default()
            },
        ));
        let barrier = Arc::new(std::sync::Barrier::new(3));
        // Three concurrent *distinct* specs: exactly one is admitted, the
        // other two are refused with overloaded + retry_after_ms.
        let threads: Vec<_> = (0..3)
            .map(|i| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    server.handle_line(&run_line_seeded(9, 41 + i))
                })
            })
            .collect();
        let responses: Vec<Response> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();
        let ok = responses
            .iter()
            .filter(|r| r.doc.get("ok") == Some(&Value::Bool(true)))
            .count();
        let overloaded: Vec<_> = responses
            .iter()
            .filter(|r| kind_of(r) == "overloaded")
            .collect();
        assert_eq!(ok, 1, "exactly one distinct spec may compute: {responses:?}");
        assert_eq!(overloaded.len(), 2);
        for r in overloaded {
            let hint = r.doc.get("retry_after_ms").and_then(Value::as_u64);
            assert!(hint.is_some_and(|ms| ms >= 250), "retry hint: {:?}", r.doc);
        }
        let stats = server.handle_line(r#"{"op": "stats"}"#);
        assert_eq!(
            stats.doc.get("stats").unwrap().get("overloaded"),
            Some(&(2u64).to_json())
        );
    }

    #[test]
    fn draining_server_refuses_runs_but_answers_stats_and_health() {
        let server = server("drain", ServerOptions::default());
        server.begin_drain();
        server.begin_drain(); // idempotent

        let run = server.handle_line(&run_line(9));
        assert_eq!(run.doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(kind_of(&run), "draining");

        let stats = server.handle_line(r#"{"op": "stats"}"#);
        assert_eq!(stats.doc.get("ok"), Some(&Value::Bool(true)));
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("drain_refused"), Some(&(1u64).to_json()));
        assert_eq!(body.get("draining"), Some(&Value::Bool(true)));

        let health = server.handle_line(r#"{"op": "health"}"#);
        assert_eq!(health.doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            health.doc.get("health").unwrap().get("draining"),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn health_reports_load_and_configuration() {
        let server = server(
            "health",
            ServerOptions {
                deadline: Some(Duration::from_millis(1500)),
                max_inflight: Some(4),
                ..ServerOptions::default()
            },
        );
        let _active = server.track_active();
        let resp = server.handle_line(r#"{"id": 1, "op": "health"}"#);
        let body = resp.doc.get("health").unwrap();
        assert_eq!(body.get("draining"), Some(&Value::Bool(false)));
        assert_eq!(body.get("inflight"), Some(&(0u64).to_json()));
        assert_eq!(body.get("active_requests"), Some(&(1u64).to_json()));
        assert_eq!(body.get("deadline_ms"), Some(&(1500u64).to_json()));
        assert_eq!(body.get("max_inflight"), Some(&(4u64).to_json()));
        assert_eq!(body.get("quarantined"), Some(&(0u64).to_json()));
        assert!(body.get("uptime_ms").and_then(Value::as_u64).is_some());
    }

    #[test]
    fn drain_refusal_line_is_one_typed_json_line() {
        let line = drain_refusal_line();
        assert!(!line.contains('\n'));
        let doc: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(
            doc.get("error_kind").and_then(Value::as_str),
            Some("draining")
        );
    }

    #[test]
    fn memory_tier_serves_repeats_and_reports_tier_counters() {
        let server = server(
            "mem-tier",
            ServerOptions {
                cache_mem_bytes: 64 << 20,
                ..ServerOptions::default()
            },
        );
        let first = server.handle_line(&run_line(9));
        assert_eq!(first.doc.get("hit"), Some(&Value::Bool(false)));
        // Repeats are memory hits: the store seeded the tier, so no disk
        // read (and no sha256 pass) happens again.
        let second = server.handle_line(&run_line(9));
        let third = server.handle_line(&run_line(9));
        assert_eq!(second.doc.get("hit"), Some(&Value::Bool(true)));
        assert_eq!(first.doc.get("payload"), second.doc.get("payload"));
        assert_eq!(first.doc.get("payload"), third.doc.get("payload"));

        // An op's latency is recorded when its response is complete, so the
        // first stats body cannot contain the `stats` histogram yet — ask
        // twice and assert on the second.
        server.handle_line(r#"{"op": "stats"}"#);
        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("mem_hits"), Some(&(2u64).to_json()));
        assert_eq!(body.get("disk_hits"), Some(&(0u64).to_json()));
        assert_eq!(body.get("mem_evictions"), Some(&(0u64).to_json()));
        assert!(body.get("mem_bytes").unwrap().as_u64().unwrap() > 0);
        assert_eq!(body.get("mem_entries"), Some(&(1u64).to_json()));

        // The latency histograms saw every path this test exercised.
        let latency = body.get("latency_us").unwrap();
        for op in ["run_compute", "run_mem_hit", "stats"] {
            let hist = latency
                .get(op)
                .unwrap_or_else(|| panic!("latency histogram for {op}"));
            assert!(hist.get("count").unwrap().as_u64().unwrap() > 0, "{op}");
            let buckets = hist.get("le_us").unwrap().as_object().unwrap();
            assert!(!buckets.is_empty(), "{op} buckets must be non-empty");
        }
    }

    #[test]
    fn cold_memory_warm_disk_restart_replays_byte_identically() {
        let dir = tmpdir("mem-restart");
        let opts = || ServerOptions {
            cache_mem_bytes: 64 << 20,
            ..ServerOptions::default()
        };
        let first = Server::new(&dir, opts()).unwrap();
        let computed = first.handle_line(&run_line(9));
        assert_eq!(computed.doc.get("hit"), Some(&Value::Bool(false)));

        // A second daemon over the same cache dir: its memory tier is
        // cold, so the first hit verifies from disk (and promotes), the
        // next comes from memory — all byte-identical, zero recomputation.
        let second = Server::new(&dir, opts()).unwrap();
        let from_disk = second.handle_line(&run_line(9));
        let from_mem = second.handle_line(&run_line(9));
        assert_eq!(from_disk.doc.get("hit"), Some(&Value::Bool(true)));
        assert_eq!(from_mem.doc.get("hit"), Some(&Value::Bool(true)));
        assert_eq!(computed.doc.get("payload"), from_disk.doc.get("payload"));
        assert_eq!(computed.doc.get("payload"), from_mem.doc.get("payload"));

        let stats = second.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("computations"), Some(&(0u64).to_json()));
        assert_eq!(body.get("disk_hits"), Some(&(1u64).to_json()));
        assert_eq!(body.get("mem_hits"), Some(&(1u64).to_json()));
    }

    #[test]
    fn overloaded_refusal_line_carries_the_retry_hint_and_counts() {
        let server = server("queue-refusal", ServerOptions::default());
        let line = server.overloaded_refusal_line();
        assert!(!line.contains('\n'));
        let doc: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(
            doc.get("error_kind").and_then(Value::as_str),
            Some("overloaded")
        );
        assert!(doc.get("retry_after_ms").and_then(Value::as_u64).unwrap() >= 250);
        let stats = server.handle_line(r#"{"op": "stats"}"#);
        assert_eq!(
            stats.doc.get("stats").unwrap().get("overloaded"),
            Some(&(1u64).to_json())
        );
    }

    #[test]
    fn log_limiter_allows_one_line_per_kind_per_window() {
        let mut limiter = LogLimiter::new(Duration::from_secs(5));
        let t0 = Instant::now();
        // First occurrence of each kind logs immediately.
        assert_eq!(limiter.should_log("ConnectionAborted", t0), Some(0));
        assert_eq!(limiter.should_log("PermissionDenied", t0), Some(0));
        // Repeats inside the window are suppressed and counted.
        for _ in 0..7 {
            assert_eq!(
                limiter.should_log("ConnectionAborted", t0 + Duration::from_secs(1)),
                None
            );
        }
        // Other kinds are unaffected by that suppression window.
        assert_eq!(
            limiter.should_log("PermissionDenied", t0 + Duration::from_secs(6)),
            Some(0)
        );
        // After the window the kind logs again, reporting what was eaten.
        assert_eq!(
            limiter.should_log("ConnectionAborted", t0 + Duration::from_secs(6)),
            Some(7)
        );
        // And the counter restarts.
        assert_eq!(
            limiter.should_log("ConnectionAborted", t0 + Duration::from_secs(7)),
            None
        );
        assert_eq!(
            limiter.should_log("ConnectionAborted", t0 + Duration::from_secs(12)),
            Some(1)
        );
    }

    #[test]
    fn active_request_tracking_is_raii() {
        let server = server("active", ServerOptions::default());
        assert_eq!(server.active_requests(), 0);
        {
            let _a = server.track_active();
            let _b = server.track_active();
            assert_eq!(server.active_requests(), 2);
        }
        assert_eq!(server.active_requests(), 0);
    }

    /// Handle one line, collecting the streamed (batch item) documents.
    fn handle_collect(server: &Server, line: &str) -> (Response, Vec<Value>) {
        let mut emitted = Vec::new();
        let resp = server.handle_line_with(line, &mut |doc| emitted.push(doc.clone()));
        (resp, emitted)
    }

    /// A `batch` line over table1-scale-9 cells distinguished by seed,
    /// exercising the shared-defaults + per-item-override merge.
    fn batch_line(seeds: &[u64]) -> String {
        let items: Vec<String> = seeds.iter().map(|s| format!(r#"{{"seed": {s}}}"#)).collect();
        format!(
            r#"{{"id": "b", "op": "batch", "defaults": {{"artifact": "table1", "scale": 9, "trials": 1, "format": "plain"}}, "items": [{}]}}"#,
            items.join(", ")
        )
    }

    fn warm_line(seeds: &[u64]) -> String {
        let items: Vec<String> = seeds
            .iter()
            .map(|s| format!(r#"{{"artifact": "table1", "scale": 9, "trials": 1, "seed": {s}}}"#))
            .collect();
        format!(
            r#"{{"id": "w", "op": "warm", "items": [{}]}}"#,
            items.join(", ")
        )
    }

    #[test]
    fn batch_items_match_standalone_runs_byte_identically() {
        let server = server("batch-ident", ServerOptions::default());
        // Seed 21 is cached before the batch: the batch sees a mixed
        // hit/miss population, the acceptance shape from the issue.
        let standalone_21 = server.handle_line(&run_line_seeded(9, 21));
        let (done, items) = handle_collect(&server, &batch_line(&[21, 22, 23]));

        assert_eq!(done.doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(done.doc.get("batch_done"), Some(&Value::Bool(true)));
        assert_eq!(done.doc.get("items"), Some(&(3u64).to_json()));
        assert_eq!(done.doc.get("ok_items"), Some(&(3u64).to_json()));
        assert_eq!(done.doc.get("failed_items"), Some(&(0u64).to_json()));
        assert_eq!(done.doc.get("hits"), Some(&(1u64).to_json()));
        assert!(!done.shutdown);

        // Every index is present exactly once (completion order may vary).
        let mut indexes: Vec<u64> = items
            .iter()
            .map(|doc| doc.get("index").and_then(Value::as_u64).unwrap())
            .collect();
        indexes.sort_unstable();
        assert_eq!(indexes, vec![0, 1, 2]);

        for doc in &items {
            let index = doc.get("index").and_then(Value::as_u64).unwrap();
            let seed = [21u64, 22, 23][index as usize];
            // The equivalent standalone run: for seed 21 it already ran
            // above; for the others it replays the cache the batch filled.
            let standalone = if seed == 21 {
                standalone_21.doc.clone()
            } else {
                server.handle_line(&run_line_seeded(9, seed)).doc
            };
            assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "seed {seed}");
            assert_eq!(
                doc.get("payload"),
                standalone.get("payload"),
                "batch item payload must be byte-identical to a standalone run (seed {seed})"
            );
            assert_eq!(doc.get("key"), standalone.get("key"), "seed {seed}");
            // The batch id, not the item seed, correlates the lines.
            assert_eq!(doc.get("id"), Some(&("b").to_json()));
        }
        // Seed 21 was a hit inside the batch (it was pre-cached).
        let hit_21 = items
            .iter()
            .find(|d| d.get("index") == Some(&(0u64).to_json()))
            .unwrap();
        assert_eq!(hit_21.get("hit"), Some(&Value::Bool(true)));
    }

    #[test]
    fn batch_sibling_items_survive_a_chaos_panic() {
        // One batch worker makes the chaos counter deterministic: the
        // items compute in submission order, so computation #2 — seed 32 —
        // is the one that panics.
        let server = server(
            "batch-panic",
            ServerOptions {
                chaos_panic: Some(2),
                batch_workers: 1,
                ..ServerOptions::default()
            },
        );
        let (done, items) = handle_collect(&server, &batch_line(&[31, 32, 33]));
        assert_eq!(done.doc.get("ok_items"), Some(&(2u64).to_json()));
        assert_eq!(done.doc.get("failed_items"), Some(&(1u64).to_json()));

        let by_index = |i: u64| {
            items
                .iter()
                .find(|d| d.get("index") == Some(&i.to_json()))
                .unwrap()
        };
        assert_eq!(by_index(1).get("ok"), Some(&Value::Bool(false)));
        assert_eq!(
            by_index(1).get("error_kind").and_then(Value::as_str),
            Some(error_kind::COMPUTE_PANIC)
        );
        // The siblings are not poisoned: their payloads equal a clean
        // server's (computation is deterministic across instances).
        let clean = Server::new(&tmpdir("batch-panic-clean"), ServerOptions::default()).unwrap();
        for (i, seed) in [(0u64, 31u64), (2, 33)] {
            let doc = by_index(i);
            assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "seed {seed}");
            let standalone = clean.handle_line(&run_line_seeded(9, seed)).doc;
            assert_eq!(doc.get("payload"), standalone.get("payload"), "seed {seed}");
        }
    }

    #[test]
    fn batch_and_warm_parse_errors_are_bad_requests() {
        let server = server("batch-parse", ServerOptions::default());
        for line in [
            r#"{"op": "batch"}"#,
            r#"{"op": "batch", "items": []}"#,
            r#"{"op": "batch", "items": "nope"}"#,
            r#"{"op": "batch", "items": [{"artifact": "nope"}]}"#,
            r#"{"op": "batch", "defaults": [], "items": [{"artifact": "table1"}]}"#,
            r#"{"op": "warm", "items": [{"artifact": "table1", "scale": "big"}]}"#,
        ] {
            let resp = server.handle_line(line);
            assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(false)), "{line}");
            assert_eq!(kind_of(&resp), error_kind::BAD_REQUEST, "{line}");
        }
    }

    #[test]
    fn warm_queue_overflow_is_typed_and_counted() {
        // No warmers running: the queue only fills. Capacity 2, 4 items.
        let server = server(
            "warm-overflow",
            ServerOptions {
                warm_queue_cap: 2,
                ..ServerOptions::default()
            },
        );
        let resp = server.handle_line(&warm_line(&[61, 62, 63, 64]));
        assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(kind_of(&resp), error_kind::WARM_QUEUE_FULL);
        assert_eq!(resp.doc.get("queued"), Some(&(2u64).to_json()));
        assert_eq!(resp.doc.get("refused"), Some(&(2u64).to_json()));
        assert!(resp.doc.get("retry_after_ms").and_then(Value::as_u64).unwrap() >= 250);
        assert_eq!(server.warm_queue_len(), 2);

        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("warm_queued"), Some(&(2u64).to_json()));
        assert_eq!(body.get("warm_dropped"), Some(&(2u64).to_json()));
        assert_eq!(body.get("warm_computed"), Some(&(0u64).to_json()));
    }

    #[test]
    fn warm_queue_is_discarded_on_drain() {
        let server = server("warm-drain", ServerOptions::default());
        let resp = server.handle_line(&warm_line(&[71, 72]));
        assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(resp.doc.get("queued"), Some(&(2u64).to_json()));
        assert_eq!(server.warm_queue_len(), 2);

        server.begin_drain();
        assert_eq!(server.warm_queue_len(), 0, "drain discards the backlog");
        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("warm_dropped"), Some(&(2u64).to_json()));

        // And a draining daemon refuses new warm work outright.
        let refused = server.handle_line(&warm_line(&[73]));
        assert_eq!(kind_of(&refused), error_kind::DRAINING);
    }

    #[test]
    fn warmer_computes_in_the_background_and_makes_runs_hit() {
        let server = Arc::new(server("warm-e2e", ServerOptions::default()));
        server.start_warmers(1);
        let resp = server.handle_line(&warm_line(&[81]));
        assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(true)));

        let warm_computed = |server: &Server| {
            let stats = server.handle_line(r#"{"op": "stats"}"#);
            stats
                .doc
                .get("stats")
                .and_then(|b| b.get("warm_computed"))
                .and_then(Value::as_u64)
                .unwrap()
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        while warm_computed(&server) < 1 {
            assert!(Instant::now() < deadline, "warmer never computed the spec");
            std::thread::sleep(Duration::from_millis(10));
        }

        // The first interactive run of the warmed spec is already a hit.
        let run = server.handle_line(&run_line_seeded(9, 81));
        assert_eq!(run.doc.get("hit"), Some(&Value::Bool(true)));

        // Warming an already-cached spec is a no-op for the counter: the
        // warmer resolves it as a warm_hit instead of recomputing.
        server.handle_line(&warm_line(&[81]));
        let warm_hits = |server: &Server| {
            let stats = server.handle_line(r#"{"op": "stats"}"#);
            stats
                .doc
                .get("stats")
                .and_then(|b| b.get("latency_us"))
                .and_then(|l| l.get("warm_hit"))
                .and_then(|e| e.get("count"))
                .and_then(Value::as_u64)
                .unwrap_or(0)
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        while warm_hits(&server) < 1 {
            assert!(Instant::now() < deadline, "re-warm never resolved as a hit");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(warm_computed(&server), 1, "a cached spec must not recompute");
        server.begin_drain(); // stop the warmer thread
    }

    #[test]
    fn refusals_do_not_deflate_hit_rate() {
        let server = server("hit-rate", ServerOptions::default());
        server.handle_line(&run_line_seeded(9, 51)); // miss
        server.handle_line(&run_line_seeded(9, 51)); // hit
        let body = |server: &Server| {
            let stats = server.handle_line(r#"{"op": "stats"}"#);
            match stats.doc.get("stats").unwrap() {
                Value::Object(m) => m.clone(),
                _ => unreachable!(),
            }
        };
        let before = body(&server);
        assert_eq!(before.get("runs"), Some(&(2u64).to_json()));
        assert_eq!(before.get("hits"), Some(&(1u64).to_json()));
        assert_eq!(before.get("hit_rate"), Some(&(0.5f64).to_json()));

        // An accept-queue overload refusal and a drain refusal: neither is
        // a served run, so neither may move the hit-rate denominator.
        let _ = server.overloaded_refusal_line();
        server.begin_drain();
        let refused = server.handle_line(&run_line_seeded(9, 52));
        assert_eq!(kind_of(&refused), error_kind::DRAINING);

        let after = body(&server);
        assert_eq!(after.get("runs"), Some(&(2u64).to_json()));
        assert_eq!(after.get("hits"), Some(&(1u64).to_json()));
        assert_eq!(after.get("hit_rate"), Some(&(0.5f64).to_json()));
        assert_eq!(after.get("overloaded"), Some(&(1u64).to_json()));
        assert_eq!(after.get("drain_refused"), Some(&(1u64).to_json()));
    }

    #[test]
    fn retry_hint_scales_with_depth_monotonically() {
        for chaos_ms in [0u64, 400, 20_000] {
            let mut prev = 0;
            for depth in 0..100 {
                let hint = retry_after_hint(chaos_ms, depth);
                assert!(
                    hint >= prev,
                    "hint must be monotone in depth (chaos {chaos_ms}, depth {depth})"
                );
                assert!(hint >= 250, "the 250 ms floor holds everywhere");
                prev = hint;
            }
        }
        // An idle daemon keeps the old constant hint...
        assert_eq!(retry_after_hint(0, 0), 250);
        // ...a loaded one pushes clients out proportionally...
        assert_eq!(retry_after_hint(0, 3), 1_000);
        assert_eq!(retry_after_hint(400, 1), 800);
        // ...capped so an extreme backlog still retries within 10 s...
        assert_eq!(retry_after_hint(0, 1_000), 10_000);
        // ...unless one computation alone takes longer than the cap.
        assert_eq!(retry_after_hint(20_000, 3), 20_000);
    }

    /// Split a Prometheus exposition page into (name, labels, value)
    /// sample triples, asserting every non-comment line is well-formed.
    fn parse_exposition(page: &str) -> Vec<(String, String, String)> {
        let mut samples = Vec::new();
        for line in page.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
                panic!("sample line has no value: {line:?}");
            });
            let (name, labels) = match series.split_once('{') {
                Some((name, rest)) => {
                    let labels = rest.strip_suffix('}').unwrap_or_else(|| {
                        panic!("unterminated label set: {line:?}");
                    });
                    for pair in labels.split("\",") {
                        let (key, val) = pair
                            .split_once("=\"")
                            .unwrap_or_else(|| panic!("malformed label `{pair}`: {line:?}"));
                        assert!(
                            !key.is_empty() && key.chars().all(|c| c.is_alphanumeric() || c == '_'),
                            "bad label key in {line:?}"
                        );
                        let _ = val;
                    }
                    (name, labels)
                }
                None => (series, ""),
            };
            assert!(
                name.chars().all(|c| c.is_alphanumeric() || c == '_'),
                "bad metric name in {line:?}"
            );
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparseable value in {line:?}"
            );
            samples.push((name.to_string(), labels.to_string(), value.to_string()));
        }
        samples
    }

    #[test]
    fn metrics_op_renders_every_registered_counter_once() {
        let server = server(
            "metrics-op",
            ServerOptions {
                cache_mem_bytes: 64 << 20,
                ..ServerOptions::default()
            },
        );
        server.handle_line(&run_line_seeded(9, 61)); // miss -> computation
        server.handle_line(&run_line_seeded(9, 61)); // memory-tier hit

        let resp = server.handle_line(r#"{"id": 9, "op": "metrics"}"#);
        assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            resp.doc.get("content_type"),
            Some(&"text/plain; version=0.0.4".to_json())
        );
        let page = resp.doc.get("metrics").and_then(Value::as_str).unwrap();
        let samples = parse_exposition(page);
        let value_of = |name: &str| -> f64 {
            let hits: Vec<_> = samples.iter().filter(|(n, _, _)| n == name).collect();
            assert_eq!(hits.len(), 1, "expected exactly one `{name}` sample");
            hits[0].2.parse().unwrap()
        };

        // Every former bespoke counter is a single registry-backed sample.
        // (The metrics request itself is the third request counted.)
        for (name, want) in [
            ("sfc_serve_requests_total", 3.0),
            ("sfc_serve_runs_total", 2.0),
            ("sfc_serve_hits_total", 1.0),
            ("sfc_serve_computations_total", 1.0),
            ("sfc_serve_mem_hits_total", 1.0),
            ("sfc_serve_disk_hits_total", 0.0),
            ("sfc_serve_deduped_total", 0.0),
            ("sfc_serve_errors_total", 0.0),
            ("sfc_serve_panics_total", 0.0),
            ("sfc_serve_deadline_exceeded_total", 0.0),
            ("sfc_serve_overloaded_total", 0.0),
            ("sfc_serve_drain_refused_total", 0.0),
            ("sfc_serve_warm_queued_total", 0.0),
            ("sfc_serve_warm_computed_total", 0.0),
            ("sfc_serve_warm_dropped_total", 0.0),
            ("sfc_serve_quarantined_total", 0.0),
            ("sfc_serve_mem_evictions_total", 0.0),
            // hit_rate is derived from the registry counters at render
            // time, never stored (satellite: no double bookkeeping).
            ("sfc_serve_hit_rate", 0.5),
        ] {
            assert_eq!(value_of(name), want, "{name}");
        }
        // The per-op latency histogram and phase counters carry labels.
        assert!(samples
            .iter()
            .any(|(n, l, _)| n == "sfc_serve_op_latency_us_count" && l.contains("op=\"")));
        assert!(samples
            .iter()
            .any(|(n, l, _)| n == "sfc_serve_phase_us_total" && l.contains("phase=\"")));
        // Exactly one HELP/TYPE header pair per family.
        for name in ["sfc_serve_runs_total", "sfc_serve_op_latency_us"] {
            let help = format!("# HELP {name} ");
            assert_eq!(
                page.lines().filter(|l| l.starts_with(&help)).count(),
                1,
                "{name} HELP"
            );
        }
    }

    #[test]
    fn request_id_round_trips_from_response_into_the_trace() {
        let dir = tmpdir("trace-rid");
        let trace_path = format!("{dir}-trace.jsonl");
        let _ = std::fs::remove_file(&trace_path);
        let server = Server::new(
            &dir,
            ServerOptions {
                trace_path: Some(trace_path.clone()),
                ..ServerOptions::default()
            },
        )
        .unwrap();

        let resp = server.handle_line(&run_line_seeded(9, 71));
        let rid = resp
            .doc
            .get("request_id")
            .and_then(Value::as_str)
            .expect("every response line carries a request_id")
            .to_string();
        assert!(!rid.is_empty());

        let text = std::fs::read_to_string(&trace_path).unwrap();
        let records: Vec<Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("trace lines are JSON"))
            .collect();
        assert!(!records.is_empty());
        for rec in &records {
            assert!(rec.get("ts_us").and_then(Value::as_u64).is_some());
            assert!(rec.get("kind").and_then(Value::as_str).is_some());
            assert!(rec.get("name").and_then(Value::as_str).is_some());
            assert!(rec.get("request_id").and_then(Value::as_str).is_some());
        }
        let spans_for_rid: Vec<&Value> = records
            .iter()
            .filter(|r| r.get("request_id") == Some(&rid.as_str().to_json()))
            .collect();
        let names: Vec<&str> = spans_for_rid
            .iter()
            .filter_map(|r| r.get("name").and_then(Value::as_str))
            .collect();
        assert!(
            names.contains(&"compute") && names.contains(&"run_compute"),
            "the response request_id must appear on its compute and op spans, got {names:?}"
        );
        // Timestamps are monotone within the file.
        let stamps: Vec<u64> = records
            .iter()
            .map(|r| r.get("ts_us").and_then(Value::as_u64).unwrap())
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn client_request_ids_are_echoed_and_batch_items_indexed() {
        let server = server("client-rid", ServerOptions::default());
        let line = r#"{"id": 1, "op": "run", "artifact": "table1", "scale": 9, "trials": 1, "seed": 81, "format": "plain", "request_id": "my-rid"}"#;
        let resp = server.handle_line(line);
        assert_eq!(resp.doc.get("request_id"), Some(&"my-rid".to_json()));

        let batch = r#"{"id": 2, "op": "batch", "request_id": "b-1", "defaults": {"artifact": "table1", "scale": 9, "trials": 1, "format": "plain"}, "items": [{"seed": 82}, {"seed": 83}]}"#;
        let (done, items) = handle_collect(&server, batch);
        assert_eq!(done.doc.get("request_id"), Some(&"b-1".to_json()));
        let mut item_rids: Vec<String> = items
            .iter()
            .map(|doc| {
                doc.get("request_id")
                    .and_then(Value::as_str)
                    .expect("every batch item line carries a request_id")
                    .to_string()
            })
            .collect();
        item_rids.sort();
        assert_eq!(item_rids, ["b-1.0", "b-1.1"]);

        // A request without a client id still gets a daemon-generated one.
        let anon = server.handle_line(r#"{"op": "stats"}"#);
        let rid = anon.doc.get("request_id").and_then(Value::as_str).unwrap();
        assert!(!rid.is_empty());

        // A non-string request_id is refused, not silently replaced.
        let bad = server.handle_line(r#"{"op": "stats", "request_id": 7}"#);
        assert_eq!(kind_of(&bad), "bad_request");
    }

    #[test]
    fn stats_and_health_bodies_parse_as_the_versioned_structs() {
        let server = server("versioned", ServerOptions::default());
        server.handle_line(&run_line_seeded(9, 91));
        server.handle_line(&run_line_seeded(9, 91));

        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        let parsed = StatsResponse::from_json(body).unwrap();
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert_eq!(parsed.runs, 2);
        assert_eq!(parsed.hits, 1);
        assert_eq!(parsed.hit_rate, 0.5);
        // Round-trip is byte-identical: the daemon and the typed structs
        // agree on the wire form exactly.
        assert_eq!(
            serde_json::to_string(&parsed.to_json()).unwrap(),
            serde_json::to_string(body).unwrap()
        );

        let health = server.handle_line(r#"{"op": "health"}"#);
        let body = health.doc.get("health").unwrap();
        let parsed = HealthResponse::from_json(body).unwrap();
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert!(!parsed.draining);
        assert_eq!(
            serde_json::to_string(&parsed.to_json()).unwrap(),
            serde_json::to_string(body).unwrap()
        );
    }

    #[test]
    fn artifacts_are_byte_identical_with_tracing_on_and_off() {
        let dir_traced = tmpdir("traced");
        let trace_path = format!("{dir_traced}-trace.jsonl");
        let traced = Server::new(
            &dir_traced,
            ServerOptions {
                trace_path: Some(trace_path.clone()),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let plain = server("untraced", ServerOptions::default());
        let line = run_line_seeded(9, 95);
        let a = traced.handle_line(&line);
        let b = plain.handle_line(&line);
        assert_eq!(a.doc.get("payload"), b.doc.get("payload"));
        assert_eq!(a.doc.get("key"), b.doc.get("key"));
        assert!(std::fs::metadata(&trace_path).unwrap().len() > 0);
    }
}
