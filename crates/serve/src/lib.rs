//! # sfc-serve
//!
//! A long-running daemon answering experiment requests from the
//! content-addressed result cache ([`sfc_core::ResultCache`]).
//!
//! Every artifact the workspace regenerates is a pure function of its
//! canonical [`ExperimentSpec`] and the kernel version, so a daemon can
//! memoize whole experiments: the first request for a spec computes it
//! (minutes of sweep cells), every repeat is answered from the cache with
//! byte-identical payloads, and identical requests that arrive *while* the
//! computation is still running are deduplicated into that single
//! computation instead of racing a second one.
//!
//! ## Protocol
//!
//! JSON-lines over a unix socket (`--socket PATH`) or over stdin/stdout
//! (`--pipe`, for CI and scripting). One request object per line, one
//! response object per line; in pipe mode responses may be emitted out of
//! request order, so correlate them with the echoed `id` field.
//!
//! ```json
//! {"id": 1, "op": "run", "artifact": "table1", "scale": 5, "trials": 1,
//!  "seed": 20130701, "format": "plain"}
//! {"id": 2, "op": "stats"}
//! {"id": 3, "op": "shutdown"}
//! ```
//!
//! A `run` response carries the requested payload stream (`format` is
//! `plain`, `markdown` or `json`) plus provenance: the cache `key`, whether
//! the answer was a cache `hit`, and whether the request was `deduped` into
//! an in-flight computation. A `stats` response reports request counters,
//! the cache hit rate, the in-flight dedup count and the accumulated
//! per-phase kernel timings of everything this daemon computed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde_json::{Map, ToJson, Value};
use sfc_bench::artifact::{compute, ComputeOpts};
use sfc_bench::SweepArgs;
use sfc_core::runner::{SweepRunner, SweepSummary};
use sfc_core::{ArtifactKind, CachedArtifact, ExperimentSpec, ResultCache};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Compute the full artifact for `spec` exactly as its binary would: same
/// banner, same body bytes, same JSON envelope. Returns the three cached
/// byte streams plus the sweep summary (for completeness and timings).
pub fn compute_artifact(spec: &ExperimentSpec) -> (CachedArtifact, SweepSummary) {
    let args = SweepArgs {
        scale: spec.scale,
        trials: spec.trials,
        seed: spec.seed,
        ..SweepArgs::default()
    };
    let banner = args.banner(spec.artifact.title());
    let mut runner = SweepRunner::ephemeral();
    let out = compute(spec, &ComputeOpts::default(), &mut runner);
    let summary = runner.finish();
    let doc = sfc_bench::results::envelope(spec.artifact.name(), spec, &summary, out.data);
    let artifact_json = serde_json::to_string_pretty(&doc).expect("serialize artifact");
    let artifact = CachedArtifact {
        stdout_plain: format!("{banner}\n{}", out.body_plain),
        stdout_markdown: format!("{banner}\n{}", out.body_markdown),
        artifact_json,
    };
    (artifact, summary)
}

/// Which byte stream of a cached artifact a `run` request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The plain-text stdout stream, banner included.
    Plain,
    /// The Markdown stdout stream, banner included.
    Markdown,
    /// The machine-readable JSON envelope (the `--json` payload).
    Json,
}

impl Format {
    fn parse(s: &str) -> Result<Format, String> {
        match s {
            "plain" => Ok(Format::Plain),
            "markdown" => Ok(Format::Markdown),
            "json" => Ok(Format::Json),
            other => Err(format!(
                "unknown format `{other}` (expected plain, markdown or json)"
            )),
        }
    }

    fn select(self, artifact: &CachedArtifact) -> &str {
        match self {
            Format::Plain => &artifact.stdout_plain,
            Format::Markdown => &artifact.stdout_markdown,
            Format::Json => &artifact.artifact_json,
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run (or replay) the experiment a spec describes.
    Run {
        /// The resolved canonical spec (boxed: the spec dwarfs the other
        /// variants).
        spec: Box<ExperimentSpec>,
        /// Which payload stream to return.
        format: Format,
    },
    /// Report daemon counters.
    Stats,
    /// Stop accepting requests and exit.
    Shutdown,
}

impl Request {
    /// Parse one JSON request line. `scale`/`trials`/`seed` default to the
    /// binaries' flag defaults, so a request describes the same experiment
    /// the equivalent command line would.
    pub fn parse(line: &str) -> Result<(Value, Request), String> {
        let doc: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
        let obj = doc.as_object().ok_or("request must be a JSON object")?;
        let id = obj.get("id").cloned().unwrap_or(Value::Null);
        let op = obj
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing `op` field")?;
        let req = match op {
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            "run" => {
                let name = obj
                    .get("artifact")
                    .and_then(Value::as_str)
                    .ok_or("run: missing `artifact` field")?;
                let kind = ArtifactKind::parse(name)
                    .ok_or_else(|| format!("run: unknown artifact `{name}`"))?;
                let defaults = SweepArgs::default();
                let num = |key: &str, default: u64| -> Result<u64, String> {
                    match obj.get(key) {
                        None => Ok(default),
                        Some(v) => v
                            .as_u64()
                            .ok_or_else(|| format!("run: `{key}` must be a non-negative integer")),
                    }
                };
                let scale = num("scale", defaults.scale as u64)? as u32;
                let trials = num("trials", defaults.trials)?;
                let seed = num("seed", defaults.seed)?;
                let format = match obj.get("format") {
                    None => Format::Plain,
                    Some(v) => Format::parse(
                        v.as_str().ok_or("run: `format` must be a string")?,
                    )?,
                };
                let spec = ExperimentSpec::for_artifact(kind, scale, trials, seed);
                spec.validate().map_err(|e| format!("run: invalid spec: {e}"))?;
                Request::Run {
                    spec: Box::new(spec),
                    format,
                }
            }
            other => return Err(format!("unknown op `{other}`")),
        };
        Ok((id, req))
    }
}

/// The daemon's answer to one request line.
#[derive(Debug, Clone)]
pub struct Response {
    /// The JSON response document to write back as one line.
    pub doc: Value,
    /// Whether the connection/daemon should stop after this response.
    pub shutdown: bool,
}

/// One in-flight computation: followers block on the condvar until the
/// leader publishes the result.
struct Slot {
    result: Mutex<Option<RunOutcome>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, outcome: RunOutcome) {
        *self.result.lock().expect("slot lock") = Some(outcome);
        self.ready.notify_all();
    }

    fn wait(&self) -> RunOutcome {
        let mut guard = self.result.lock().expect("slot lock");
        loop {
            match &*guard {
                Some(outcome) => return outcome.clone(),
                None => guard = self.ready.wait(guard).expect("slot lock"),
            }
        }
    }
}

/// The artifact a run produced plus whether the sweep completed (an
/// incomplete artifact is served but never cached).
#[derive(Clone)]
struct RunOutcome {
    artifact: Arc<CachedArtifact>,
    complete: bool,
}

/// Daemon counters, reported by the `stats` op.
#[derive(Debug, Default)]
struct Stats {
    requests: u64,
    runs: u64,
    hits: u64,
    computations: u64,
    deduped: u64,
    errors: u64,
    /// Accumulated kernel-phase milliseconds of every cell this daemon
    /// computed, in first-use order.
    phase_ms: Vec<(String, f64)>,
}

impl Stats {
    fn absorb_phases(&mut self, summary: &SweepSummary) {
        for (_cell, timing) in &summary.timings {
            for (name, ms) in &timing.phases {
                match self.phase_ms.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += ms,
                    None => self.phase_ms.push((name.clone(), *ms)),
                }
            }
        }
    }
}

/// The daemon core: a result cache, the in-flight dedup table and the
/// counters. Transport-independent — the socket and pipe front ends both
/// feed request lines to [`Server::handle_line`] from as many threads as
/// they like.
pub struct Server {
    cache: ResultCache,
    inflight: Mutex<HashMap<String, Arc<Slot>>>,
    stats: Mutex<Stats>,
    /// Test-only delay inserted before each computation, widening the
    /// in-flight window so CI can assert dedup deterministically.
    chaos_compute_ms: u64,
}

impl Server {
    /// Open (or create) the cache directory and build a server around it.
    pub fn new(cache_dir: &str, chaos_compute_ms: u64) -> std::io::Result<Server> {
        Ok(Server {
            cache: ResultCache::new(cache_dir)?,
            inflight: Mutex::new(HashMap::new()),
            stats: Mutex::new(Stats::default()),
            chaos_compute_ms,
        })
    }

    /// Handle one request line, returning the response line to write back.
    /// Never panics on malformed input — errors become `ok: false`
    /// responses.
    pub fn handle_line(&self, line: &str) -> Response {
        self.stats.lock().expect("stats lock").requests += 1;
        let (id, req) = match Request::parse(line) {
            Ok(parsed) => parsed,
            Err(e) => return error_response(Value::Null, &e),
        };
        match req {
            Request::Run { spec, format } => self.run(id, &spec, format),
            Request::Stats => self.report_stats(id),
            Request::Shutdown => {
                let mut doc = Map::new();
                doc.insert("id", id);
                doc.insert("ok", Value::Bool(true));
                doc.insert("shutting_down", Value::Bool(true));
                Response {
                    doc: Value::Object(doc),
                    shutdown: true,
                }
            }
        }
    }

    /// Answer a `run` request: cache hit, dedup into an in-flight
    /// computation, or compute (and populate the cache) ourselves.
    fn run(&self, id: Value, spec: &ExperimentSpec, format: Format) -> Response {
        self.stats.lock().expect("stats lock").runs += 1;
        let key = ResultCache::key(spec);

        if let Some(hit) = self.cache.load(spec) {
            self.stats.lock().expect("stats lock").hits += 1;
            return run_response(id, spec, &key, format, &hit, true, false, true);
        }

        let (slot, leader) = {
            let mut inflight = self.inflight.lock().expect("inflight lock");
            match inflight.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot::new());
                    inflight.insert(key.clone(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };

        if !leader {
            self.stats.lock().expect("stats lock").deduped += 1;
            let outcome = slot.wait();
            return run_response(
                id,
                spec,
                &key,
                format,
                &outcome.artifact,
                false,
                true,
                outcome.complete,
            );
        }

        if self.chaos_compute_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.chaos_compute_ms));
        }
        let (artifact, summary) = compute_artifact(spec);
        let outcome = RunOutcome {
            artifact: Arc::new(artifact),
            complete: summary.complete(),
        };
        {
            let mut stats = self.stats.lock().expect("stats lock");
            stats.computations += 1;
            if !outcome.complete {
                stats.errors += 1;
            }
            stats.absorb_phases(&summary);
        }
        if outcome.complete {
            if let Err(e) = self.cache.store(spec, &outcome.artifact) {
                eprintln!("# serve: cache store failed for {key}: {e}");
            }
        }
        slot.publish(outcome.clone());
        self.inflight.lock().expect("inflight lock").remove(&key);
        run_response(
            id,
            spec,
            &key,
            format,
            &outcome.artifact,
            false,
            false,
            outcome.complete,
        )
    }

    /// Answer a `stats` request from the counters.
    fn report_stats(&self, id: Value) -> Response {
        let inflight = self.inflight.lock().expect("inflight lock").len();
        let stats = self.stats.lock().expect("stats lock");
        let hit_rate = if stats.runs == 0 {
            0.0
        } else {
            stats.hits as f64 / stats.runs as f64
        };
        let mut phases = Map::new();
        for (name, ms) in &stats.phase_ms {
            phases.insert(name.clone(), (*ms).to_json());
        }
        let mut body = Map::new();
        body.insert("requests", (stats.requests).to_json());
        body.insert("runs", (stats.runs).to_json());
        body.insert("hits", (stats.hits).to_json());
        body.insert("computations", (stats.computations).to_json());
        body.insert("deduped", (stats.deduped).to_json());
        body.insert("errors", (stats.errors).to_json());
        body.insert("hit_rate", (hit_rate).to_json());
        body.insert("inflight", (inflight as u64).to_json());
        body.insert("phases_ms", Value::Object(phases));
        let mut doc = Map::new();
        doc.insert("id", id);
        doc.insert("ok", Value::Bool(true));
        doc.insert("stats", Value::Object(body));
        Response {
            doc: Value::Object(doc),
            shutdown: false,
        }
    }
}

/// Build a `run` response document.
#[allow(clippy::too_many_arguments)]
fn run_response(
    id: Value,
    spec: &ExperimentSpec,
    key: &str,
    format: Format,
    artifact: &CachedArtifact,
    hit: bool,
    deduped: bool,
    complete: bool,
) -> Response {
    let mut doc = Map::new();
    doc.insert("id", id);
    doc.insert("ok", Value::Bool(true));
    doc.insert("artifact", (spec.artifact.name()).to_json());
    doc.insert("key", (key).to_json());
    doc.insert("hit", Value::Bool(hit));
    doc.insert("deduped", Value::Bool(deduped));
    doc.insert("complete", Value::Bool(complete));
    doc.insert("payload", (format.select(artifact)).to_json());
    Response {
        doc: Value::Object(doc),
        shutdown: false,
    }
}

/// Build an `ok: false` response document.
fn error_response(id: Value, message: &str) -> Response {
    let mut doc = Map::new();
    doc.insert("id", id);
    doc.insert("ok", Value::Bool(false));
    doc.insert("error", (message).to_json());
    Response {
        doc: Value::Object(doc),
        shutdown: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("sfc-serve-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    fn run_line(scale: u32) -> String {
        format!(
            r#"{{"id": 7, "op": "run", "artifact": "table1", "scale": {scale}, "trials": 1, "seed": 3, "format": "plain"}}"#
        )
    }

    #[test]
    fn malformed_lines_are_errors_not_panics() {
        let server = Server::new(&tmpdir("malformed"), 0).unwrap();
        for line in [
            "not json",
            "[1, 2]",
            r#"{"op": "dance"}"#,
            r#"{"op": "run"}"#,
            r#"{"op": "run", "artifact": "nope"}"#,
            r#"{"op": "run", "artifact": "fig5", "scale": "big"}"#,
            r#"{"op": "run", "artifact": "fig5", "format": "yaml"}"#,
        ] {
            let resp = server.handle_line(line);
            assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(false)), "{line}");
            assert!(!resp.shutdown);
        }
    }

    #[test]
    fn repeat_run_is_a_cache_hit_with_identical_payload() {
        let server = Server::new(&tmpdir("repeat"), 0).unwrap();
        // table1 at scale 9: a 2x2 grid with one particle — trivial cells.
        let first = server.handle_line(&run_line(9));
        assert_eq!(first.doc.get("hit"), Some(&Value::Bool(false)));
        assert_eq!(first.doc.get("complete"), Some(&Value::Bool(true)));
        let second = server.handle_line(&run_line(9));
        assert_eq!(second.doc.get("hit"), Some(&Value::Bool(true)));
        assert_eq!(second.doc.get("id"), Some(&(7u64).to_json()));
        assert_eq!(first.doc.get("payload"), second.doc.get("payload"));
        assert_eq!(first.doc.get("key"), second.doc.get("key"));

        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        assert_eq!(body.get("runs"), Some(&(2u64).to_json()));
        assert_eq!(body.get("hits"), Some(&(1u64).to_json()));
        assert_eq!(body.get("computations"), Some(&(1u64).to_json()));
        assert_eq!(body.get("deduped"), Some(&(0u64).to_json()));
    }

    #[test]
    fn concurrent_identical_runs_compute_once() {
        let server =
            Arc::new(Server::new(&tmpdir("dedup"), 150).unwrap());
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.handle_line(&run_line(9)))
            })
            .collect();
        let responses: Vec<Response> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();

        let payloads: Vec<_> = responses
            .iter()
            .map(|r| r.doc.get("payload").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(payloads.windows(2).all(|w| w[0] == w[1]));

        let stats = server.handle_line(r#"{"op": "stats"}"#);
        let body = stats.doc.get("stats").unwrap();
        // Exactly one computation; the other two either deduped into it or
        // (if scheduled after it finished) hit the cache.
        assert_eq!(body.get("computations"), Some(&(1u64).to_json()));
        let deduped = body.get("deduped").unwrap().as_u64().unwrap();
        let hits = body.get("hits").unwrap().as_u64().unwrap();
        assert_eq!(deduped + hits, 2);
        assert_eq!(body.get("inflight"), Some(&(0u64).to_json()));
    }

    #[test]
    fn shutdown_op_flags_the_connection() {
        let server = Server::new(&tmpdir("shutdown"), 0).unwrap();
        let resp = server.handle_line(r#"{"id": "bye", "op": "shutdown"}"#);
        assert!(resp.shutdown);
        assert_eq!(resp.doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(resp.doc.get("id"), Some(&("bye").to_json()));
    }

    #[test]
    fn json_format_returns_the_envelope() {
        let server = Server::new(&tmpdir("json"), 0).unwrap();
        let line = r#"{"op": "run", "artifact": "table1", "scale": 9, "trials": 1, "seed": 3, "format": "json"}"#;
        let resp = server.handle_line(line);
        let payload = resp.doc.get("payload").unwrap().as_str().unwrap();
        let doc: Value = serde_json::from_str(payload).unwrap();
        assert_eq!(doc.get("artifact"), Some(&("table1").to_json()));
        assert!(doc.get("data").is_some());
    }
}
