//! Ablation bench (DESIGN.md): the open-addressing [`CellMap`] cell index
//! against `std::collections::HashMap` on the near-field probe workload —
//! the lookup pattern that dominates Table I and Figure 6 runtimes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sfc_particles::cellmap::{pack_cell, CellMap};
use sfc_particles::{sample, Distribution};
use std::collections::HashMap;

fn bench_cell_lookup(c: &mut Criterion) {
    let order = 9u32; // 512×512
    let particles = sample(Distribution::uniform(), order, 30_000, 7);
    let mut cellmap = CellMap::with_capacity(particles.len());
    let mut stdmap: HashMap<u64, u32> = HashMap::with_capacity(particles.len());
    for (i, p) in particles.iter().enumerate() {
        cellmap.insert_first(pack_cell(p.x, p.y), i as u32);
        stdmap.insert(pack_cell(p.x, p.y), i as u32);
    }
    // The NFI probe pattern: every particle's radius-1 Chebyshev ball.
    let side = 1i64 << order;
    let mut probes: Vec<u64> = Vec::with_capacity(particles.len() * 8);
    for p in &particles {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = p.x as i64 + dx;
                let ny = p.y as i64 + dy;
                if nx >= 0 && ny >= 0 && nx < side && ny < side {
                    probes.push(pack_cell(nx as u32, ny as u32));
                }
            }
        }
    }

    let mut group = c.benchmark_group("nfi_cell_lookup");
    group.sample_size(20);
    group.bench_function("cellmap_open_addressing", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &key in &probes {
                if cellmap.get(black_box(key)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("std_hashmap_siphash", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &key in &probes {
                if stdmap.contains_key(&black_box(key)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cell_lookup);
criterion_main!(benches);
