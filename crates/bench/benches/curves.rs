//! Ablation bench for the curve transforms (DESIGN.md item: bit-twiddled
//! Hilbert vs. the state-machine LUT vs. a materialized permutation table),
//! plus throughput of every curve's forward/inverse transform.
//!
//! The paper (Section II-A) notes that computing curve indices "directly
//! with bit operations" beats recursive construction; this bench quantifies
//! the remaining differences among the direct implementations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_curves::hilbert::HilbertLut;
use sfc_curves::{Curve2d, CurveKind, CurveTable, HilbertCurve, Point2};

const ORDER: u32 = 10;

fn probe_points(n: usize) -> Vec<Point2> {
    // Deterministic pseudo-random in-grid points.
    let side = 1u32 << ORDER;
    let mut state = 0x2545F491_4F6CDD1Du64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Point2::new((state as u32) % side, ((state >> 32) as u32) % side)
        })
        .collect()
}

fn bench_hilbert_variants(c: &mut Criterion) {
    let points = probe_points(4096);
    let mut group = c.benchmark_group("hilbert_index_variants");
    let bit = HilbertCurve::new(ORDER);
    group.bench_function("bit_twiddled", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &points {
                acc = acc.wrapping_add(bit.index(black_box(p)));
            }
            acc
        })
    });
    let lut = HilbertLut::new(ORDER);
    group.bench_function("state_machine_lut", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &points {
                acc = acc.wrapping_add(lut.index(black_box(p)));
            }
            acc
        })
    });
    let table = CurveTable::new(CurveKind::Hilbert, ORDER);
    group.bench_function("materialized_table", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &points {
                acc = acc.wrapping_add(table.index(black_box(p)));
            }
            acc
        })
    });
    group.finish();
}

fn bench_all_curve_transforms(c: &mut Criterion) {
    let points = probe_points(4096);
    let mut group = c.benchmark_group("curve_index");
    for kind in CurveKind::PAPER {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut acc = 0u64;
                for &p in &points {
                    acc = acc.wrapping_add(kind.index_of(ORDER, black_box(p)));
                }
                acc
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("curve_point");
    let len = 1u64 << (2 * ORDER);
    let indices: Vec<u64> = (0..4096u64).map(|i| (i * 2654435761) % len).collect();
    for kind in CurveKind::PAPER {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut acc = 0u32;
                for &i in &indices {
                    acc = acc.wrapping_add(kind.point_of(ORDER, black_box(i)).x);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hilbert_variants, bench_all_curve_transforms);
criterion_main!(benches);
