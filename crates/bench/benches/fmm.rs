//! FMM substrate bench: the fast multipole solver against the O(n²) direct
//! baseline, over the input sizes where the crossover appears.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_fmm::{direct, AdaptiveFmm, BarnesHut, Fmm, Source};

fn sources(n: usize) -> Vec<Source> {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Source::new(next(), next(), 1.0)).collect()
}

fn bench_fmm_vs_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("fmm_vs_direct");
    group.sample_size(10);
    for n in [500usize, 2_000, 8_000] {
        let s = sources(n);
        group.bench_with_input(BenchmarkId::new("direct", n), &(), |b, _| {
            b.iter(|| direct::potentials(&s))
        });
        let solver = Fmm::new(12);
        group.bench_with_input(BenchmarkId::new("fmm_p12", n), &(), |b, _| {
            b.iter(|| solver.potentials(&s))
        });
        let bh = BarnesHut::new(0.5);
        group.bench_with_input(BenchmarkId::new("barnes_hut_0.5", n), &(), |b, _| {
            b.iter(|| bh.potentials(&s))
        });
    }
    group.finish();
}

fn clustered_sources(n: usize) -> Vec<Source> {
    // A tight cluster plus background: where adaptivity pays.
    let mut state = 0xDEADBEEFu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            if i % 4 == 0 {
                Source::new(0.2 + 0.6 * next(), 0.2 + 0.6 * next(), 1.0)
            } else {
                Source::new(0.1 + 0.005 * next(), 0.1 + 0.005 * next(), 1.0)
            }
        })
        .collect()
}

fn bench_adaptive_vs_uniform(c: &mut Criterion) {
    let s = clustered_sources(6_000);
    let mut group = c.benchmark_group("fmm_adaptive_ablation");
    group.sample_size(10);
    let uniform = Fmm::new(12);
    group.bench_function("uniform_tree", |b| b.iter(|| uniform.potentials(&s)));
    let adaptive = AdaptiveFmm::new(12);
    group.bench_function("adaptive_tree", |b| b.iter(|| adaptive.potentials(&s)));
    group.finish();
}

fn bench_expansion_order(c: &mut Criterion) {
    let s = sources(4_000);
    let mut group = c.benchmark_group("fmm_expansion_order");
    group.sample_size(10);
    for p in [6usize, 12, 24] {
        let solver = Fmm::new(p);
        group.bench_with_input(BenchmarkId::from_parameter(p), &(), |b, _| {
            b.iter(|| solver.potentials(&s))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fmm_vs_direct,
    bench_expansion_order,
    bench_adaptive_vs_uniform
);
criterion_main!(benches);
