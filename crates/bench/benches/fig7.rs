//! Figure 7 bench: ACD evaluation cost as the processor count scales
//! (torus, Hilbert curve) — the assignment/chunking step is re-done per
//! processor count, exactly as the figure's sweep does.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_core::ffi::ffi_acd;
use sfc_core::nfi::nfi_acd;
use sfc_core::{Assignment, Machine};
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::Workload;
use sfc_topology::TopologyKind;

const SCALE: u32 = 4;

fn bench_fig7(c: &mut Criterion) {
    let workload = Workload::figure7(1).scaled_down(SCALE);
    let particles = workload.particles(0);

    let mut group = c.benchmark_group("fig7_acd_vs_processors");
    group.sample_size(15);
    for procs in [16u64, 64, 256] {
        let asg = Assignment::new(&particles, workload.grid_order, CurveKind::Hilbert, procs);
        let machine = Machine::new(TopologyKind::Torus, procs, CurveKind::Hilbert);
        group.bench_with_input(BenchmarkId::new("nfi", procs), &(), |b, _| {
            b.iter(|| nfi_acd(&asg, &machine, 1, Norm::Chebyshev))
        });
        group.bench_with_input(BenchmarkId::new("ffi", procs), &(), |b, _| {
            b.iter(|| ffi_acd(&asg, &machine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
