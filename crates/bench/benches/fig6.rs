//! Figure 6 bench: per-topology cost of the ACD evaluation at a scaled-down
//! Figure 6 configuration (Hilbert curve tied for both orderings, radius-4
//! near field, all six topologies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_bench::figures::FIG6_RADIUS;
use sfc_core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_core::nfi::nfi_acd;
use sfc_core::{Assignment, Machine};
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::Workload;
use sfc_topology::TopologyKind;

const SCALE: u32 = 4; // 256×256 grid, ~3.9k particles, 256 processors

fn bench_fig6(c: &mut Criterion) {
    let workload = Workload::figure6(1).scaled_down(SCALE);
    let procs = 65_536u64 >> (2 * SCALE);
    let particles = workload.particles(0);
    let asg = Assignment::new(&particles, workload.grid_order, CurveKind::Hilbert, procs);
    let tree = OwnerTree::build(&asg);

    let mut nfi = c.benchmark_group("fig6a_nfi_by_topology");
    nfi.sample_size(15);
    for topo in TopologyKind::PAPER {
        let machine = Machine::new(topo, procs, CurveKind::Hilbert);
        nfi.bench_with_input(BenchmarkId::from_parameter(topo), &(), |b, _| {
            b.iter(|| nfi_acd(&asg, &machine, FIG6_RADIUS, Norm::Chebyshev))
        });
    }
    nfi.finish();

    let mut ffi = c.benchmark_group("fig6b_ffi_by_topology");
    ffi.sample_size(15);
    for topo in TopologyKind::PAPER {
        let machine = Machine::new(topo, procs, CurveKind::Hilbert);
        ffi.bench_with_input(BenchmarkId::from_parameter(topo), &(), |b, _| {
            b.iter(|| ffi_acd_with_tree(&asg, &machine, &tree))
        });
    }
    ffi.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
