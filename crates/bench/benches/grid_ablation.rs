//! Ablation bench (BENCH_PR10.json): the dense occupancy index against the
//! sparse cell-map fallback (`Assignment::without_dense_grid`).
//!
//! Two views, both over the same Figure-6 style workload the oracle
//! ablation uses:
//!
//! 1. **NFI scan kernel** — the radius-4 Chebyshev `nfi_acd` call, which
//!    is exactly the code the dense grid rewrites: with the index, each
//!    per-`dy` neighborhood row is one clipped contiguous `u32` slice; the
//!    fallback probes the open-addressed cell map once per candidate cell.
//!    The BENCH_PR10 ≥1.2× claim is measured here.
//! 2. **End to end** — `nfi_acd` + `ffi_acd_with_tree` together, where the
//!    tree walk (which the grid does not touch) dilutes the win. Reported
//!    for honesty.
//!
//! Both configurations produce bit-identical results — asserted before
//! timing. Unlike the criterion benches, this harness hand-rolls its
//! timing loop and prints one JSON object as the final stdout line so CI
//! can `grep '^{'` and assert the speedup floor.

use sfc_core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_core::nfi::nfi_acd;
use sfc_core::{Assignment, Machine};
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::Workload;
use sfc_topology::TopologyKind;
use std::time::Instant;

const RADIUS: u32 = 4;
const WARMUP: usize = 3;
const SAMPLES: usize = 15;

/// Median wall time of `SAMPLES` runs of `f`, in microseconds.
fn median_us<R>(mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..WARMUP {
        std::hint::black_box(f());
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let workload = Workload::figure6(1).scaled_down(4);
    let procs = 1024u64;
    let particles = workload.particles(0);
    let dense = Assignment::new(&particles, workload.grid_order, CurveKind::Hilbert, procs);
    let sparse = dense.clone().without_dense_grid();
    assert!(dense.has_dense_grid() && !sparse.has_dense_grid());
    let machine = Machine::new(TopologyKind::Torus, procs, CurveKind::Hilbert);
    let tree = OwnerTree::build(&dense);

    // The guarantee BENCH_PR10.json cites: identical results either way.
    let nfi_dense = nfi_acd(&dense, &machine, RADIUS, Norm::Chebyshev).unwrap();
    let nfi_sparse = nfi_acd(&sparse, &machine, RADIUS, Norm::Chebyshev).unwrap();
    assert_eq!(nfi_dense, nfi_sparse, "NFI results diverge");
    assert_eq!(
        ffi_acd_with_tree(&dense, &machine, &tree).unwrap(),
        ffi_acd_with_tree(&sparse, &machine, &tree).unwrap(),
        "FFI results diverge",
    );
    eprintln!(
        "workload: {} particles, {}x{} grid, {procs} procs, radius {RADIUS} (bit-identity ok)",
        particles.len(),
        1u64 << workload.grid_order,
        1u64 << workload.grid_order,
    );

    let scan_dense = median_us(|| nfi_acd(&dense, &machine, RADIUS, Norm::Chebyshev).unwrap());
    let scan_sparse = median_us(|| nfi_acd(&sparse, &machine, RADIUS, Norm::Chebyshev).unwrap());
    let scan_speedup = scan_sparse / scan_dense;
    eprintln!(
        "nfi_scan: dense {scan_dense:.1}us, cellmap {scan_sparse:.1}us, {scan_speedup:.2}x"
    );

    let e2e = |asg: &Assignment| {
        let nfi = nfi_acd(asg, &machine, RADIUS, Norm::Chebyshev).unwrap();
        let ffi = ffi_acd_with_tree(asg, &machine, &tree).unwrap();
        nfi.acd() + ffi.acd()
    };
    let e2e_dense = median_us(|| e2e(&dense));
    let e2e_sparse = median_us(|| e2e(&sparse));
    let e2e_speedup = e2e_sparse / e2e_dense;
    eprintln!("end_to_end: dense {e2e_dense:.1}us, cellmap {e2e_sparse:.1}us, {e2e_speedup:.2}x");

    // Final stdout line: the machine-readable summary CI parses.
    println!(
        "{}",
        serde_json::json!({
            "bench": "grid_ablation",
            "nfi_scan": serde_json::json!({
                "dense_us": scan_dense,
                "cellmap_us": scan_sparse,
                "speedup": scan_speedup,
            }),
            "end_to_end": serde_json::json!({
                "dense_us": e2e_dense,
                "cellmap_us": e2e_sparse,
                "speedup": e2e_speedup,
            }),
        })
    );
}
