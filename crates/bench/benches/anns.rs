//! Figure 5 bench: time to compute the ANNS (and the radius-6
//! generalization) of each curve at a 128×128 resolution. The `fig5` binary
//! prints the metric values; this bench tracks the cost of producing them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_core::anns::anns_radius;
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;

const ORDER: u32 = 7;

fn bench_anns(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_anns_r1");
    group.sample_size(20);
    for kind in CurveKind::PAPER {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| anns_radius(kind, ORDER, 1, Norm::Manhattan))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig5b_anns_r6");
    group.sample_size(10);
    for kind in CurveKind::PAPER {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| anns_radius(kind, ORDER, 6, Norm::Manhattan))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_anns);
criterion_main!(benches);
