//! Ablation bench (DESIGN.md): rayon-parallel vs single-threaded evaluation
//! of the same ACD computation, by pinning rayon to one worker. The sums are
//! order-independent, so both configurations produce identical results —
//! only the wall clock differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_core::nfi::nfi_acd;
use sfc_core::{Assignment, Machine};
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::Workload;
use sfc_topology::TopologyKind;

fn bench_thread_scaling(c: &mut Criterion) {
    let workload = Workload::figure6(1).scaled_down(4);
    let procs = 256u64;
    let particles = workload.particles(0);
    let asg = Assignment::new(&particles, workload.grid_order, CurveKind::Hilbert, procs);
    let machine = Machine::new(TopologyKind::Torus, procs, CurveKind::Hilbert);

    let mut group = c.benchmark_group("nfi_thread_scaling");
    group.sample_size(15);
    let available = std::thread::available_parallelism().map_or(4, |n| n.get());
    for threads in [1usize, 2, available] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        group.bench_with_input(BenchmarkId::from_parameter(threads), &(), |b, _| {
            b.iter(|| pool.install(|| nfi_acd(&asg, &machine, 4, Norm::Chebyshev)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
