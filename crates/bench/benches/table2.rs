//! Table II bench: cost of one far-field ACD evaluation (owner-tree build
//! plus the three communication families) at a scaled-down Table II
//! configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_core::ffi::{ffi_acd_with_tree, OwnerTree};
use sfc_core::{Assignment, Machine};
use sfc_curves::CurveKind;
use sfc_particles::{DistributionKind, Workload};
use sfc_topology::TopologyKind;

const SCALE: u32 = 3;

fn bench_table2(c: &mut Criterion) {
    let workload = Workload::tables_1_2(DistributionKind::Uniform, 1).scaled_down(SCALE);
    let procs = 65_536u64 >> (2 * SCALE);
    let particles = workload.particles(0);

    let mut group = c.benchmark_group("table2_ffi_acd");
    group.sample_size(20);
    for curve in CurveKind::PAPER {
        let asg = Assignment::new(&particles, workload.grid_order, curve, procs);
        let machine = Machine::new(TopologyKind::Torus, procs, curve);
        group.bench_with_input(
            BenchmarkId::new("owner_tree_build", curve),
            &(),
            |b, _| b.iter(|| OwnerTree::build(&asg)),
        );
        let tree = OwnerTree::build(&asg);
        group.bench_with_input(BenchmarkId::new("ffi_walk", curve), &(), |b, _| {
            b.iter(|| ffi_acd_with_tree(&asg, &machine, &tree))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
