//! Table I bench: cost of one near-field ACD evaluation at a scaled-down
//! Table I configuration, for the best (Hilbert/Hilbert) and worst
//! (RowMajor/RowMajor) curve pairs and each distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfc_core::nfi::nfi_acd;
use sfc_core::{Assignment, Machine};
use sfc_curves::point::Norm;
use sfc_curves::CurveKind;
use sfc_particles::{DistributionKind, Workload};
use sfc_topology::TopologyKind;

const SCALE: u32 = 3; // 128×128 grid, ~3.9k particles, 1024 processors

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_nfi_acd");
    group.sample_size(20);
    for dist in DistributionKind::ALL {
        let workload = Workload::tables_1_2(dist, 1).scaled_down(SCALE);
        let procs = 65_536u64 >> (2 * SCALE);
        let particles = workload.particles(0);
        for curve in [CurveKind::Hilbert, CurveKind::RowMajor] {
            let asg = Assignment::new(&particles, workload.grid_order, curve, procs);
            let machine = Machine::new(TopologyKind::Torus, procs, curve);
            let id = format!("{}/{}", dist.name(), curve.short_name());
            group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| {
                b.iter(|| nfi_acd(&asg, &machine, 1, Norm::Chebyshev))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
